"""Kernel-backend throughput: wall clock per backend, GFLOP/s, speedups.

Times every execution backend — dense BLAS, the fast gather-GEMM path,
the vectorized functional kernel, and the structural blocked/packed
executors — across small/medium/large shapes and a low- (2:4) and
high-sparsity (8:32) pattern, then writes ``BENCH_kernels.json`` at the
repo root so the kernel perf trajectory accrues across PRs.  These are
the substrate's own numbers (host CPU BLAS), not the GPU model's.

Schema (``nm-spmm/kernel-bench/v1``)::

    {
      "schema": "nm-spmm/kernel-bench/v1",
      "configs": [
        {
          "name": "<size>-<N:M>",
          "shape": {"m", "n", "k"},
          "pattern": "<label>",
          "backends": {
            "<backend>": {"seconds", "gflops", "speedup_vs_dense"},
            ...
          },
          "fast_vs_blocked": <wall-clock speedup>
        }, ...
      ]
    }

``gflops`` is dense-equivalent throughput (``2*m*n*k / seconds``) so
backends are comparable on one axis; sparse backends do ``N/M`` of that
useful work.

Run standalone (``python benchmarks/bench_kernel_backends.py``,
``--smoke`` for the CI-sized grid that skips the JSON write) or under
pytest-benchmark (``pytest benchmarks/bench_kernel_backends.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.gpu.catalog import resolve_gpu
from repro.kernels.blocked import nm_spmm_blocked
from repro.kernels.fast import nm_spmm_fast
from repro.kernels.functional import nm_spmm_functional
from repro.kernels.packed import nm_spmm_packed
from repro.kernels.tiling import TileParams, params_for
from repro.sparsity.colinfo import preprocess_offline
from repro.sparsity.compress import compress
from repro.sparsity.config import NMPattern
from repro.sparsity.gather import build_gather_layout
from repro.sparsity.pruning import prune_dense
from repro.utils.tables import TextTable

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"
SCHEMA = "nm-spmm/kernel-bench/v1"

#: (name, (m, n, k)) — medium matches ``bench_functional_kernels``, the
#: shape the tentpole's >=5x fast-vs-blocked target is measured on.
SHAPES: tuple[tuple[str, tuple[int, int, int]], ...] = (
    ("small", (128, 256, 256)),
    ("medium", (256, 512, 512)),
    ("large", (512, 1024, 1024)),
)
SMOKE_SHAPES: tuple[tuple[str, tuple[int, int, int]], ...] = (
    ("small", (32, 64, 64)),
)

PATTERNS: tuple[NMPattern, ...] = (
    NMPattern(2, 4, vector_length=4),
    NMPattern(8, 32, vector_length=32),
)

#: The exact ``bench_functional_kernels`` medium configuration — the
#: problem the tentpole's >=5x fast-vs-blocked acceptance target is
#: defined on (Table I medium blocking with ks pinned to 128).
FUNCBENCH_NAME = "medium-funcbench"
FUNCBENCH_SHAPE = (256, 512, 512)
FUNCBENCH_PATTERN = NMPattern(8, 32, vector_length=32)
FUNCBENCH_PARAMS = TileParams(ms=32, ns=64, mr=32, nr=32, mt=8, nt=4, ks=128)


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (after warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_config(
    name: str,
    shape: tuple[int, int, int],
    pattern: NMPattern,
    *,
    params: TileParams | None = None,
    repeats: int = 5,
    seed: int = 11,
) -> dict:
    """Time every backend on one (shape, pattern) cell."""
    m, n, k = shape
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    pruned, mask = prune_dense(pattern, b)
    comp = compress(pattern, pruned, mask)
    # Offline artifacts are precomputed — the benchmark times the
    # online phase, mirroring how serving uses the handles.
    layout = build_gather_layout(comp)
    if params is None:
        params = params_for(
            m, n, k, pattern, resolve_gpu("A100").smem_bytes_per_sm
        )
    col_info = preprocess_offline(comp, params.ws(pattern), params.ns)

    backends = {
        "dense": lambda: a @ pruned,
        "fast": lambda: nm_spmm_fast(a, layout),
        "functional": lambda: nm_spmm_functional(a, comp),
        "blocked": lambda: nm_spmm_blocked(a, comp, params),
        "packed": lambda: nm_spmm_packed(a, comp, params, col_info),
    }
    gold = a @ pruned
    flops = 2.0 * m * n * k
    results: dict[str, dict] = {}
    for backend, fn in backends.items():
        # Sanity gate only (the equivalence suite owns tight bounds);
        # tolerance scales with the float32 reduction depth.
        np.testing.assert_allclose(
            fn(), gold, rtol=2e-4, atol=1e-4 * np.sqrt(k)
        )
        seconds = _best_of(fn, repeats)
        results[backend] = {
            "seconds": seconds,
            "gflops": flops / seconds / 1e9,
        }
    dense_s = results["dense"]["seconds"]
    for entry in results.values():
        entry["speedup_vs_dense"] = dense_s / entry["seconds"]
    return {
        "name": f"{name}-{pattern.n}:{pattern.m}",
        "shape": {"m": m, "n": n, "k": k},
        "pattern": pattern.label(),
        "backends": results,
        "fast_vs_blocked": (
            results["blocked"]["seconds"] / results["fast"]["seconds"]
        ),
    }


def run_kernel_bench(*, smoke: bool = False) -> dict:
    """Run the full grid (or the CI smoke slice) and return the
    schema-shaped result."""
    shapes = SMOKE_SHAPES if smoke else SHAPES
    repeats = 1 if smoke else 5
    configs = [
        run_config(name, shape, pattern, repeats=repeats)
        for name, shape in shapes
        for pattern in PATTERNS
    ]
    if not smoke:
        configs.append(
            run_config(
                FUNCBENCH_NAME,
                FUNCBENCH_SHAPE,
                FUNCBENCH_PATTERN,
                params=FUNCBENCH_PARAMS,
                repeats=repeats,
            )
        )
    return {"schema": SCHEMA, "configs": configs}


def write_results(result: dict) -> pathlib.Path:
    OUTPUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def render_results(result: dict) -> str:
    table = TextTable(
        ["config", "dense ms", "fast ms", "functional ms", "blocked ms",
         "packed ms", "fast GFLOP/s", "fast/blocked"],
        title="kernel backends (host wall clock)",
    )
    for config in result["configs"]:
        be = config["backends"]
        table.add_row(
            [
                config["name"],
                f"{be['dense']['seconds'] * 1e3:.3f}",
                f"{be['fast']['seconds'] * 1e3:.3f}",
                f"{be['functional']['seconds'] * 1e3:.3f}",
                f"{be['blocked']['seconds'] * 1e3:.3f}",
                f"{be['packed']['seconds'] * 1e3:.3f}",
                f"{be['fast']['gflops']:.1f}",
                f"{config['fast_vs_blocked']:.1f}x",
            ]
        )
    return table.render()


def test_bench_kernel_backends(benchmark, emit):
    result = benchmark.pedantic(run_kernel_bench, rounds=1, iterations=1)
    path = write_results(result)
    emit("kernel_backends", render_results(result) + f"\n\nwrote {path}")

    assert result["schema"] == SCHEMA
    assert len(result["configs"]) == len(SHAPES) * len(PATTERNS) + 1
    for config in result["configs"]:
        for entry in config["backends"].values():
            assert entry["seconds"] > 0
            assert entry["gflops"] > 0
    # The tentpole's headline: fast must beat the structural blocked
    # executor by >=5x on the bench_functional_kernels medium problem.
    by_name = {c["name"]: c for c in result["configs"]}
    assert by_name[f"{FUNCBENCH_NAME}-8:32"]["fast_vs_blocked"] >= 5.0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, one repeat, no JSON write (CI rot check)",
    )
    args = parser.parse_args(argv)
    result = run_kernel_bench(smoke=args.smoke)
    print(render_results(result))
    if not args.smoke:
        print(f"\nwrote {write_results(result)}")
        # Enforce the tentpole's acceptance bar wherever the tracked
        # numbers are regenerated (the pytest path asserts the same).
        by_name = {c["name"]: c for c in result["configs"]}
        funcbench = by_name[f"{FUNCBENCH_NAME}-8:32"]["fast_vs_blocked"]
        if funcbench < 5.0:
            print(
                f"FAIL: fast is only {funcbench:.1f}x vs the structural "
                "blocked executor on the funcbench medium problem "
                "(acceptance bar: >=5x)"
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
