"""Kernel-backend throughput: wall clock per backend, GFLOP/s, speedups.

Times raw-kernel baselines (dense BLAS, the vectorized functional
kernel, the structural blocked/packed executors with explicit blocking
parameters) plus **every backend registered in the execution-backend
registry** (:mod:`repro.backends`) through the real ``execute()``
facade — so a newly registered backend lands in the tracked numbers
without touching this file.  The grid covers small/medium/large shapes
and a low- (2:4) and high-sparsity (8:32) pattern, and writes
``BENCH_kernels.json`` at the repo root so the kernel perf trajectory
accrues across PRs.  These are the substrate's own numbers (host CPU
BLAS), not the GPU model's.

Schema (``nm-spmm/kernel-bench/v1``)::

    {
      "schema": "nm-spmm/kernel-bench/v1",
      "configs": [
        {
          "name": "<size>-<N:M>",
          "shape": {"m", "n", "k"},
          "pattern": "<label>",
          "backends": {
            "<backend>": {"seconds", "gflops", "speedup_vs_dense"},
            ...
          },
          "fast_vs_blocked": <wall-clock speedup>
        }, ...
      ]
    }

``gflops`` is dense-equivalent throughput (``2*m*n*k / seconds``) so
backends are comparable on one axis; sparse backends do ``N/M`` of that
useful work.

Run standalone (``python benchmarks/bench_kernel_backends.py``,
``--smoke`` for the CI-sized grid that skips the JSON write) or under
pytest-benchmark (``pytest benchmarks/bench_kernel_backends.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.backends import available_backends
from repro.core.api import NMSpMM, SparseHandle
from repro.gpu.catalog import resolve_gpu
from repro.kernels.blocked import nm_spmm_blocked
from repro.kernels.fast import nm_spmm_fast
from repro.kernels.functional import nm_spmm_functional
from repro.kernels.packed import nm_spmm_packed
from repro.kernels.tiling import TileParams, params_for
from repro.sparsity.colinfo import preprocess_offline
from repro.sparsity.compress import compress
from repro.sparsity.config import NMPattern
from repro.sparsity.pruning import prune_dense
from repro.utils.benchmeta import bench_meta
from repro.utils.tables import TextTable

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_kernels.json"
SCHEMA = "nm-spmm/kernel-bench/v1"

#: (name, (m, n, k)) — medium matches ``bench_functional_kernels``, the
#: shape the tentpole's >=5x fast-vs-blocked target is measured on.
SHAPES: tuple[tuple[str, tuple[int, int, int]], ...] = (
    ("small", (128, 256, 256)),
    ("medium", (256, 512, 512)),
    ("large", (512, 1024, 1024)),
)
SMOKE_SHAPES: tuple[tuple[str, tuple[int, int, int]], ...] = (
    ("small", (32, 64, 64)),
)

PATTERNS: tuple[NMPattern, ...] = (
    NMPattern(2, 4, vector_length=4),
    NMPattern(8, 32, vector_length=32),
)

#: Registry rows that are part of the library itself: a failure in one
#: of these is a regression and must abort the run, while third-party
#: registrations get the lenient skip-with-a-note path.
BUILTIN_BACKENDS = ("fast", "structural", "dense_scatter")

#: The exact ``bench_functional_kernels`` medium configuration — the
#: problem the tentpole's >=5x fast-vs-blocked acceptance target is
#: defined on (Table I medium blocking with ks pinned to 128).
FUNCBENCH_NAME = "medium-funcbench"
FUNCBENCH_SHAPE = (256, 512, 512)
FUNCBENCH_PATTERN = NMPattern(8, 32, vector_length=32)
FUNCBENCH_PARAMS = TileParams(ms=32, ns=64, mr=32, nr=32, mt=8, nt=4, ks=128)


def _best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (after warmup)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()  # repro-lint: disable=DET002 -- host benchmark timing
        fn()
        best = min(best, time.perf_counter() - t0)  # repro-lint: disable=DET002 -- host benchmark timing
    return best


def run_config(
    name: str,
    shape: tuple[int, int, int],
    pattern: NMPattern,
    *,
    params: TileParams | None = None,
    repeats: int = 5,
    seed: int = 11,
) -> dict:
    """Time every backend on one (shape, pattern) cell."""
    m, n, k = shape
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(np.float32)
    b = rng.standard_normal((k, n)).astype(np.float32)
    pruned, mask = prune_dense(pattern, b)
    comp = compress(pattern, pruned, mask)
    # Offline artifacts are precomputed — the benchmark times the
    # online phase, mirroring how serving uses the handles.  The
    # registry rows run through the real execute() facade against a
    # prepared handle (gather layout built in the warmup call, plans
    # cached on the handle), so facade overhead is part of the number.
    handle = SparseHandle(compressed=comp)
    op = NMSpMM(pattern)
    if params is None:
        params = params_for(
            m, n, k, pattern, resolve_gpu("A100").smem_bytes_per_sm
        )
    col_info = preprocess_offline(comp, params.ws(pattern), params.ns)

    backends = {
        "dense": lambda: a @ pruned,
        "functional": lambda: nm_spmm_functional(a, comp),
        "blocked": lambda: nm_spmm_blocked(a, comp, params),
        "packed": lambda: nm_spmm_packed(a, comp, params, col_info),
    }
    registry_rows = set()
    for registered in available_backends():
        if registered.name in backends:
            # Never let a registered name shadow a raw baseline row —
            # speedup_vs_dense must stay anchored to raw BLAS.
            print(
                f"note: skipping registered backend {registered.name!r} "
                "(collides with a raw baseline row)"
            )
            continue
        verdict = registered.supports(
            op.build_request(a, handle, params=params)
        )
        if verdict is not True:
            if registered.name in BUILTIN_BACKENDS:
                raise RuntimeError(
                    f"builtin backend {registered.name!r} declined a "
                    f"benchmark request: {verdict}"
                )
            print(
                f"note: skipping registered backend {registered.name!r} "
                f"(unsupported here: {verdict})"
            )
            continue
        registry_rows.add(registered.name)
        backends[registered.name] = (
            lambda name=registered.name: op.execute(
                a, handle, params=params, backend=name, use_plan_cache=True
            )
        )
    gold = a @ pruned
    flops = 2.0 * m * n * k
    results: dict[str, dict] = {}
    for backend, fn in backends.items():
        # Sanity gate only (the equivalence suite owns tight bounds);
        # tolerance scales with the float32 reduction depth.  Registry
        # rows that cannot run or cannot meet float32 tolerance (e.g.
        # a registered quantized backend) are skipped with a note
        # instead of aborting the tracked run; the builtin rows stay a
        # hard gate via the acceptance assertions downstream.
        try:
            np.testing.assert_allclose(
                fn(), gold, rtol=2e-4, atol=1e-4 * np.sqrt(k)
            )
        except Exception as exc:
            if backend in registry_rows and backend not in BUILTIN_BACKENDS:
                first_line = str(exc).strip().splitlines()[0]
                print(
                    f"note: skipping registered backend {backend!r} "
                    f"({type(exc).__name__}: {first_line})"
                )
                continue
            raise
        seconds = _best_of(fn, repeats)
        results[backend] = {
            "seconds": seconds,
            "gflops": flops / seconds / 1e9,
        }
    dense_s = results["dense"]["seconds"]
    for entry in results.values():
        entry["speedup_vs_dense"] = dense_s / entry["seconds"]
    # Same-run facade-overhead measurement: the registry's "fast" row
    # runs through execute(); time the raw kernel on the same operands
    # so the API layer's cost is checkable per run (cross-run GFLOP/s
    # comparisons on shared hardware are dominated by machine noise —
    # the raw-kernel rows move +/-20% between runs of identical code).
    fast_facade_overhead = None
    if "fast" in results:
        raw_fast_s = _best_of(
            lambda: nm_spmm_fast(a, handle.gather_layout()), repeats
        )
        fast_facade_overhead = results["fast"]["seconds"] / raw_fast_s - 1.0
    return {
        "name": f"{name}-{pattern.n}:{pattern.m}",
        "shape": {"m": m, "n": n, "k": k},
        "pattern": pattern.label(),
        "backends": results,
        # None when the 'fast' registry row was skipped/replaced (it is
        # a registry row, not a guaranteed baseline) — the acceptance
        # checks downstream fail loudly on it rather than crashing here.
        "fast_vs_blocked": (
            results["blocked"]["seconds"] / results["fast"]["seconds"]
            if "fast" in results
            else None
        ),
        "fast_facade_overhead": fast_facade_overhead,
    }


def run_kernel_bench(
    *, smoke: bool = False, generated_at: "str | None" = None
) -> dict:
    """Run the full grid (or the CI smoke slice) and return the
    schema-shaped result."""
    shapes = SMOKE_SHAPES if smoke else SHAPES
    repeats = 1 if smoke else 5
    configs = [
        run_config(name, shape, pattern, repeats=repeats)
        for name, shape in shapes
        for pattern in PATTERNS
    ]
    if not smoke:
        configs.append(
            run_config(
                FUNCBENCH_NAME,
                FUNCBENCH_SHAPE,
                FUNCBENCH_PATTERN,
                params=FUNCBENCH_PARAMS,
                repeats=repeats,
            )
        )
    return {
        "schema": SCHEMA,
        "meta": bench_meta(
            SCHEMA,
            config={
                "shapes": [[name, list(shape)] for name, shape in shapes],
                "patterns": [p.label() for p in PATTERNS],
                "repeats": repeats,
                "funcbench": not smoke,
            },
            generated_at=generated_at,
        ),
        "configs": configs,
    }


def write_results(result: dict) -> pathlib.Path:
    OUTPUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def render_results(result: dict) -> str:
    # Column order: dense baseline first, then the union of measured
    # backends across all configs in first-seen order (a registry row
    # may be skipped on some configs but measured on others).
    names: list[str] = []
    for config in result["configs"]:
        for name in config["backends"]:
            if name != "dense" and name not in names:
                names.append(name)
    table = TextTable(
        ["config", "dense ms"]
        + [f"{name} ms" for name in names]
        + ["fast GFLOP/s", "fast/blocked"],
        title="kernel backends (host wall clock)",
    )
    for config in result["configs"]:
        be = config["backends"]
        table.add_row(
            [
                config["name"],
                f"{be['dense']['seconds'] * 1e3:.3f}",
            ]
            + [
                f"{be[name]['seconds'] * 1e3:.3f}" if name in be else "-"
                for name in names
            ]
            + [
                f"{be['fast']['gflops']:.1f}" if "fast" in be else "-",
                (
                    f"{config['fast_vs_blocked']:.1f}x"
                    if config["fast_vs_blocked"] is not None
                    else "-"
                ),
            ]
        )
    return table.render()


def test_bench_kernel_backends(benchmark, emit):
    result = benchmark.pedantic(run_kernel_bench, rounds=1, iterations=1)
    path = write_results(result)
    emit("kernel_backends", render_results(result) + f"\n\nwrote {path}")

    assert result["schema"] == SCHEMA
    assert len(result["configs"]) == len(SHAPES) * len(PATTERNS) + 1
    for config in result["configs"]:
        # The builtin registry rows must be present alongside the raw
        # baselines (they always support these requests and meet
        # float32 tolerance); third-party registrations may be skipped
        # with a note, so they are deliberately not asserted here.
        for builtin in BUILTIN_BACKENDS:
            assert builtin in config["backends"]
        for entry in config["backends"].values():
            assert entry["seconds"] > 0
            assert entry["gflops"] > 0
    by_name = {c["name"]: c for c in result["configs"]}
    # The PR-2 headline: fast must beat the structural blocked executor
    # by >=5x on the bench_functional_kernels medium problem.
    funcbench = by_name[f"{FUNCBENCH_NAME}-8:32"]["fast_vs_blocked"]
    assert funcbench is not None and funcbench >= 5.0
    # The registry PR's headline: dense_scatter closes the tiny-L gap,
    # beating gather-GEMM on the degenerate 2:4/L=4 small config...
    small = by_name["small-2:4"]["backends"]
    assert small["dense_scatter"]["gflops"] >= small["fast"]["gflops"]
    # ...without the facade materially slowing fast vs the raw kernel
    # on the medium/large configs.  Same-run comparison (the cross-run
    # GFLOP/s history is machine-noise bound), with a bar wide enough
    # for shared-machine jitter: the checked-in data shows single-run
    # excursions past 20% in the facade's *favor*, so a tight bound
    # would flake on an unchanged tree; real facade cost measures 1-8%.
    for size in ("medium", "large"):
        for config_pattern in ("2:4", "8:32"):
            overhead = by_name[f"{size}-{config_pattern}"][
                "fast_facade_overhead"
            ]
            assert overhead is not None and overhead < 0.25


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid, one repeat, no JSON write (CI rot check)",
    )
    args = parser.parse_args(argv)
    result = run_kernel_bench(smoke=args.smoke)
    print(render_results(result))
    if not args.smoke:
        print(f"\nwrote {write_results(result)}")
        # Enforce the acceptance bars wherever the tracked numbers are
        # regenerated (the pytest path asserts the same).
        by_name = {c["name"]: c for c in result["configs"]}
        funcbench = by_name[f"{FUNCBENCH_NAME}-8:32"]["fast_vs_blocked"]
        if funcbench is None or funcbench < 5.0:
            shown = "missing" if funcbench is None else f"{funcbench:.1f}x"
            print(
                f"FAIL: fast is only {shown} vs the structural blocked "
                "executor on the funcbench medium problem "
                "(acceptance bar: >=5x)"
            )
            return 1
        small = by_name["small-2:4"]["backends"]
        if "fast" not in small or "dense_scatter" not in small:
            print(
                "FAIL: the small-2:4 acceptance rows are missing "
                f"(measured: {sorted(small)})"
            )
            return 1
        if small["dense_scatter"]["gflops"] < small["fast"]["gflops"]:
            print(
                "FAIL: dense_scatter "
                f"({small['dense_scatter']['gflops']:.1f} GFLOP/s) does "
                "not close the tiny-L gap vs fast "
                f"({small['fast']['gflops']:.1f} GFLOP/s) on small-2:4"
            )
            return 1
        worst = max(
            (
                c["fast_facade_overhead"]
                for c in result["configs"]
                if c["fast_facade_overhead"] is not None
            ),
            default=None,
        )
        if worst is not None and worst >= 0.25:
            # Looser than the pytest bar: standalone runs share the
            # machine with whatever else is running.
            print(
                f"FAIL: execute() facade costs fast {worst * 100:.0f}% "
                "over the raw kernel (bar: <25%)"
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
