"""Distributed strong scaling: tensor-parallel NM-SpMM across devices.

Models true-scale Llama layers (no weights are materialized — the
per-device launches are priced by the paper's performance model on the
shard shapes, and the collectives by the ring formulas of
:mod:`repro.distributed.topology`) across 1/2/4/8 simulated A100s:

* **strong scaling** — fixed problem, growing device count, for both
  tensor-parallel modes; each point reports modeled seconds, the
  compute/communication split, speedup vs single-device and parallel
  efficiency;
* **column-vs-row crossover** — at a fixed 4-device group, sweep the
  batch size ``m``: row-parallel keeps the full output width per
  device (block-level parallelism survives small batches) but pays a
  2x all-reduce; column-parallel halves the wire bytes but thins each
  device's output slab.  The sweep records the modeled winner per
  ``m`` and where (if anywhere) it flips.

Writes ``BENCH_distributed.json`` at the repo root (schema
``nm-spmm/distributed-bench/v1``) so the distributed trajectory
accrues across PRs.  Acceptance (asserted here and in the pytest
path): on the large Llama shape, 4-device column-parallel must model
below 0.5x the single-device latency.

Run standalone (``python benchmarks/bench_distributed.py``, ``--smoke``
for the CI-sized subset that skips the JSON write) or under
pytest-benchmark (``pytest benchmarks/bench_distributed.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.core.plan import build_plan
from repro.distributed import DeviceGroup, modeled_shape_step
from repro.sparsity.config import NMPattern
from repro.utils.benchmeta import bench_meta
from repro.utils.tables import TextTable
from repro.workloads.llama import llama_layer_shape

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_distributed.json"
SCHEMA = "nm-spmm/distributed-bench/v1"

GPU = "A100"
LINK = "nvlink"
PATTERN = NMPattern(2, 8, vector_length=8)

#: (name, n, k) — true Llama linear-layer shapes (weight is k x n).
#: ``large`` is the Llama-65B LM head, the acceptance shape.
SHAPES: tuple[tuple[str, int, int], ...] = tuple(
    (f"{model}/{layer}", *llama_layer_shape(model, layer))
    for model, layer in (
        ("llama-7b", "attn-qkvo"),
        ("llama-13b", "mlp-gate-up"),
        ("llama-65b", "lm-head"),
    )
)
LARGE_SHAPE = "llama-65b/lm-head"

SCALING_M = 2048
DEVICE_COUNTS: tuple[int, ...] = (1, 2, 4, 8)
CROSSOVER_DEVICES = 4
CROSSOVER_M: tuple[int, ...] = (1, 4, 16, 64, 256, 1024, 4096)

SMOKE_SHAPES = SHAPES[:1]
SMOKE_DEVICE_COUNTS: tuple[int, ...] = (1, 2)
SMOKE_CROSSOVER_M: tuple[int, ...] = (1, 256)


def _single_device_seconds(m: int, n: int, k: int) -> float:
    return build_plan(m, n, k, PATTERN, GPU).simulate().seconds


def _point(m: int, n: int, k: int, devices: int, mode: str, single_s: float) -> dict:
    group = DeviceGroup.build(GPU, devices=devices, link=LINK)
    step = modeled_shape_step(m, n, k, PATTERN, group, mode)
    return {
        "seconds": step.seconds,
        "compute_s": step.compute_seconds,
        "comm_s": step.comm.seconds,
        "comm_fraction": round(step.comm_fraction, 4),
        "speedup_vs_single": single_s / step.seconds,
        "efficiency": single_s / step.seconds / devices,
    }


def run_config(
    name: str,
    n: int,
    k: int,
    *,
    device_counts: tuple[int, ...],
    crossover_m: tuple[int, ...],
) -> dict:
    single_s = _single_device_seconds(SCALING_M, n, k)
    scaling: dict[str, dict] = {"column": {}, "row": {}}
    for mode in scaling:
        for devices in device_counts:
            if devices == 1:
                scaling[mode][str(devices)] = {
                    "seconds": single_s,
                    "compute_s": single_s,
                    "comm_s": 0.0,
                    "comm_fraction": 0.0,
                    "speedup_vs_single": 1.0,
                    "efficiency": 1.0,
                }
                continue
            scaling[mode][str(devices)] = _point(
                SCALING_M, n, k, devices, mode, single_s
            )

    points = []
    for m in crossover_m:
        column = modeled_shape_step(
            m, n, k, PATTERN,
            DeviceGroup.build(GPU, devices=CROSSOVER_DEVICES, link=LINK),
            "column",
        )
        row = modeled_shape_step(
            m, n, k, PATTERN,
            DeviceGroup.build(GPU, devices=CROSSOVER_DEVICES, link=LINK),
            "row",
        )
        points.append(
            {
                "m": m,
                "column_s": column.seconds,
                "column_comm_fraction": round(column.comm_fraction, 4),
                "row_s": row.seconds,
                "row_comm_fraction": round(row.comm_fraction, 4),
                "winner": "column" if column.seconds <= row.seconds else "row",
            }
        )
    first_winner = points[0]["winner"]
    crossover = next(
        (p["m"] for p in points if p["winner"] != first_winner), None
    )
    return {
        "name": name,
        "shape": {"m": SCALING_M, "n": n, "k": k},
        "pattern": PATTERN.label(),
        "single_device_s": single_s,
        "scaling": scaling,
        "crossover": {
            "devices": CROSSOVER_DEVICES,
            "points": points,
            "first_winner": first_winner,
            "crossover_m": crossover,
        },
    }


def run_distributed_bench(
    *, smoke: bool = False, generated_at: "str | None" = None
) -> dict:
    shapes = SMOKE_SHAPES if smoke else SHAPES
    device_counts = SMOKE_DEVICE_COUNTS if smoke else DEVICE_COUNTS
    crossover_m = SMOKE_CROSSOVER_M if smoke else CROSSOVER_M
    return {
        "schema": SCHEMA,
        "meta": bench_meta(
            SCHEMA,
            config={
                "gpu": GPU,
                "link": LINK,
                "pattern": PATTERN.label(),
                "shapes": [list(s) for s in shapes],
                "device_counts": list(device_counts),
                "crossover_m": list(crossover_m),
                "scaling_m": SCALING_M,
            },
            generated_at=generated_at,
        ),
        "gpu": GPU,
        "link": LINK,
        "pattern": PATTERN.label(),
        "configs": [
            run_config(
                name, n, k,
                device_counts=device_counts,
                crossover_m=crossover_m,
            )
            for name, n, k in shapes
        ],
    }


def write_results(result: dict) -> pathlib.Path:
    OUTPUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def render_results(result: dict) -> str:
    table = TextTable(
        ["config", "mode", "devices", "modeled ms", "comm %", "speedup", "eff"],
        title="distributed strong scaling (modeled, "
        f"{result['gpu']} x {result['link']})",
    )
    for config in result["configs"]:
        for mode, by_devices in config["scaling"].items():
            for devices, point in by_devices.items():
                table.add_row(
                    [
                        config["name"],
                        mode,
                        devices,
                        f"{point['seconds'] * 1e3:.3f}",
                        f"{point['comm_fraction'] * 100:.1f}",
                        f"{point['speedup_vs_single']:.2f}x",
                        f"{point['efficiency'] * 100:.0f}%",
                    ]
                )
    lines = [table.render()]
    for config in result["configs"]:
        cross = config["crossover"]
        winners = ", ".join(
            f"m={p['m']}:{p['winner']}" for p in cross["points"]
        )
        flip = (
            f"flips at m={cross['crossover_m']}"
            if cross["crossover_m"] is not None
            else "no flip"
        )
        lines.append(
            f"{config['name']} column-vs-row @ {cross['devices']} devices: "
            f"{winners} ({flip})"
        )
    return "\n".join(lines)


def check_acceptance(result: dict) -> "str | None":
    """The tentpole bar: 4-device column-parallel below half the
    single-device latency on the large Llama shape — or a reason
    string when the data misses it (None = pass, or not measured in
    smoke mode)."""
    by_name = {c["name"]: c for c in result["configs"]}
    config = by_name.get(LARGE_SHAPE)
    if config is None:
        return None  # smoke subset
    point = config["scaling"]["column"].get("4")
    if point is None:
        return None
    ratio = point["seconds"] / config["single_device_s"]
    if ratio >= 0.5:
        return (
            f"4-device column-parallel models {ratio:.2f}x the "
            f"single-device latency on {LARGE_SHAPE} (bar: < 0.5x)"
        )
    return None


def test_bench_distributed(benchmark, emit):
    result = benchmark.pedantic(run_distributed_bench, rounds=1, iterations=1)
    path = write_results(result)
    emit("distributed", render_results(result) + f"\n\nwrote {path}")

    assert result["schema"] == SCHEMA
    assert len(result["configs"]) == len(SHAPES)
    for config in result["configs"]:
        for mode in ("column", "row"):
            assert set(config["scaling"][mode]) == {
                str(d) for d in DEVICE_COUNTS
            }
            for point in config["scaling"][mode].values():
                assert point["seconds"] > 0
                assert 0 <= point["comm_fraction"] <= 1
        assert len(config["crossover"]["points"]) == len(CROSSOVER_M)
    assert check_acceptance(result) is None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one shape, 2 devices, no JSON write (CI rot check)",
    )
    args = parser.parse_args(argv)
    result = run_distributed_bench(smoke=args.smoke)
    print(render_results(result))
    if not args.smoke:
        print(f"\nwrote {write_results(result)}")
        failure = check_acceptance(result)
        if failure is not None:
            print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
