"""Figure 10 — roofline analysis on the A100 (m = n = k = 4096)."""

from repro.bench.fig10 import render_fig10, run_fig10


def test_fig10_roofline(benchmark, emit):
    result = benchmark(run_fig10, "A100")
    emit("fig10_roofline", render_fig10(result))

    for sparsity in (0.5, 0.625, 0.75, 0.875):
        ours = result.point("NM-SpMM", sparsity)
        theirs = result.point("nmSPARSE", sparsity)
        assert ours.roofline_efficiency > theirs.roofline_efficiency * 0.99
        assert ours.achieved_tflops <= ours.attainable_tflops
