"""§IV-D headline numbers.

"NM-SpMM is 2.1x faster than nmSPARSE, with speedup over cuBLAS
ranging from 1.4x to 6.3x" — the cross-GPU summary over the 100-point
dataset, plus the per-sparsity A100 geomeans
(1.8/2.4/3.5/6.3x over cuBLAS, 1.5/1.8/1.5/1.2x over nmSPARSE).
"""

from repro.bench.fig9 import run_fig9
from repro.utils.intmath import geomean
from repro.utils.tables import TextTable

PAPER_A100_CUBLAS = {0.5: 1.8, 0.625: 2.4, 0.75: 3.5, 0.875: 6.3}
PAPER_A100_NMSPARSE = {0.5: 1.5, 0.625: 1.8, 0.75: 1.5, 0.875: 1.2}


def _headline(gpus=("A100", "3090", "4090")):
    results = {gpu: run_fig9(gpu) for gpu in gpus}
    return results


def test_headline_speedups(benchmark, emit):
    results = benchmark.pedantic(_headline, rounds=1, iterations=1)

    table = TextTable(
        ["gpu", "sparsity", "vs cuBLAS", "paper", "vs nmSPARSE", "paper"],
        title="§IV-D headline speedups (geomean over the 100-point dataset)",
    )
    overall_vs_nmsparse = []
    vs_cublas_range = []
    for result in results.values():
        for sparsity in result.sparsities():
            nm = result.geomean_speedup("NM-SpMM", sparsity)
            ns = result.geomean_speedup("nmSPARSE", sparsity)
            vs_cublas_range.append(nm)
            overall_vs_nmsparse.append(nm / ns)
            is_a100 = result.gpu.startswith("A100")
            table.add_row(
                [
                    result.gpu,
                    f"{sparsity * 100:.1f}%",
                    f"{nm:.2f}x",
                    f"{PAPER_A100_CUBLAS[sparsity]:.1f}x" if is_a100 else "-",
                    f"{nm / ns:.2f}x",
                    f"{PAPER_A100_NMSPARSE[sparsity]:.1f}x" if is_a100 else "-",
                ]
            )
    overall = geomean(overall_vs_nmsparse)
    lo, hi = min(vs_cublas_range), max(vs_cublas_range)
    table.add_row(["ALL", "overall", f"{lo:.1f}-{hi:.1f}x", "1.4-6.3x",
                   f"{overall:.2f}x", "2.1x"])
    emit("headline_speedups", table.render())

    # Shape acceptance: the overall nmSPARSE advantage is of the
    # paper's order, and the cuBLAS range brackets sensibly.
    assert 1.2 <= overall <= 2.6
    assert lo >= 0.9
    assert hi <= 8.0


def test_a100_headline_close_to_paper(emit):
    result = run_fig9("A100")
    table = TextTable(
        ["sparsity", "measured", "paper", "ratio"],
        title="A100 NM-SpMM speedup vs cuBLAS — paper comparison",
    )
    for sparsity, target in PAPER_A100_CUBLAS.items():
        got = result.geomean_speedup("NM-SpMM", sparsity)
        table.add_row(
            [f"{sparsity * 100:.1f}%", f"{got:.2f}x", f"{target:.1f}x",
             f"{got / target:.2f}"]
        )
        assert 0.6 * target <= got <= 1.45 * target
    emit("headline_a100_vs_paper", table.render())
