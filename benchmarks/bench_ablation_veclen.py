"""Ablation: vector length L (§III-A trade-off).

"as L decreases, the accuracy of the N:M sparse network improves,
while a larger L facilitates load distribution within the warp and
data reuse within a thread."  This bench sweeps L at 75% sparsity and
reports both sides: modelled performance (packed footprint shrinks
with fewer, wider windows) and pruning quality on synthetic weights.
"""

import numpy as np

from repro.model.engine import simulate_nm_spmm
from repro.sparsity.colinfo import expected_packed_fraction
from repro.sparsity.compress import compress
from repro.sparsity.config import NMPattern
from repro.sparsity.pruning import prune_dense
from repro.sparsity.quality import relative_frobenius_error
from repro.utils.tables import TextTable
from repro.workloads.synthetic import random_dense

SHAPE = (4096, 4096, 4096)
VECTOR_LENGTHS = (4, 8, 16, 32, 64, 128)


def _performance_side():
    out = []
    for ell in VECTOR_LENGTHS:
        pattern = NMPattern(8, 32, vector_length=ell)
        rep = simulate_nm_spmm(*SHAPE, pattern, "A100")
        out.append((ell, rep))
    return out


def _accuracy_side(seed=0):
    """One-shot pruning error of a small GEMM at each L."""
    rng = np.random.default_rng(seed)
    k, n, m_rows = 256, 256, 64
    a = random_dense(m_rows, k, rng)
    b = random_dense(k, n, rng)
    dense = a @ b
    out = []
    for ell in VECTOR_LENGTHS:
        pattern = NMPattern(8, 32, vector_length=ell)
        pruned, mask = prune_dense(pattern, b)
        comp = compress(pattern, pruned, mask)
        err = relative_frobenius_error(a @ comp.to_dense(), dense)
        out.append((ell, err))
    return out


def test_ablation_vector_length(benchmark, emit):
    perf = benchmark.pedantic(_performance_side, rounds=1, iterations=1)
    acc = _accuracy_side()

    table = TextTable(
        ["L", "windows/row (qs)", "packed fraction", "time (ms)",
         "TFLOPS", "pruning rel. error"],
        title="Ablation — vector length L at 75% sparsity (A100, 4096^3 "
        "perf; 256x256 weight quality)",
    )
    errors = {}
    for (ell, rep), (_, err) in zip(perf, acc, strict=True):
        pattern = NMPattern(8, 32, vector_length=ell)
        qs = 128 // ell if ell <= 128 else 1
        frac = expected_packed_fraction(pattern, max(1, qs))
        errors[ell] = err
        table.add_row(
            [
                ell,
                max(1, qs),
                f"{frac:.3f}",
                f"{rep.seconds * 1e3:.3f}",
                f"{rep.tflops:.2f}",
                f"{err:.4f}",
            ]
        )
    emit("ablation_veclen", table.render())

    # §III-A: smaller L -> better accuracy (lower error), monotone in
    # expectation on random weights.
    assert errors[4] <= errors[128] + 1e-3
    # and more pruning windows per block row -> larger packed footprint
    p = NMPattern(8, 32)
    assert expected_packed_fraction(p, 8) > expected_packed_fraction(p, 1)
