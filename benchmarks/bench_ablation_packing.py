"""Ablation: the packing strategy (§III-C1) on and off.

Forces the packed / non-packed load path at every sparsity level
(m = n = k = 4096, A100) to show where packing pays: nowhere at
moderate sparsity, and increasingly at 75%/87.5% — the design choice
behind the 70% threshold.
"""

from repro.kernels.tiling import params_for
from repro.model.calibration import calibration_for
from repro.model.engine import KernelSimulator
from repro.model.profiles import ALoadMode, ExecutionProfile, OverlapMode
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern
from repro.utils.tables import TextTable
from repro.workloads.cases import PAPER_SPARSITY_PATTERNS

SHAPE = (4096, 4096, 4096)


def _run_ablation(gpu="A100"):
    sim = KernelSimulator.for_gpu(gpu)
    calib = calibration_for(sim.spec)
    rows = []
    for sparsity, (n, m) in sorted(PAPER_SPARSITY_PATTERNS.items()):
        if sparsity == 0.0:
            continue
        pattern = NMPattern(n, m, vector_length=32)
        problem = SparseProblem(ProblemShape(*SHAPE), pattern)
        params = params_for(*SHAPE, pattern, sim.spec.smem_bytes_per_sm)
        reports = {}
        for mode in (ALoadMode.FULL, ALoadMode.PACKED):
            profile = ExecutionProfile(
                name=f"NM-SpMM[{mode.value}]",
                overlap=OverlapMode.DOUBLE_BUFFER,
                a_load=mode,
                aux_instr_per_step=calib.aux_instr_per_step_v3,
                issue_efficiency=calib.nm_issue_efficiency,
            )
            reports[mode] = sim.run(problem, params, profile)
        rows.append((sparsity, reports))
    return rows


def test_ablation_packing(benchmark, emit):
    rows = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)

    table = TextTable(
        ["sparsity", "non-packed (ms)", "packed (ms)", "packing gain",
         "A traffic ratio"],
        title="Ablation — packing on/off, A100, m=n=k=4096, V3 pipeline",
    )
    gains = {}
    for sparsity, reports in rows:
        full = reports[ALoadMode.FULL]
        packed = reports[ALoadMode.PACKED]
        gain = full.seconds / packed.seconds
        gains[sparsity] = gain
        table.add_row(
            [
                f"{sparsity * 100:.1f}%",
                f"{full.seconds * 1e3:.3f}",
                f"{packed.seconds * 1e3:.3f}",
                f"{gain:.3f}x",
                f"{packed.traffic.a_staged / full.traffic.a_staged:.3f}",
            ]
        )
    emit("ablation_packing", table.render())

    # Packing must help most at the highest sparsity and help the
    # least (or not at all) at 50%.
    assert gains[0.875] >= gains[0.75] >= gains[0.5] * 0.999
    assert gains[0.875] > 1.0
