"""Figure 7 — step-wise optimization evaluation (V1/V2/V3 vs cuBLAS).

Regenerates the paper's bars: efficiency at sparsity 0/50/62.5/75/87.5%
on A100, RTX 3090 and RTX 4090 with m = n = k = 4096.
"""

from repro.bench.fig7 import render_fig7, run_fig7


def test_fig7_stepwise(benchmark, emit):
    result = benchmark(run_fig7, ("A100", "3090", "4090"))
    emit("fig7_stepwise", render_fig7(result))

    # Shape acceptance (same assertions as tests/test_paper_shapes.py,
    # re-checked on the benchmarked artefact).
    for sparsity in (0.75, 0.875):
        v1 = result.cell("A100 80G", sparsity, "V1").efficiency
        v2 = result.cell("A100 80G", sparsity, "V2").efficiency
        v3 = result.cell("A100 80G", sparsity, "V3").efficiency
        assert v1 < v2 < v3
