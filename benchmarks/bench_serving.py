"""Serving-runtime benchmark: latency/throughput under synthetic load.

Runs the canned Llama-shaped scenarios (Poisson and bursty arrivals,
single- and multi-model registries, mixed prefill/decode traffic, and
a priority-tiered fifo-vs-slo-edf pair) through the serving simulator
and writes ``BENCH_serving.json`` at the repo root so the serving perf
trajectory accrues across PRs.

Schema (``nm-spmm/serving-bench/v2``)::

    {
      "schema": "nm-spmm/serving-bench/v2",
      "configs": [
        {
          "name": "<scenario>",
          "scenario": "<describe() string>",
          "metrics": {
            "latency": {"p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"},
            "queue_wait": {...same keys...},
            "latency_by_priority": {"<tier>": {...same keys...}},
            "slo": {"requests", "attained", "attainment_rate",
                    "attainment_by_priority"},
            "continuous": {"steps", "joins", "evictions", "preemptions"},
            "achieved_qps", "completed_requests", "batches", "launches",
            "mean_batch_requests", "mean_batch_rows",
            "batch_requests_histogram", "padded_rows_histogram",
            "padding_overhead", "modeled_gpu_busy_s",
            "modeled_gpu_utilization", "plan_cache", "policy", ...
          }
        }, ...
      ]
    }

v2 adds the ``latency_by_priority``, ``slo``, and ``continuous``
blocks (plus ``policy.scheduling`` / ``policy.continuous_batching`` /
``policy.decode_rows_threshold``) and the three scheduling scenarios.
The per-launch histograms/means span ``launches`` = dynamic
``batches`` + continuous-batching engine steps (in v1 they spanned
``batches``, which continuous runs would under-count).  A top-level
``tracer_overhead`` block (additive) records the observability
layer's cost on the medium config: disabled-facade and
tracing-enabled wall times with their ratios.  A top-level ``meta``
block (also additive; see :func:`repro.utils.benchmeta.bench_meta`)
carries the seed and a fingerprint of the scenario grid so ``python
-m repro bench diff`` refuses cross-configuration comparisons.

Run standalone (``python benchmarks/bench_serving.py``) or under
pytest-benchmark (``pytest benchmarks/bench_serving.py``).
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
import time

from repro.obs import Tracer
from repro.serve.batcher import BatchingPolicy
from repro.serve.scenarios import LlamaServingScenario
from repro.utils.benchmeta import bench_meta
from repro.utils.tables import TextTable

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_serving.json"
SCHEMA = "nm-spmm/serving-bench/v2"

#: The tracked scenario grid.  Numerics are disabled: the benchmark
#: tracks scheduler/model behavior, and modeled time is what drives the
#: simulated clock either way.  ``priority-fifo`` and
#: ``priority-slo-edf`` replay the *identical* tiered trace under the
#: two schedulers, so their delta is pure scheduling.
SCENARIOS: dict[str, LlamaServingScenario] = {
    "poisson-7b": LlamaServingScenario(
        models=("llama-7b",),
        qps=200.0,
        duration_s=2.0,
        arrival="poisson",
        execute_numerics=False,
    ),
    "bursty-7b": LlamaServingScenario(
        models=("llama-7b",),
        qps=200.0,
        duration_s=2.0,
        arrival="bursty",
        execute_numerics=False,
    ),
    "poisson-multi": LlamaServingScenario(
        models=("llama-7b", "llama-13b"),
        qps=400.0,
        duration_s=2.0,
        arrival="poisson",
        execute_numerics=False,
        policy=BatchingPolicy(max_wait_s=1e-3),
    ),
    "mixed-prefill-decode": LlamaServingScenario.mixed_prefill_decode(),
    "priority-fifo": LlamaServingScenario.priority_tiered("fifo"),
    "priority-slo-edf": LlamaServingScenario.priority_tiered("slo-edf"),
}

#: The priority tier the fifo-vs-slo-edf acceptance comparison reads.
HIGH_PRIORITY_TIER = "2"

#: Medium config the tracer-overhead measurement runs on.
TRACER_OVERHEAD_SCENARIO = "poisson-7b"
TRACER_OVERHEAD_ROUNDS = 15
#: The always-on production tracer configuration ``sampled_ratio``
#: measures: head-sample 5% of traces, retain at most 4096 records.
TRACER_SAMPLE_RATE = 0.05
TRACER_RING_CAPACITY = 4096


def measure_tracer_overhead() -> dict:
    """Cost of the observability layer on the medium config.

    Tracing is disabled by default (``tracer=None``), so the default
    path pays only the facade — a ``None`` check per instrumentation
    site.  That cost is below measurement resolution, which is what
    ``facade_ratio`` asserts: two *interleaved* min-of-rounds timings
    of the disabled path agree within the 5% budget (interleaving
    exposes both series to the same machine noise).
    ``enabled_ratio`` records what opting in costs (span/metric
    recording against a numerics-off simulation whose per-launch work
    is tiny, so this is the worst case — with numerics on, kernel time
    dominates).  ``sampled_ratio`` is the always-on production
    configuration — head sampling plus a bounded retention ring — and
    is asserted to stay under the 1.2x budget."""
    base = SCENARIOS[TRACER_OVERHEAD_SCENARIO]

    def once(make_tracer) -> float:
        scenario = dataclasses.replace(base, tracer=make_tracer())
        start = time.perf_counter()  # repro-lint: disable=DET002 -- host benchmark timing
        scenario.run()
        return time.perf_counter() - start  # repro-lint: disable=DET002 -- host benchmark timing

    def sampled_tracer() -> Tracer:
        return Tracer(
            sample_rate=TRACER_SAMPLE_RATE,
            ring_capacity=TRACER_RING_CAPACITY,
        )

    once(lambda: None)  # warm imports/allocator before timing
    disabled = disabled_again = enabled = sampled = math.inf
    for _ in range(TRACER_OVERHEAD_ROUNDS):
        disabled = min(disabled, once(lambda: None))
        enabled = min(enabled, once(Tracer))
        sampled = min(sampled, once(sampled_tracer))
        disabled_again = min(disabled_again, once(lambda: None))
    return {
        "scenario": TRACER_OVERHEAD_SCENARIO,
        "rounds": TRACER_OVERHEAD_ROUNDS,
        "disabled_s": disabled,
        "facade_ratio": disabled_again / disabled,
        "enabled_s": enabled,
        "enabled_ratio": enabled / disabled,
        "sample_rate": TRACER_SAMPLE_RATE,
        "ring_capacity": TRACER_RING_CAPACITY,
        "sampled_s": sampled,
        "sampled_ratio": sampled / disabled,
    }


def bench_metadata(generated_at: "str | None" = None) -> dict:
    """The standard ``meta`` header for this benchmark.

    The fingerprint covers only the scenario grid (name ->
    ``describe()``), so a ``--smoke`` run — same grid, overhead
    measurement skipped — stays comparable with the committed full
    run, while any grid edit refuses comparison against stale
    baselines."""
    seeds = {scenario.seed for scenario in SCENARIOS.values()}
    return bench_meta(
        SCHEMA,
        config={name: s.describe() for name, s in SCENARIOS.items()},
        seed=seeds.pop() if len(seeds) == 1 else None,
        generated_at=generated_at,
    )


def run_serving_bench(
    *,
    include_overhead: bool = True,
    generated_at: "str | None" = None,
) -> dict:
    """Run every scenario and return the schema-shaped result.

    ``include_overhead=False`` is the CI smoke mode: the scenario
    metrics are deterministic on the simulated clock, but the
    tracer-overhead block measures host wall time and has no business
    in a regression gate."""
    configs = []
    for name, scenario in SCENARIOS.items():
        report = scenario.run()
        configs.append(
            {
                "name": name,
                "scenario": scenario.describe(),
                "metrics": report.summary(),
            }
        )
    result = {
        "schema": SCHEMA,
        "meta": bench_metadata(generated_at),
        "configs": configs,
    }
    if include_overhead:
        result["tracer_overhead"] = measure_tracer_overhead()
    return result


def config_named(result: dict, name: str) -> dict:
    for config in result["configs"]:
        if config["name"] == name:
            return config
    raise KeyError(name)


def write_results(
    result: dict, path: "pathlib.Path | None" = None
) -> pathlib.Path:
    path = OUTPUT_PATH if path is None else path
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return path


def render_results(result: dict) -> str:
    table = TextTable(
        ["scenario", "p50 ms", "p99 ms", "hi-pri p99", "SLO %", "QPS",
         "batch req", "cache hit%"],
        title="serving benchmark",
    )
    for config in result["configs"]:
        metrics = config["metrics"]
        hi = metrics["latency_by_priority"].get(HIGH_PRIORITY_TIER)
        slo_rate = metrics["slo"]["attainment_rate"]
        table.add_row(
            [
                config["name"],
                f"{metrics['latency']['p50_ms']:.3f}",
                f"{metrics['latency']['p99_ms']:.3f}",
                "-" if hi is None else f"{hi['p99_ms']:.3f}",
                "-" if slo_rate is None else f"{slo_rate * 100:.1f}",
                f"{metrics['achieved_qps']:.1f}",
                f"{metrics['mean_batch_requests']:.2f}",
                f"{metrics['plan_cache']['hit_rate'] * 100:.1f}",
            ]
        )
    return table.render()


def test_bench_serving(benchmark, emit):
    result = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)
    path = write_results(result)
    emit("serving", render_results(result) + f"\n\nwrote {path}")

    assert result["schema"] == SCHEMA
    assert len(result["configs"]) == len(SCENARIOS)
    for config in result["configs"]:
        metrics = config["metrics"]
        lat = metrics["latency"]
        assert 0 < lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"]
        assert metrics["achieved_qps"] > 0
        assert metrics["completed_requests"] > 0
        # Row bucketing must make the plan cache converge under load.
        assert metrics["plan_cache"]["hit_rate"] > 0.5

    # Continuous batching must actually roll on the mixed scenario,
    # and the histogram mass must equal the launch count.
    mixed = config_named(result, "mixed-prefill-decode")["metrics"]
    assert mixed["continuous"]["steps"] > 0
    assert mixed["continuous"]["evictions"] > 0
    assert (
        mixed["launches"]
        == mixed["batches"] + mixed["continuous"]["steps"]
        == sum(mixed["padded_rows_histogram"].values())
    )

    # The acceptance comparison: at equal offered load, slo-edf must
    # beat fifo on high-priority p99 *and* SLO attainment.
    fifo = config_named(result, "priority-fifo")["metrics"]
    edf = config_named(result, "priority-slo-edf")["metrics"]
    fifo_hi = fifo["latency_by_priority"][HIGH_PRIORITY_TIER]
    edf_hi = edf["latency_by_priority"][HIGH_PRIORITY_TIER]
    assert edf_hi["p99_ms"] < fifo_hi["p99_ms"]
    fifo_hi_slo = fifo["slo"]["attainment_by_priority"][HIGH_PRIORITY_TIER]
    edf_hi_slo = edf["slo"]["attainment_by_priority"][HIGH_PRIORITY_TIER]
    assert edf_hi_slo > fifo_hi_slo
    assert edf["slo"]["attainment_rate"] > fifo["slo"]["attainment_rate"]

    # Observability acceptance: the default (disabled) path pays only
    # the facade, whose cost stays below the 5% measurement budget.
    overhead = result["tracer_overhead"]
    assert overhead["disabled_s"] > 0 and overhead["enabled_s"] > 0
    assert overhead["facade_ratio"] < 1.05
    # Sampled + ring-bounded tracing is cheap enough to leave on.
    assert overhead["sampled_s"] > 0
    assert overhead["sampled_ratio"] < 1.2


if __name__ == "__main__":  # pragma: no cover
    import argparse

    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--smoke", action="store_true",
        help="skip the wall-clock tracer-overhead measurement "
             "(deterministic metrics only, for CI bench diff)",
    )
    cli.add_argument(
        "--out", default=None, metavar="PATH",
        help=f"output path (default {OUTPUT_PATH})",
    )
    cli.add_argument(
        "--timestamp", default=None, metavar="ISO8601",
        help="recorded as meta.generated_at (this tool never reads "
             "the wall clock itself)",
    )
    cli_args = cli.parse_args()
    bench_result = run_serving_bench(
        include_overhead=not cli_args.smoke,
        generated_at=cli_args.timestamp,
    )
    print(render_results(bench_result))
    out = pathlib.Path(cli_args.out) if cli_args.out else None
    print(f"\nwrote {write_results(bench_result, out)}")
