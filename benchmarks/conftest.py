"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artefact, times the driver with
pytest-benchmark, prints the paper-style table, and archives it under
``benchmarks/results/`` so the run leaves inspectable artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a rendered table and archive it as <name>.txt."""

    def _emit(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _emit
