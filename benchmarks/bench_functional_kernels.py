"""Functional-kernel throughput (pytest-benchmark wall clock).

Times the NumPy kernels themselves — reference vs functional vs
blocked vs packed vs dense BLAS — on a medium problem.  These are the
substrate's own numbers (host CPU), not the GPU model's.
"""

import numpy as np
import pytest

from repro.kernels.blocked import nm_spmm_blocked
from repro.kernels.dense import dense_gemm
from repro.kernels.fast import nm_spmm_fast
from repro.kernels.functional import nm_spmm_functional
from repro.kernels.packed import nm_spmm_packed
from repro.kernels.reference import nm_spmm_reference
from repro.kernels.tiling import TileParams
from repro.sparsity.colinfo import preprocess_offline
from repro.sparsity.compress import compress
from repro.sparsity.config import NMPattern
from repro.sparsity.gather import build_gather_layout
from repro.sparsity.pruning import prune_dense
from repro.workloads.synthetic import random_dense

M, N, K = 256, 512, 512
PATTERN = NMPattern(8, 32, vector_length=32)
PARAMS = TileParams(ms=32, ns=64, mr=32, nr=32, mt=8, nt=4, ks=128)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    a = random_dense(M, K, rng)
    b = random_dense(K, N, rng)
    pruned, mask = prune_dense(PATTERN, b)
    comp = compress(PATTERN, pruned, mask)
    ws = PARAMS.ws(PATTERN)
    col_info = preprocess_offline(comp, ws, PARAMS.ns)
    return a, b, pruned, comp, col_info


@pytest.fixture(scope="module")
def gather_layout(data):
    return build_gather_layout(data[3])


def test_bench_dense_gemm(benchmark, data):
    a, b, pruned, comp, col_info = data
    out = benchmark(dense_gemm, a, pruned)
    assert out.shape == (M, N)


def test_bench_functional(benchmark, data):
    a, b, pruned, comp, col_info = data
    out = benchmark(nm_spmm_functional, a, comp)
    np.testing.assert_allclose(out, a @ pruned, rtol=2e-5, atol=2e-5)


def test_bench_fast(benchmark, data, gather_layout):
    """The gather-GEMM backend over its precomputed layout — the
    library's default online path."""
    a, b, pruned, comp, col_info = data
    out = benchmark(nm_spmm_fast, a, gather_layout)
    np.testing.assert_allclose(out, a @ pruned, rtol=2e-5, atol=2e-5)


def test_bench_blocked(benchmark, data):
    a, b, pruned, comp, col_info = data
    out = benchmark(nm_spmm_blocked, a, comp, PARAMS)
    np.testing.assert_allclose(out, a @ pruned, rtol=2e-5, atol=2e-5)


def test_bench_packed(benchmark, data):
    a, b, pruned, comp, col_info = data
    out = benchmark(nm_spmm_packed, a, comp, PARAMS, col_info)
    np.testing.assert_allclose(out, a @ pruned, rtol=2e-5, atol=2e-5)


def test_bench_reference_small(benchmark, data):
    """The gold reference is O(w*q) Python loops — bench a slice."""
    a, b, pruned, comp, col_info = data
    out = benchmark(nm_spmm_reference, a[:16], comp)
    np.testing.assert_allclose(out, a[:16] @ pruned, rtol=2e-5, atol=2e-5)


def test_bench_compression(benchmark, data):
    a, b, pruned, comp, col_info = data
    result = benchmark(compress, PATTERN, b)
    assert result.w == comp.w


def test_bench_offline_preprocessing(benchmark, data):
    a, b, pruned, comp, col_info = data
    ws = PARAMS.ws(PATTERN)
    result = benchmark(preprocess_offline, comp, ws, PARAMS.ns)
    assert result.num_k_blocks == col_info.num_k_blocks
