"""Figure 9 — kernel performance against related work.

The full 100-point Llama dataset at the four sparsity levels on each
GPU: NM-SpMM / nmSPARSE / Sputnik speedups over cuBLAS plus the ideal
bound, exactly the series the paper plots.
"""

import pytest

from repro.bench.fig9 import render_fig9, run_fig9

GPUS = ("A100", "3090", "4090")


@pytest.mark.parametrize("gpu", GPUS)
def test_fig9_comparison(benchmark, emit, gpu):
    result = benchmark(run_fig9, gpu)
    emit(f"fig9_comparison_{gpu.lower().replace(' ', '')}", render_fig9(result))

    for sparsity in (0.5, 0.625, 0.75, 0.875):
        nm = result.geomean_speedup("NM-SpMM", sparsity)
        ns = result.geomean_speedup("nmSPARSE", sparsity)
        sp = result.geomean_speedup("Sputnik", sparsity)
        ideal = result.geomean_speedup("ideal", sparsity)
        assert ideal >= nm > ns > sp


def test_fig9_per_point_detail(emit):
    """Archive the full 100-point series (the paper's x-axis)."""
    result = run_fig9("A100")
    emit("fig9_per_point_a100", render_fig9(result, per_point=True))
