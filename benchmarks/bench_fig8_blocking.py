"""Figure 8 — kernels with different blocking parameters.

Small/medium/large Table I kernels on the six Table II matrices at
every sparsity level; the kernel class matched to the matrix class
must win its column.  The paper shows A100; the same shape holds on
the other catalogued parts, benched here as an extension.
"""

import pytest

from repro.bench.fig8 import render_fig8, run_fig8
from repro.kernels.tiling import MatrixSizeClass


def test_fig8_blocking_parameters(benchmark, emit):
    result = benchmark(run_fig8, "A100")
    emit("fig8_blocking", render_fig8(result))

    assert result.best_kernel("A", 0.5) is MatrixSizeClass.SMALL
    assert result.best_kernel("F", 0.5) is MatrixSizeClass.LARGE


@pytest.mark.parametrize("gpu", ["3090", "4090"])
def test_fig8_blocking_parameters_consumer(benchmark, emit, gpu):
    result = benchmark(run_fig8, gpu)
    emit(f"fig8_blocking_{gpu}", render_fig8(result))
    assert result.best_kernel("F", 0.5) is MatrixSizeClass.LARGE
