"""Table I — the autotuner must rediscover the recommended blocking.

Runs the constraint-driven search over the full candidate space for a
small/medium/large exemplar each and compares winners with Table I.
"""

from repro.bench.tables import render_table1, run_table1


def test_table1_autotune(benchmark, emit):
    result = benchmark.pedantic(run_table1, args=("A100",), rounds=1, iterations=1)
    emit("table1_autotune", render_table1(result))

    # Reproduction criterion (see EXPERIMENTS.md): the small and large
    # block shapes must match Table I exactly; the medium class may
    # land on the neighbouring same-area configuration, and thread
    # tiles may tie at equal predicted time (the model is FMA-bound
    # there, so Eq. 6's CMAR does not discriminate).
    by_class = {r.size_class.value: r for r in result.rows}
    assert by_class["small"].block_shape_matches
    assert by_class["large"].block_shape_matches
    med = by_class["medium"].tuned
    assert med.ms * med.ns in (32 * 64, 64 * 64)
