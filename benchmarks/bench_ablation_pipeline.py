"""Ablation: pipeline latency hiding (§III-C2) on and off.

Compares the synchronous Listing-1 schedule with the Listing-4
double-buffered pipeline at fixed strategy, and cross-checks the
engine's closed-form steady state against the discrete software-
pipeline scheduler.
"""

from repro.model.engine import simulate_nm_spmm
from repro.model.pipeline import SoftwarePipeline, steady_state_cycles
from repro.sparsity.config import NMPattern
from repro.utils.tables import TextTable
from repro.workloads.cases import PAPER_SPARSITY_PATTERNS

SHAPE = (4096, 4096, 4096)


def _run(gpu="A100"):
    rows = []
    for sparsity, (n, m) in sorted(PAPER_SPARSITY_PATTERNS.items()):
        if sparsity == 0.0:
            continue
        pattern = NMPattern(n, m, vector_length=32)
        v2 = simulate_nm_spmm(*SHAPE, pattern, gpu, version="V2")
        v3 = simulate_nm_spmm(*SHAPE, pattern, gpu, version="V3")
        rows.append((sparsity, v2, v3))
    return rows


def test_ablation_pipeline_overlap(benchmark, emit):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table = TextTable(
        ["sparsity", "sync (ms)", "pipelined (ms)", "overlap gain",
         "exposed (ms)"],
        title="Ablation — double-buffered pipeline on/off (V2 vs V3), A100",
    )
    gains = {}
    for sparsity, v2, v3 in rows:
        gain = v2.seconds / v3.seconds
        gains[sparsity] = gain
        table.add_row(
            [
                f"{sparsity * 100:.1f}%",
                f"{v2.seconds * 1e3:.3f}",
                f"{v3.seconds * 1e3:.3f}",
                f"{gain:.3f}x",
                f"{v2.stages.exposure_s * 1e3:.3f}",
            ]
        )
    emit("ablation_pipeline", table.render())
    assert all(g >= 1.0 for g in gains.values())


def test_pipeline_scheduler_crossover(emit):
    """The Figs. 5/6 covering relation: whichever stage is longer
    covers the other; the schedule makespan equals the closed form."""
    table = TextTable(
        ["load", "compute", "regime", "serial", "pipelined", "saving"],
        title="Discrete pipeline schedule vs closed form (20 iterations)",
    )
    pipe = SoftwarePipeline(buffers=2)
    for load, comp in [(10, 40), (25, 30), (40, 10)]:
        serial = SoftwarePipeline(buffers=1).uniform_total(
            load, comp, 20
        )
        pipelined = pipe.uniform_total(load, comp, 20)
        closed = steady_state_cycles(load, comp, 20, overlap=1.0)
        assert pipelined == closed
        regime = "compute covers load" if comp >= load else "load covers compute"
        table.add_row(
            [load, comp, regime, f"{serial:.0f}", f"{pipelined:.0f}",
             f"{serial / pipelined:.2f}x"]
        )
    emit("ablation_pipeline_schedule", table.render())
