"""Model-serving benchmark: whole-Llama decode loops under an HBM cap.

Runs the canned :mod:`repro.serve.model_exec.scenarios` workloads —
prefill-heavy chat, memory-constrained long-context summarization, and
bursty agentic decodes — through the serving simulator with a
:class:`~repro.serve.model_exec.executor.ModelExecutor` registered as
the model, and writes ``BENCH_model_serving.json`` at the repo root so
the KV/memory behavior accrues across PRs.

Schema (``nm-spmm/model-serving-bench/v1``)::

    {
      "schema": "nm-spmm/model-serving-bench/v1",
      "configs": [
        {
          "name": "<scenario>",
          "scenario": "<describe() string>",
          "metrics": {
            "latency": {...}, "slo": {...}, "continuous": {...},
            "memory": {"admission", "budget_bytes", "weight_bytes",
                       "kv_peak_bytes", "peak_resident_bytes",
                       "peak_utilization", "kv_evictions",
                       "overflow_steps", "budget_shrinks"},
            "model": {"prefill_s", "thrash_s", "kv_evictions"},
            ...
          }
        }, ...
      ],
      "kv_comparison": {
        "scenario": "<describe() string of the kv-aware run>",
        "kv_aware": {"slo_attainment", "kv_evictions",
                     "overflow_steps", "makespan_s"},
        "none": {...same keys...},
        "attainment_delta": <kv_aware - none, must be > 0>
      }
    }

The acceptance bar (asserted here and mirrored in tier-1 by
``tests/test_model_serving.py``): under the memory-constrained
long-context scenario at *equal offered load*, kv-aware admission
strictly beats the no-memory-model baseline on SLO attainment, the
baseline actually overflows (``overflow_steps > 0``), and every
kv-aware run's byte ledger reconciles — resident ≤ budget at every
recorded event and zero leaked KV after drain.

Run standalone (``python benchmarks/bench_model_serving.py``, add
``--smoke`` for the short no-write CI variant) or under
pytest-benchmark (``pytest benchmarks/bench_model_serving.py``).
"""

from __future__ import annotations

import argparse
import json
import pathlib

from repro.serve.model_exec import (
    agentic_short_decodes,
    long_context_summarization,
    prefill_heavy_chat,
)
from repro.utils.benchmeta import bench_meta
from repro.utils.tables import TextTable

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_model_serving.json"
SCHEMA = "nm-spmm/model-serving-bench/v1"

#: Scenario factories (not instances: smoke mode shortens the runs).
SCENARIOS = {
    "prefill-heavy-chat": prefill_heavy_chat,
    "long-context-summarization": long_context_summarization,
    "agentic-short-decodes": agentic_short_decodes,
}

#: The memory-constrained regime the kv-aware-vs-none comparison runs.
COMPARISON_SCENARIO = "long-context-summarization"

SMOKE_DURATION_S = 0.5


def _run_reconciled(scenario):
    """Run one scenario and re-assert the byte ledger from the outside
    (simulate() already reconciled on drain; the benchmark keeps its
    own belt-and-braces check so a regression fails loudly here)."""
    report = scenario.run()
    mem = report.memory_model
    assert mem is not None, "model-mode run produced no memory model"
    assert not mem.kv, "KV ledger leaked entries after drain"
    if mem.admission == "kv-aware" and mem.budget_shrinks == 0:
        mem.assert_within_budget()
    return report


def _comparison_leg(summary: dict) -> dict:
    return {
        "slo_attainment": summary["slo"]["attainment_rate"],
        "kv_evictions": summary["memory"]["kv_evictions"],
        "overflow_steps": summary["memory"]["overflow_steps"],
        "thrash_s": summary["model"]["thrash_s"],
        "makespan_s": summary["makespan_s"],
    }


def run_model_serving_bench(
    *, smoke: bool = False, generated_at: "str | None" = None
) -> dict:
    overrides = {"duration_s": SMOKE_DURATION_S} if smoke else {}
    configs = []
    for name, factory in SCENARIOS.items():
        scenario = factory(**overrides)
        report = _run_reconciled(scenario)
        configs.append(
            {
                "name": name,
                "scenario": scenario.describe(),
                "metrics": report.summary(),
            }
        )
    kv_scenario = SCENARIOS[COMPARISON_SCENARIO](**overrides)
    kv_summary = _run_reconciled(kv_scenario).summary()
    none_summary = _run_reconciled(
        SCENARIOS[COMPARISON_SCENARIO](kv_admission="none", **overrides)
    ).summary()
    kv_leg = _comparison_leg(kv_summary)
    none_leg = _comparison_leg(none_summary)
    seeds = {
        factory(**overrides).seed for factory in SCENARIOS.values()
    }
    return {
        "schema": SCHEMA,
        "meta": bench_meta(
            SCHEMA,
            config={
                **{c["name"]: c["scenario"] for c in configs},
                "kv_comparison": kv_scenario.describe(),
            },
            seed=seeds.pop() if len(seeds) == 1 else None,
            generated_at=generated_at,
        ),
        "configs": configs,
        "kv_comparison": {
            "scenario": kv_scenario.describe(),
            "kv_aware": kv_leg,
            "none": none_leg,
            "attainment_delta": (
                kv_leg["slo_attainment"] - none_leg["slo_attainment"]
            ),
        },
    }


def config_named(result: dict, name: str) -> dict:
    for config in result["configs"]:
        if config["name"] == name:
            return config
    raise KeyError(name)


def check_acceptance(result: dict) -> "str | None":
    """The tentpole bar (None = pass): kv-aware strictly beats the
    no-memory-model baseline on SLO attainment at equal offered load,
    and the baseline genuinely overflowed."""
    comparison = result["kv_comparison"]
    if comparison["attainment_delta"] <= 0:
        return (
            "kv-aware admission did not beat the baseline: attainment "
            f"{comparison['kv_aware']['slo_attainment']:.3f} vs "
            f"{comparison['none']['slo_attainment']:.3f}"
        )
    if comparison["none"]["overflow_steps"] == 0:
        return "the 'none' baseline never overflowed — not memory-bound"
    if comparison["kv_aware"]["kv_evictions"] == 0:
        return "kv-aware admission never evicted — not memory-bound"
    return None


def write_results(result: dict) -> pathlib.Path:
    OUTPUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def render_results(result: dict) -> str:
    table = TextTable(
        ["scenario", "SLO %", "p99 ms", "QPS", "steps", "HBM peak %",
         "kv evict", "overflow"],
        title="model serving benchmark",
    )
    for config in result["configs"]:
        metrics = config["metrics"]
        memory = metrics["memory"]
        slo_rate = metrics["slo"]["attainment_rate"]
        table.add_row(
            [
                config["name"],
                "-" if slo_rate is None else f"{slo_rate * 100:.1f}",
                f"{metrics['latency']['p99_ms']:.2f}",
                f"{metrics['achieved_qps']:.1f}",
                metrics["continuous"]["steps"],
                f"{memory['peak_utilization'] * 100:.1f}",
                memory["kv_evictions"],
                memory["overflow_steps"],
            ]
        )
    comparison = result["kv_comparison"]
    kv_leg, none_leg = comparison["kv_aware"], comparison["none"]
    lines = [
        table.render(),
        (
            "kv-aware vs none @ equal load: attainment "
            f"{kv_leg['slo_attainment']:.3f} vs "
            f"{none_leg['slo_attainment']:.3f} "
            f"(delta {comparison['attainment_delta']:+.3f}), baseline "
            f"thrash {none_leg['thrash_s']:.3f}s over "
            f"{none_leg['overflow_steps']} overflow steps"
        ),
    ]
    return "\n".join(lines)


def test_bench_model_serving(benchmark, emit):
    result = benchmark.pedantic(
        run_model_serving_bench, rounds=1, iterations=1
    )
    path = write_results(result)
    emit("model_serving", render_results(result) + f"\n\nwrote {path}")

    assert result["schema"] == SCHEMA
    assert len(result["configs"]) == len(SCENARIOS)
    for config in result["configs"]:
        metrics = config["metrics"]
        assert metrics["resilience"]["outcomes"]["completed"] > 0
        assert metrics["continuous"]["steps"] > 0
        memory = metrics["memory"]
        assert memory["weight_bytes"] > 0
        assert memory["kv_peak_bytes"] > 0
        if memory["admission"] == "kv-aware":
            assert memory["peak_resident_bytes"] <= memory["budget_bytes"]
    assert check_acceptance(result) is None


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short runs, no JSON write, no acceptance gate (CI rot check)",
    )
    args = parser.parse_args(argv)
    result = run_model_serving_bench(smoke=args.smoke)
    print(render_results(result))
    if not args.smoke:
        print(f"\nwrote {write_results(result)}")
        failure = check_acceptance(result)
        if failure is not None:
            print(f"FAIL: {failure}")
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
