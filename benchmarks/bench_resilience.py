"""Chaos benchmark: SLO goodput under injected faults, with and
without the resilience machinery.

Runs one tiered-SLO Llama serving scenario (2-device column-parallel
over ethernet) through a grid of fault scenarios × resilience on/off
and writes ``BENCH_resilience.json`` at the repo root.  Every cell
replays the *identical* seeded arrival trace and fault schedule, so
the on/off delta in a row is purely what the resilience machinery
(retries + backoff, timeouts, circuit breakers + re-sharding, load
shedding) buys — or costs — under that fault model.

Schema (``nm-spmm/resilience-bench/v1``)::

    {
      "schema": "nm-spmm/resilience-bench/v1",
      "cells": [
        {
          "name": "<fault scenario>@<on|off>",
          "fault_scenario": "<grid key>",
          "faults": "<spec string or null>",
          "resilience": true/false,
          "scenario": "<describe() string>",
          "metrics": {... ServingReport.summary(), including the
                      "resilience" block: submitted, outcomes, shed,
                      timed_out, failed, retries, launch_faults,
                      failed_launches, circuit_opens, reshards,
                      recovery_s, slo_goodput ...}
        }, ...
      ]
    }

Acceptance (asserted under pytest): request accounting reconciles in
every cell (completed + shed + timed-out + failed == submitted — zero
silent loss), the healthy baseline is unperturbed by enabling
resilience, and on the device-fail-stop scenario resilience-on SLO
goodput strictly beats resilience-off at equal load.

Run standalone (``python benchmarks/bench_resilience.py [--smoke]``)
or under pytest-benchmark (``pytest benchmarks/bench_resilience.py``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.serve.resilience import ResiliencePolicy
from repro.serve.scenarios import LlamaServingScenario, TrafficTier
from repro.utils.benchmeta import bench_meta
from repro.utils.tables import TextTable

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_resilience.json"
SCHEMA = "nm-spmm/resilience-bench/v1"

#: Every cell serves this scenario; only ``faults``/``resilience``
#: vary.  Both tiers carry SLOs so ``slo_goodput`` covers the whole
#: trace, and the raised host overhead gives launches enough weight
#: that faults actually contend.
BASE_SCENARIO = LlamaServingScenario(
    models=("llama-7b",),
    qps=600.0,
    duration_s=2.0,
    arrival="poisson",
    scheduling="slo-edf",
    tiers=(
        TrafficTier(priority=2, slo_ms=10.0, share=0.2),
        TrafficTier(priority=0, slo_ms=200.0, share=0.8),
    ),
    devices=2,
    shard="column",
    link="ethernet",
    host_overhead_s=2e-4,
    execute_numerics=False,
)

#: Fault grid.  Windows sit mid-run so every scenario has a healthy
#: warm-up and (except the fail-stop, which is permanent) a recovery
#: tail.
FAULT_SCENARIOS: dict[str, "str | None"] = {
    "no-faults": None,
    "launch-storm": "launch:p=0.5,start=0.5,end=1.0",
    "device-failstop": "devfail:device=1,at=0.8",
    "ethernet-flap": "link:factor=0.08,extra-lat=2e-4,period=0.25,duty=0.5",
}

RESILIENCE_MODES: dict[str, "ResiliencePolicy | None"] = {
    "on": ResiliencePolicy(),
    "off": None,
}


def run_resilience_bench(
    smoke: bool = False, generated_at: "str | None" = None
) -> dict:
    """Run the fault × resilience grid and return the schema result."""
    cells = []
    for fault_name, spec in FAULT_SCENARIOS.items():
        for mode, policy in RESILIENCE_MODES.items():
            scenario = dataclasses.replace(
                BASE_SCENARIO,
                faults=spec,
                resilience=policy,
                # The smoke run still has to cover every fault window
                # (the fail-stop lands at 0.8 s, the storm ends at 1 s).
                duration_s=1.1 if smoke else BASE_SCENARIO.duration_s,
            )
            report = scenario.run()
            cells.append(
                {
                    "name": f"{fault_name}@{mode}",
                    "fault_scenario": fault_name,
                    "faults": spec,
                    "resilience": policy is not None,
                    "scenario": scenario.describe(),
                    "metrics": report.summary(),
                }
            )
    return {
        "schema": SCHEMA,
        "meta": bench_meta(
            SCHEMA,
            config={cell["name"]: cell["scenario"] for cell in cells},
            seed=BASE_SCENARIO.seed,
            generated_at=generated_at,
        ),
        "cells": cells,
    }


def cell_named(result: dict, name: str) -> dict:
    for cell in result["cells"]:
        if cell["name"] == name:
            return cell
    raise KeyError(name)


def check_acceptance(result: dict) -> None:
    """The driver-enforced invariants, assertable on any run of the
    grid (pytest and the standalone path both call this)."""
    assert result["schema"] == SCHEMA
    assert len(result["cells"]) == len(FAULT_SCENARIOS) * len(
        RESILIENCE_MODES
    )
    for cell in result["cells"]:
        res = cell["metrics"]["resilience"]
        # Zero silent request loss: every submitted request terminates
        # exactly once, and the summary's outcome ledger reconciles.
        assert sum(res["outcomes"].values()) == res["submitted"], cell["name"]
        assert res["outcomes"]["completed"] == (
            cell["metrics"]["completed_requests"]
        )

    # The healthy baseline must be unperturbed by enabling resilience:
    # no retries, no drops, identical completions.
    for mode in RESILIENCE_MODES:
        res = cell_named(result, f"no-faults@{mode}")["metrics"]["resilience"]
        assert res["outcomes"]["completed"] == res["submitted"]
        assert res["retries"] == 0 and res["launch_faults"] == 0

    # The headline claim: under a mid-run device fail-stop, re-sharding
    # onto survivors strictly beats serving without resilience.
    on = cell_named(result, "device-failstop@on")["metrics"]["resilience"]
    off = cell_named(result, "device-failstop@off")["metrics"]["resilience"]
    assert on["reshards"] == 1 and on["recovery_s"] > 0
    assert off["reshards"] == 0
    assert on["slo_goodput"] > off["slo_goodput"]

    # The storm actually injected faults and (with resilience) retried.
    storm_on = cell_named(result, "launch-storm@on")["metrics"]["resilience"]
    assert storm_on["launch_faults"] > 0
    assert storm_on["retries"] > 0


def write_results(result: dict) -> pathlib.Path:
    OUTPUT_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return OUTPUT_PATH


def render_results(result: dict) -> str:
    table = TextTable(
        ["cell", "completed", "shed", "timeout", "failed", "retries",
         "reshards", "goodput %"],
        title="resilience benchmark",
    )
    for cell in result["cells"]:
        res = cell["metrics"]["resilience"]
        goodput = res["slo_goodput"]
        table.add_row(
            [
                cell["name"],
                f"{res['outcomes']['completed']}/{res['submitted']}",
                str(res["shed"]),
                str(res["timed_out"]),
                str(res["failed"]),
                str(res["retries"]),
                str(res["reshards"]),
                "-" if goodput is None else f"{goodput * 100:.1f}",
            ]
        )
    return table.render()


def test_bench_resilience(benchmark, emit):
    result = benchmark.pedantic(run_resilience_bench, rounds=1, iterations=1)
    path = write_results(result)
    emit("resilience", render_results(result) + f"\n\nwrote {path}")
    check_acceptance(result)


if __name__ == "__main__":  # pragma: no cover
    import sys

    bench_result = run_resilience_bench(smoke="--smoke" in sys.argv[1:])
    check_acceptance(bench_result)
    print(render_results(bench_result))
    print(f"\nwrote {write_results(bench_result)}")
