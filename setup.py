"""Legacy shim so `pip install -e .` works on offline hosts without the
`wheel` package (pip falls back to `setup.py develop` with
--no-use-pep517).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
