"""A small MLP whose hidden layers can be swapped for N:M-sparse ones.

Used by the accuracy-trade-off example: train nothing, just compare a
dense forward pass against the pruned forward pass at several
sparsity levels (one-shot magnitude pruning, the paper's §II-B
baseline pipeline without fine-tuning).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.linear import Linear, NMSparseLinear
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["MLP", "relu"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


class MLP:
    """A feed-forward network: Linear -> ReLU -> ... -> Linear."""

    def __init__(self, layers: "list[Linear | NMSparseLinear]"):
        if not layers:
            raise ShapeError("MLP needs at least one layer")
        for prev, nxt in zip(layers, layers[1:], strict=False):
            if prev.out_features != nxt.in_features:
                raise ShapeError(
                    f"layer mismatch: {prev.out_features} -> {nxt.in_features}"
                )
        self.layers = list(layers)

    @classmethod
    def random(
        cls,
        sizes: "list[int]",
        seed: int = 0,
        *,
        scale: float | None = None,
    ) -> "MLP":
        """A randomly initialised dense MLP with He-style scaling."""
        if len(sizes) < 2:
            raise ShapeError("sizes needs at least input and output dims")
        rng = np.random.default_rng(seed)
        layers: list[Linear] = []
        for fan_in, fan_out in zip(sizes, sizes[1:], strict=False):
            std = scale if scale is not None else (2.0 / fan_in) ** 0.5
            w = (rng.standard_normal((fan_in, fan_out)) * std).astype(np.float32)
            b = np.zeros(fan_out, dtype=np.float32)
            layers.append(Linear(w, b))
        return cls(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_f32(check_matrix("x", x))
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = relu(x)
        return x

    __call__ = forward

    @property
    def in_features(self) -> int:
        return self.layers[0].in_features

    @property
    def out_features(self) -> int:
        return self.layers[-1].out_features

    def parameter_count(self) -> int:
        return sum(layer.parameter_count() for layer in self.layers)
