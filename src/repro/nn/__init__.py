"""Minimal DNN-layer integration — the paper's motivating use case.

N:M sparsity exists to serve pruned network inference (§I); this
subpackage provides dense and N:M-sparse linear layers, a small MLP,
and one-shot model pruning so the examples can demonstrate the
accuracy/performance trade-off end to end without a deep-learning
framework.
"""

from repro.nn.linear import Linear, NMSparseLinear
from repro.nn.mlp import MLP
from repro.nn.prune import prune_linear, sparsify_mlp

__all__ = [
    "Linear",
    "NMSparseLinear",
    "MLP",
    "prune_linear",
    "sparsify_mlp",
]
