"""One-shot model pruning: swap dense layers for N:M-sparse ones.

This is the offline half of the standard pipeline the paper cites
(pre-training -> pruning -> fine-tuning, §II-B); fine-tuning is out of
scope for a kernels paper, so the examples measure the raw one-shot
accuracy drop instead.
"""

from __future__ import annotations

from repro.nn.linear import Linear, NMSparseLinear
from repro.nn.mlp import MLP
from repro.sparsity.config import NMPattern

__all__ = ["prune_linear", "sparsify_mlp"]


def prune_linear(
    layer: Linear,
    pattern: NMPattern,
    gpu: str = "A100",
    version: str = "V3",
) -> NMSparseLinear:
    """Prune one dense layer to N:M sparsity (magnitude criterion)."""
    return NMSparseLinear.from_dense(layer, pattern, gpu=gpu, version=version)


def sparsify_mlp(
    mlp: MLP,
    pattern: NMPattern,
    *,
    gpu: str = "A100",
    version: str = "V3",
    skip_last: bool = True,
) -> MLP:
    """Replace dense layers with N:M-sparse layers.

    ``skip_last`` keeps the output head dense, the usual practice
    (heads are small and accuracy-critical).
    """
    new_layers: list = []
    for i, layer in enumerate(mlp.layers):
        is_last = i == len(mlp.layers) - 1
        if isinstance(layer, Linear) and not (skip_last and is_last):
            new_layers.append(prune_linear(layer, pattern, gpu=gpu, version=version))
        else:
            new_layers.append(layer)
    return MLP(new_layers)
