"""Dense and N:M-sparse linear layers (NumPy forward pass only).

``NMSparseLinear`` holds its weights in the compressed ``(B', D)``
representation and computes forward passes with the NM-SpMM kernels,
so examples exercise the exact code path the paper accelerates.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import NMSpMM, SparseHandle
from repro.errors import ShapeError
from repro.sparsity.config import NMPattern
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["Linear", "NMSparseLinear"]


class Linear:
    """A dense linear layer ``y = x @ W + b`` with ``W[k][n]``."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None = None):
        self.weight = as_f32(check_matrix("weight", weight))
        if bias is not None:
            bias = np.ascontiguousarray(bias, dtype=np.float32)
            if bias.shape != (self.weight.shape[1],):
                raise ShapeError(
                    f"bias shape {bias.shape} != ({self.weight.shape[1]},)"
                )
        self.bias = bias

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_f32(check_matrix("x", x))
        y = x @ self.weight
        if self.bias is not None:
            y = y + self.bias
        return y

    __call__ = forward

    def parameter_count(self) -> int:
        count = self.weight.size
        if self.bias is not None:
            count += self.bias.size
        return count


class NMSparseLinear:
    """A linear layer with N:M-pruned, compressed weights.

    Built from a dense layer via :meth:`from_dense` (the
    prune->compress offline phase); forward passes run the NM-SpMM
    kernel selected by the layer's plan.
    """

    def __init__(
        self,
        op: NMSpMM,
        handle: SparseHandle,
        bias: np.ndarray | None = None,
        *,
        original_k: int | None = None,
        original_n: int | None = None,
        backend: str = "auto",
    ):
        self.op = op
        self.handle = handle
        self.bias = bias
        #: Execution backend forward passes run with — any registered
        #: name (:mod:`repro.backends`).  ``"auto"`` by default: layers
        #: never ask for traces, so the cost-aware selector picks the
        #: fastest numerics path for this layer's pattern (gather-GEMM,
        #: or scatter-to-dense below the vector-length crossover).
        self.backend = backend
        self.original_k = (
            original_k if original_k is not None else handle.k_logical
        )
        self.original_n = (
            original_n if original_n is not None else handle.n_logical
        )
        if self.original_k > handle.k_logical:
            raise ShapeError(
                f"original_k={self.original_k} exceeds the weights' input "
                f"width k={handle.k_logical}; the extra features would "
                "silently multiply zero padding rows"
            )
        if self.original_n > handle.n_logical:
            raise ShapeError(
                f"original_n={self.original_n} exceeds the handle's "
                f"output width n={handle.n_logical}"
            )

    @classmethod
    def from_dense(
        cls,
        layer: Linear,
        pattern: NMPattern,
        gpu: str = "A100",
        version: str = "V3",
    ) -> "NMSparseLinear":
        """Prune and compress a dense layer's weights."""
        op = NMSpMM(pattern, gpu=gpu, version=version)
        handle = op.prepare(layer.weight)
        return cls(
            op,
            handle,
            layer.bias,
            original_k=layer.in_features,
            original_n=layer.out_features,
        )

    @property
    def pattern(self) -> NMPattern:
        return self.op.pattern

    @property
    def in_features(self) -> int:
        return self.original_k

    @property
    def out_features(self) -> int:
        return self.original_n

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = as_f32(check_matrix("x", x))
        if x.shape[1] != self.original_k:
            raise ShapeError(
                f"input has {x.shape[1]} features, layer expects "
                f"{self.original_k}"
            )
        # execute() pads logical-k activations and trims the output to
        # the logical n itself; the explicit pad below only matters when
        # original_k was overridden on a handle that lacks logical-shape
        # metadata, and the residual slice when original_n was overridden
        # below the handle's logical width.
        if x.shape[1] not in (self.handle.k, self.handle.k_logical):
            pad = np.zeros(
                (x.shape[0], self.handle.k - x.shape[1]), dtype=np.float32
            )
            x = np.hstack([x, pad])
        y = self.op.execute(x, self.handle, backend=self.backend)
        y = y[:, : self.out_features]
        if self.bias is not None:
            y = y + self.bias
        return y

    __call__ = forward

    def parameter_count(self) -> int:
        """Stored parameters after compression (values only)."""
        count = self.handle.compressed.nnz
        if self.bias is not None:
            count += self.bias.size
        return count

    def compression_ratio(self) -> float:
        return self.handle.compressed.compression_ratio()
