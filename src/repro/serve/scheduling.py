"""Scheduling policies of the serving runtime.

The serving layer schedules at two points: *which request comes off a
queue next* (pop order inside :class:`~repro.serve.queue.RequestQueue`)
and *which queue the free GPU serves next* (queue selection inside the
engine's event loop).  Both decisions follow one
:class:`SchedulingPolicy`:

``fifo``
    The original behaviour: strict arrival order, priorities and
    deadlines ignored.  The baseline every other policy is benchmarked
    against.
``priority``
    Strict-priority tiers (higher ``InferenceRequest.priority`` wins),
    FIFO within a tier.  A queued low-priority backlog can no longer
    delay an interactive request behind it.
``slo-edf``
    Strict-priority tiers, earliest-deadline-first within a tier: a
    request's deadline is ``arrival_s + slo_ms``; requests without an
    SLO sort after every deadlined request of their tier, in arrival
    order.  This is the policy the SLO-attainment metric is designed
    for.
"""

from __future__ import annotations

import enum
import math

from repro.errors import ServeError
from repro.serve.request import InferenceRequest

__all__ = ["SchedulingPolicy", "request_order_key"]


class SchedulingPolicy(enum.Enum):
    """Pop/queue-selection order of the serving scheduler."""

    FIFO = "fifo"
    PRIORITY = "priority"
    SLO_EDF = "slo-edf"

    @classmethod
    def parse(cls, value: "str | SchedulingPolicy") -> "SchedulingPolicy":
        """Accept either the enum or its CLI spelling (``"slo-edf"``)."""
        if isinstance(value, cls):
            return value
        for member in cls:
            if member.value == value:
                return member
        raise ServeError(
            f"unknown scheduling policy {value!r}; expected one of "
            f"{[m.value for m in cls]}"
        )


def request_order_key(
    request: InferenceRequest, policy: SchedulingPolicy
) -> tuple:
    """Ascending sort key for ``request`` under ``policy`` (the minimum
    is served first).  Arrival time and request id break every tie, so
    the order is total and deterministic."""
    if policy is SchedulingPolicy.FIFO:
        return (request.arrival_s, request.request_id)
    if policy is SchedulingPolicy.PRIORITY:
        return (-request.priority, request.arrival_s, request.request_id)
    deadline = request.deadline_s
    if deadline is None:
        deadline = math.inf
    return (-request.priority, deadline, request.arrival_s, request.request_id)
