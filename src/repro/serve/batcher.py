"""Dynamic batching: when to cut a batch and how to build it.

The scheduler follows the standard max-size / max-wait contract of
serving systems: a queue is flushed as soon as it fills either budget
(request count or total activation rows), or once its oldest request
has waited ``max_wait_s``, or immediately when the arrival stream has
drained.  The stacked activation block is padded with zero rows up to a
*bucketed* row count so that repeat launches hit the same execution
plan — padding buys plan-cache locality at the cost of a few wasted
rows, exactly the trade the per-launch overheads in the perf model
reward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.serve.queue import RequestQueue
from repro.serve.request import InferenceRequest
from repro.utils.intmath import ilog2_ceil, round_up

__all__ = ["BatchingPolicy", "Batch", "DynamicBatcher"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Tunables of the dynamic batcher.

    Parameters
    ----------
    max_batch_requests:
        Flush once this many requests are queued.
    max_batch_rows:
        Flush once the queued activation rows reach this budget; also
        the row budget of one batch (a single larger request still runs,
        alone).
    max_wait_s:
        Deadline: flush when the oldest request has waited this long,
        even if the batch is small (bounds tail latency).
    pad_rows_quantum:
        Pad the stacked batch up to a multiple of this row count.
    pow2_rows:
        Additionally round padded rows up to a power of two, collapsing
        the batch-size distribution onto a handful of buckets so the
        plan cache converges after a few batches.
    """

    max_batch_requests: int = 16
    max_batch_rows: int = 256
    max_wait_s: float = 2e-3
    pad_rows_quantum: int = 8
    pow2_rows: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_requests < 1:
            raise ServeError(
                f"max_batch_requests must be >= 1, got {self.max_batch_requests}"
            )
        if self.max_batch_rows < 1:
            raise ServeError(
                f"max_batch_rows must be >= 1, got {self.max_batch_rows}"
            )
        if not np.isfinite(self.max_wait_s) or self.max_wait_s < 0:
            raise ServeError(
                f"max_wait_s must be finite and >= 0, got {self.max_wait_s}"
            )
        if self.pad_rows_quantum < 1:
            raise ServeError(
                f"pad_rows_quantum must be >= 1, got {self.pad_rows_quantum}"
            )

    def bucket_rows(self, rows: int) -> int:
        """The padded row count a ``rows``-row batch launches with."""
        if rows < 1:
            raise ServeError(f"batch must have >= 1 row, got {rows}")
        padded = round_up(rows, self.pad_rows_quantum)
        if self.pow2_rows:
            padded = 1 << ilog2_ceil(padded)
        return padded


@dataclass
class Batch:
    """One formed batch: the stacked (and padded) activation block plus
    the bookkeeping needed to hand each request its output slice.

    ``a`` is ``None`` when the batch was formed without stacking
    (modeled-time-only runs never execute the numerics, so the padded
    activation copy would be pure waste).
    """

    batch_id: int
    model: str
    requests: list[InferenceRequest]
    a: "np.ndarray | None"
    row_offsets: list[int]
    rows: int
    padded_rows: int

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def padding_rows(self) -> int:
        return self.padded_rows - self.rows

    def split(self, c: np.ndarray) -> list[np.ndarray]:
        """Slice the batched product back into per-request outputs,
        dropping the zero-padding rows."""
        if c.shape[0] != self.padded_rows:
            raise ServeError(
                f"batched output has {c.shape[0]} rows but the batch "
                f"launched with {self.padded_rows}"
            )
        outputs: list[np.ndarray] = []
        for req, start in zip(self.requests, self.row_offsets):
            outputs.append(c[start : start + req.rows])
        return outputs


class DynamicBatcher:
    """Cuts batches off per-model FIFO queues under a
    :class:`BatchingPolicy`."""

    def __init__(self, policy: "BatchingPolicy | None" = None):
        self.policy = policy or BatchingPolicy()
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    # Flush decision
    # ------------------------------------------------------------------
    def is_full(self, queue: RequestQueue) -> bool:
        """Whether the queue already fills a batch budget."""
        return (
            len(queue) >= self.policy.max_batch_requests
            or queue.total_rows >= self.policy.max_batch_rows
        )

    def deadline_s(self, queue: RequestQueue) -> "float | None":
        """The time at which the queue must flush regardless of size."""
        oldest = queue.oldest_arrival_s
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def should_flush(
        self, queue: RequestQueue, now_s: float, *, drain: bool = False
    ) -> bool:
        """Whether a batch should be cut from this queue at ``now_s``.

        ``drain`` marks the end of the arrival stream: nothing is gained
        by waiting, so any nonempty queue flushes immediately.
        """
        if not queue:
            return False
        if drain or self.is_full(queue):
            return True
        deadline = self.deadline_s(queue)
        return deadline is not None and now_s >= deadline

    # ------------------------------------------------------------------
    # Batch formation
    # ------------------------------------------------------------------
    def form_batch(
        self,
        queue: RequestQueue,
        *,
        stack: bool = True,
        pad_to_k: "int | None" = None,
    ) -> Batch:
        """Pop the FIFO prefix within budget, pad to the row bucket,
        and return the batch.  ``stack=False`` skips building the
        stacked activation block (modeled-time-only runs);
        ``pad_to_k`` widens the stacked block with zero columns up to
        the weights' padded k, so execute() need not re-copy it.
        """
        requests = queue.pop_upto(
            self.policy.max_batch_requests, self.policy.max_batch_rows
        )
        rows = sum(req.rows for req in requests)
        k = requests[0].k
        if pad_to_k is not None:
            if pad_to_k < k:
                raise ServeError(
                    f"pad_to_k={pad_to_k} is narrower than the requests' "
                    f"k={k}"
                )
            k = pad_to_k
        padded_rows = self.policy.bucket_rows(rows)
        a: "np.ndarray | None" = None
        row_offsets: list[int] = []
        cursor = 0
        for req in requests:
            row_offsets.append(cursor)
            cursor += req.rows
        if stack:
            a = np.zeros((padded_rows, k), dtype=np.float32)
            for req, start in zip(requests, row_offsets):
                a[start : start + req.rows, : req.k] = req.a
        batch = Batch(
            batch_id=self._next_batch_id,
            model=queue.model,
            requests=requests,
            a=a,
            row_offsets=row_offsets,
            rows=rows,
            padded_rows=padded_rows,
        )
        self._next_batch_id += 1
        return batch
