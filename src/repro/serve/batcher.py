"""Batch formation: dynamic (cut-and-wait) and continuous (rolling).

:class:`DynamicBatcher` follows the standard max-size / max-wait
contract of serving systems: a queue is flushed as soon as it fills
either budget (request count or total activation rows), or once its
oldest request has waited ``max_wait_s``, or immediately when the
arrival stream has drained.  The stacked activation block is padded
with zero rows up to a *bucketed* row count so that repeat launches hit
the same execution plan — padding buys plan-cache locality at the cost
of a few wasted rows, exactly the trade the per-launch overheads in the
perf model reward.

:class:`ContinuousBatcher` serves decode-style traffic (requests of at
most ``decode_rows_threshold`` rows, typically long-running multi-step
sequences): instead of cutting a fresh batch and holding its geometry
until the slowest member finishes, it keeps one *rolling* in-flight
batch that refills from the queue at every engine step and evicts each
request the moment its own steps are done.  Higher-priority arrivals
may preempt resident lower-priority sequences when the row budget is
full (they rejoin at the next step with their progress kept).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.serve.ledger import CostLedger
from repro.serve.queue import RequestQueue
from repro.serve.request import InferenceRequest
from repro.serve.scheduling import SchedulingPolicy, request_order_key
from repro.utils.intmath import ilog2_ceil, round_up

__all__ = [
    "BatchingPolicy",
    "Batch",
    "DynamicBatcher",
    "InFlightEntry",
    "default_recompute_cost",
    "ContinuousBatcher",
]


@dataclass(frozen=True)
class BatchingPolicy:
    """Tunables of the dynamic batcher.

    Parameters
    ----------
    max_batch_requests:
        Flush once this many requests are queued.
    max_batch_rows:
        Flush once the queued activation rows reach this budget; also
        the row budget of one batch (a single larger request still runs,
        alone).
    max_wait_s:
        Deadline: flush when the oldest request has waited this long,
        even if the batch is small (bounds tail latency).
    pad_rows_quantum:
        Pad the stacked batch up to a multiple of this row count.
    pow2_rows:
        Additionally round padded rows up to a power of two, collapsing
        the batch-size distribution onto a handful of buckets so the
        plan cache converges after a few batches.
    decode_rows_threshold:
        Requests with at most this many rows count as decode-style: a
        server running with continuous batching routes them to the
        rolling batch instead of the cut-and-wait dynamic batcher.
    """

    max_batch_requests: int = 16
    max_batch_rows: int = 256
    max_wait_s: float = 2e-3
    pad_rows_quantum: int = 8
    pow2_rows: bool = True
    decode_rows_threshold: int = 4

    def __post_init__(self) -> None:
        if self.max_batch_requests < 1:
            raise ServeError(
                f"max_batch_requests must be >= 1, got {self.max_batch_requests}"
            )
        if self.max_batch_rows < 1:
            raise ServeError(
                f"max_batch_rows must be >= 1, got {self.max_batch_rows}"
            )
        if not np.isfinite(self.max_wait_s) or self.max_wait_s < 0:
            raise ServeError(
                f"max_wait_s must be finite and >= 0, got {self.max_wait_s}"
            )
        if self.pad_rows_quantum < 1:
            raise ServeError(
                f"pad_rows_quantum must be >= 1, got {self.pad_rows_quantum}"
            )
        if not 1 <= self.decode_rows_threshold <= self.max_batch_rows:
            raise ServeError(
                f"decode_rows_threshold must be in [1, max_batch_rows="
                f"{self.max_batch_rows}], got {self.decode_rows_threshold}"
            )

    def bucket_rows(self, rows: int) -> int:
        """The padded row count a ``rows``-row batch launches with."""
        if rows < 1:
            raise ServeError(f"batch must have >= 1 row, got {rows}")
        padded = round_up(rows, self.pad_rows_quantum)
        if self.pow2_rows:
            padded = 1 << ilog2_ceil(padded)
        return padded


@dataclass
class Batch:
    """One formed batch: the stacked (and padded) activation block plus
    the bookkeeping needed to hand each request its output slice.

    ``a`` is ``None`` when the batch was formed without stacking
    (modeled-time-only runs never execute the numerics, so the padded
    activation copy would be pure waste).
    """

    batch_id: int
    model: str
    requests: list[InferenceRequest]
    a: "np.ndarray | None"
    row_offsets: list[int]
    rows: int
    padded_rows: int

    @property
    def n_requests(self) -> int:
        return len(self.requests)

    @property
    def padding_rows(self) -> int:
        return self.padded_rows - self.rows

    def trace_attrs(self) -> dict:
        """The batch's identity as span attributes (what a trace
        viewer needs to tie a launch back to its requests)."""
        return {
            "batch_id": self.batch_id,
            "model": self.model,
            "requests": self.n_requests,
            "rows": self.rows,
            "padded_rows": self.padded_rows,
        }

    def split(self, c: np.ndarray) -> list[np.ndarray]:
        """Slice the batched product back into per-request outputs,
        dropping the zero-padding rows."""
        if c.shape[0] != self.padded_rows:
            raise ServeError(
                f"batched output has {c.shape[0]} rows but the batch "
                f"launched with {self.padded_rows}"
            )
        outputs: list[np.ndarray] = []
        for req, start in zip(self.requests, self.row_offsets, strict=True):
            outputs.append(c[start : start + req.rows])
        return outputs


def _build_batch(
    requests: list[InferenceRequest],
    policy: BatchingPolicy,
    batch_id: int,
    model: str,
    *,
    stack: bool,
    pad_to_k: "int | None",
) -> Batch:
    """Shared batch-geometry construction of the dynamic and continuous
    paths: validate k-compatibility, bucket the rows, lay out offsets,
    and optionally stack the zero-padded activation block."""
    rows = sum(req.rows for req in requests)
    widths = {req.k for req in requests}
    if len(widths) != 1:
        # The queue's admission guard makes this unreachable through
        # normal dynamic operation, but the rolling batch outlives the
        # queue's k lock (it resets when the queue drains) — so the
        # continuous path can reach it, and a clear error beats a numpy
        # broadcast failure either way.
        raise ServeError(
            f"cannot stack a mixed-k batch: requests have k in "
            f"{sorted(widths)}"
        )
    k = requests[0].k
    if pad_to_k is not None:
        if pad_to_k < k:
            raise ServeError(
                f"pad_to_k={pad_to_k} is narrower than the requests' k={k}"
            )
        k = pad_to_k
    padded_rows = policy.bucket_rows(rows)
    row_offsets: list[int] = []
    cursor = 0
    for req in requests:
        row_offsets.append(cursor)
        cursor += req.rows
    a: "np.ndarray | None" = None
    if stack:
        a = np.zeros((padded_rows, k), dtype=np.float32)
        for req, start in zip(requests, row_offsets, strict=True):
            a[start : start + req.rows, : req.k] = req.a
    return Batch(
        batch_id=batch_id,
        model=model,
        requests=requests,
        a=a,
        row_offsets=row_offsets,
        rows=rows,
        padded_rows=padded_rows,
    )


class DynamicBatcher:
    """Cuts batches off per-model FIFO queues under a
    :class:`BatchingPolicy`."""

    def __init__(self, policy: "BatchingPolicy | None" = None):
        self.policy = policy or BatchingPolicy()
        self._next_batch_id = 0

    # ------------------------------------------------------------------
    # Flush decision
    # ------------------------------------------------------------------
    def is_full(self, queue: RequestQueue) -> bool:
        """Whether the queue already fills a batch budget."""
        return (
            len(queue) >= self.policy.max_batch_requests
            or queue.total_rows >= self.policy.max_batch_rows
        )

    def deadline_s(self, queue: RequestQueue) -> "float | None":
        """The time at which the queue must flush regardless of size."""
        oldest = queue.oldest_arrival_s
        if oldest is None:
            return None
        return oldest + self.policy.max_wait_s

    def should_flush(
        self, queue: RequestQueue, now_s: float, *, drain: bool = False
    ) -> bool:
        """Whether a batch should be cut from this queue at ``now_s``.

        ``drain`` marks the end of the arrival stream: nothing is gained
        by waiting, so any nonempty queue flushes immediately.
        """
        if not queue:
            return False
        if drain or self.is_full(queue):
            return True
        deadline = self.deadline_s(queue)
        return deadline is not None and now_s >= deadline

    # ------------------------------------------------------------------
    # Batch formation
    # ------------------------------------------------------------------
    def form_batch(
        self,
        queue: RequestQueue,
        *,
        stack: bool = True,
        pad_to_k: "int | None" = None,
    ) -> Batch:
        """Pop the FIFO prefix within budget, pad to the row bucket,
        and return the batch.  ``stack=False`` skips building the
        stacked activation block (modeled-time-only runs);
        ``pad_to_k`` widens the stacked block with zero columns up to
        the weights' padded k, so execute() need not re-copy it.
        """
        requests = queue.pop_upto(
            self.policy.max_batch_requests, self.policy.max_batch_rows
        )
        return _build_batch(
            requests,
            self.policy,
            self.allocate_batch_id(),
            queue.model,
            stack=stack,
            pad_to_k=pad_to_k,
        )

    def allocate_batch_id(self) -> int:
        """Next id in the shared launch-id space (dynamic batches and
        continuous steps draw from the same counter, so a record's id is
        unambiguous within a run)."""
        batch_id = self._next_batch_id
        self._next_batch_id += 1
        return batch_id


# ---------------------------------------------------------------------------
# Continuous batching
# ---------------------------------------------------------------------------
@dataclass
class InFlightEntry:
    """One sequence resident in the rolling batch."""

    request: InferenceRequest
    remaining_steps: int
    joined_s: float  # first join = service start (kept across preemption)
    #: Model-mode bookkeeping: the sequence's prompt (plus any decoded
    #: progress) must be re-prefilled before its next decode step —
    #: true on first join and again after any eviction released its KV.
    needs_prefill: bool = True

    @property
    def completed_steps(self) -> int:
        """Decode steps already executed (progress a preemption would
        have to recompute)."""
        return self.request.steps - self.remaining_steps


def default_recompute_cost(entry: InFlightEntry) -> float:
    """Cost of preempting ``entry`` under the default model: the decode
    progress that would have to be recomputed on rejoin.  Model-mode
    servers override this with the victim's modeled re-prefill
    seconds."""
    return float(entry.completed_steps)


class ContinuousBatcher:
    """Maintains the rolling in-flight batch for decode-style traffic.

    Every engine step the batcher *refills* (admits waiting requests,
    preempting resident lower-priority sequences if the scheduling
    policy allows and the row budget is full), the engine runs one step
    over all resident rows, and :meth:`advance` evicts every sequence
    whose steps are done.  The per-step join/evict/preempt counts feed
    :class:`~repro.serve.metrics.ServingMetrics`.

    ``recompute_cost`` prices a preemption victim (re-prefill cost on
    rejoin): among equal-priority candidates the *cheapest* victims are
    evicted first, so a nearly-finished long decode survives when a
    fresher sequence frees the same rows.  The default prices progress
    in decode steps; the model-serving engine supplies modeled prefill
    seconds.
    """

    def __init__(
        self,
        policy: "BatchingPolicy | None" = None,
        scheduling: "str | SchedulingPolicy" = SchedulingPolicy.FIFO,
        *,
        recompute_cost=None,
    ):
        self.policy = policy or BatchingPolicy()
        self.scheduling = SchedulingPolicy.parse(scheduling)
        self.recompute_cost = (
            default_recompute_cost if recompute_cost is None else recompute_cost
        )
        self._inflight: list[InFlightEntry] = []
        self._preempted: list[InFlightEntry] = []
        #: request_id -> resident rows (conservation-checked; preempted
        #: sequences hold no rows).
        self._rows = CostLedger("cb.resident-rows")

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def resident(self) -> tuple[InFlightEntry, ...]:
        return tuple(self._inflight)

    @property
    def preempted(self) -> tuple[InFlightEntry, ...]:
        """Sequences waiting to rejoin after a preemption."""
        return tuple(self._preempted)

    @property
    def resident_rows(self) -> int:
        return self._rows.total

    @property
    def rows_ledger(self) -> CostLedger:
        """The underlying :class:`~repro.serve.ledger.CostLedger`
        (exposed so conservation tests can reconcile it directly)."""
        return self._rows

    @property
    def has_work(self) -> bool:
        """Whether any sequence is resident or waiting to rejoin."""
        return bool(self._inflight or self._preempted)

    def _fits(self, request: InferenceRequest) -> bool:
        return (
            len(self._inflight) < self.policy.max_batch_requests
            and self.resident_rows + request.rows
            <= self.policy.max_batch_rows
        )

    def _admit(self, entry: InFlightEntry) -> None:
        self._inflight.append(entry)
        self._rows.add(entry.request.request_id, entry.request.rows)

    def _displace(self, entry: InFlightEntry) -> None:
        self._inflight.remove(entry)
        self._rows.remove(entry.request.request_id)
        entry.needs_prefill = True
        self._preempted.append(entry)

    # ------------------------------------------------------------------
    # Step lifecycle
    # ------------------------------------------------------------------
    def refill(
        self, queue: RequestQueue, now_s: float, *, gate=None
    ) -> tuple[int, int]:
        """Admit waiting work into the rolling batch at ``now_s``.

        Waiting work — sequences displaced by an earlier preemption
        (which keep their progress and original service-start time) and
        queued requests alike — is admitted as one urgency-ordered
        stream under the scheduling policy.  A candidate of *strictly*
        higher priority may preempt lower-priority resident sequences
        to make room — transactionally: nothing is evicted unless the
        evictions actually admit the candidate (a partial eviction
        would starve the victim without serving anyone).  Under
        ``priority``/``slo-edf`` an inadmissible candidate blocks the
        stream: less urgent work must not slip into the space the most
        urgent waiter needs (head-of-line semantics are exactly the
        strict-priority guarantee).

        ``gate`` is an extra admission predicate
        ``gate(request, completed_steps) -> bool`` (the device-memory
        model's KV-fit check).  A gate refusal blocks the stream like a
        full row budget under head-of-line semantics, but is never
        resolved by preemption — freeing rows would not free the
        resource the gate guards; the engine evicts for that resource
        at growth time instead.
        Returns ``(joined, preempted)`` counts for the step record.
        """
        joined = 0
        preempted = 0
        while True:
            # Fresh victims may have been appended last iteration, so
            # the most urgent waiter is re-derived each round (the
            # lists are a handful of entries).
            self._preempted.sort(
                key=lambda e: request_order_key(e.request, self.scheduling)
            )
            rejoin = self._preempted[0] if self._preempted else None
            fresh = queue.peek() if queue else None
            if rejoin is not None and (
                fresh is None
                or request_order_key(rejoin.request, self.scheduling)
                < request_order_key(fresh, self.scheduling)
            ):
                candidate, entry = rejoin.request, rejoin
            elif fresh is not None:
                candidate, entry = fresh, None
            else:
                break
            if gate is not None and not gate(
                candidate, 0 if entry is None else entry.completed_steps
            ):
                break
            if not self._fits(candidate):
                if self.scheduling is SchedulingPolicy.FIFO:
                    break
                victims = self._preemption_victims(candidate)
                if victims is None:
                    break
                for victim in victims:
                    self._displace(victim)
                preempted += len(victims)
            if entry is not None:
                self._preempted.remove(entry)
                self._admit(entry)
            else:
                self._admit(
                    InFlightEntry(
                        request=queue.pop_next(),
                        remaining_steps=candidate.steps,
                        joined_s=now_s,
                    )
                )
            joined += 1
        return joined, preempted

    def _preemption_victims(
        self, candidate: InferenceRequest
    ) -> "list[InFlightEntry] | None":
        """The resident set whose eviction admits ``candidate``:
        strictly-lower-priority entries only, lowest priority first,
        then cheapest recompute cost (latest-joined breaks exact ties)
        — so a nearly-finished long decode is spared whenever a cheaper
        victim frees the same rows.  ``None`` when even evicting all of
        them would not make the candidate fit."""
        displaceable = sorted(
            (
                (
                    entry.request.priority,
                    self.recompute_cost(entry),
                    -index,
                    entry,
                )
                for index, entry in enumerate(self._inflight)
                if entry.request.priority < candidate.priority
            ),
            key=lambda item: item[:3],
        )
        rows = self.resident_rows
        count = len(self._inflight)
        victims: list[InFlightEntry] = []
        for _, _, _, entry in displaceable:
            victims.append(entry)
            rows -= entry.request.rows
            count -= 1
            if (
                count < self.policy.max_batch_requests
                and rows + candidate.rows <= self.policy.max_batch_rows
            ):
                return victims
        return None

    def preempt_entries(self, entries) -> None:
        """Displace ``entries`` (resident) to the preempted pool —
        the engine's memory-pressure eviction path.  Rows free
        immediately; the sequences keep their progress and rejoin
        through :meth:`refill` like any preemption victim."""
        for entry in entries:
            self._displace(entry)

    def form_step(
        self,
        batch_id: int,
        *,
        stack: bool = True,
        pad_to_k: "int | None" = None,
    ) -> Batch:
        """The current resident set as a :class:`Batch` (one engine
        step's launch geometry)."""
        if not self._inflight:
            raise ServeError("form_step with no resident sequences")
        requests = [e.request for e in self._inflight]
        return _build_batch(
            requests,
            self.policy,
            batch_id,
            requests[0].model,
            stack=stack,
            pad_to_k=pad_to_k,
        )

    def cancel_where(
        self, predicate
    ) -> list[InFlightEntry]:
        """Remove every in-flight or preemption-parked sequence whose
        request matches ``predicate`` (timeout/cancellation path).

        The cancelled entries release their rows immediately — the next
        :meth:`form_step` simply no longer includes them — and are
        returned so the engine can account them as evictions in the
        step/metrics records.
        """
        cancelled: list[InFlightEntry] = []
        for pool_name in ("_inflight", "_preempted"):
            pool = getattr(self, pool_name)
            kept = []
            for entry in pool:
                if predicate(entry.request):
                    if pool_name == "_inflight":
                        self._rows.remove(entry.request.request_id)
                    cancelled.append(entry)
                else:
                    kept.append(entry)
            setattr(self, pool_name, kept)
        return cancelled

    def advance(self) -> list[tuple[int, InFlightEntry]]:
        """Account one executed step: decrement every resident
        sequence and evict the finished ones.  Returns ``(index,
        entry)`` pairs in batch order (the index addresses the step's
        output slices)."""
        finished: list[tuple[int, InFlightEntry]] = []
        surviving: list[InFlightEntry] = []
        for index, entry in enumerate(self._inflight):
            entry.remaining_steps -= 1
            if entry.remaining_steps <= 0:
                self._rows.remove(entry.request.request_id)
                finished.append((index, entry))
            else:
                surviving.append(entry)
        self._inflight = surviving
        return finished
