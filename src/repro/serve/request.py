"""Request and completion records of the serving runtime.

An :class:`InferenceRequest` is one user call against a registered
model: a dense activation block ``A_i`` of shape ``(rows, k)`` plus a
simulated arrival timestamp.  The runtime stacks many requests into one
NM-SpMM launch (the online phase of Fig. 2 amortized over a batch) and
returns a :class:`RequestRecord` per request carrying the timing
decomposition the metrics layer aggregates.

All timestamps are seconds on the *simulated* clock — the runtime never
reads the wall clock, which keeps throughput/latency curves exactly
reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["InferenceRequest", "RequestRecord"]


@dataclass(frozen=True)
class InferenceRequest:
    """One inference call against a registered model.

    Parameters
    ----------
    request_id:
        Unique monotone id (ties in arrival time break by id).
    model:
        Name the target weights were registered under.
    a:
        The activation block, ``(rows, k)`` float32 — or ``None`` for a
        metadata-only request (scheduling studies with numerics off),
        in which case ``shape`` supplies ``(rows, k)``.
    arrival_s:
        Arrival time on the simulated clock.
    shape:
        ``(rows, k)`` of a metadata-only request; ignored (and must be
        omitted) when ``a`` is given.
    priority:
        Strict-priority tier (higher wins) under the ``priority`` and
        ``slo-edf`` scheduling policies; ignored under ``fifo``.
    slo_ms:
        Optional latency objective in milliseconds.  Sets the request's
        deadline (``arrival_s + slo_ms``) for earliest-deadline-first
        scheduling and the SLO-attainment metric.
    steps:
        Engine steps the request occupies a batch for — a decode
        sequence of this many token steps.  The dynamic (cut-and-wait)
        path holds the whole batch for the longest member's step count;
        the continuous path re-forms the rolling batch every step.
    prompt_len:
        Model-mode only: prompt tokens to prefill before decoding.
        Requires ``max_new_tokens``, a single activation row, and a
        metadata-only request (model serving is modeled-time only).
    max_new_tokens:
        Model-mode only: decode steps to run (``steps`` is derived
        from it).  Each generated token grows the sequence's simulated
        KV cache by one token's bytes.
    """

    request_id: int
    model: str
    a: "np.ndarray | None"
    arrival_s: float
    shape: "tuple[int, int] | None" = None
    priority: int = 0
    slo_ms: "float | None" = None
    steps: int = 1
    prompt_len: "int | None" = None
    max_new_tokens: "int | None" = None

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ServeError(f"request_id must be >= 0, got {self.request_id}")
        if not self.model:
            raise ServeError("request needs a model name")
        if self.a is not None:
            if self.shape is not None:
                raise ServeError("pass either a or shape, not both")
            a = as_f32(check_matrix("a", self.a))
            object.__setattr__(self, "a", a)
        else:
            if self.shape is None:
                raise ServeError(
                    "a metadata-only request needs shape=(rows, k)"
                )
            rows, k = self.shape
            if rows < 1 or k < 1:
                raise ServeError(f"bad request shape {self.shape}")
        if not np.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ServeError(
                f"arrival_s must be finite and >= 0, got {self.arrival_s}"
            )
        if self.priority < 0:
            raise ServeError(f"priority must be >= 0, got {self.priority}")
        if self.slo_ms is not None and (
            not np.isfinite(self.slo_ms) or self.slo_ms <= 0
        ):
            raise ServeError(
                f"slo_ms must be finite and > 0, got {self.slo_ms}"
            )
        if self.steps < 1:
            raise ServeError(f"steps must be >= 1, got {self.steps}")
        if (self.prompt_len is None) != (self.max_new_tokens is None):
            raise ServeError(
                "model-mode requests need both prompt_len and "
                "max_new_tokens (or neither)"
            )
        if self.prompt_len is not None:
            if self.prompt_len < 1:
                raise ServeError(
                    f"prompt_len must be >= 1, got {self.prompt_len}"
                )
            if self.max_new_tokens < 1:
                raise ServeError(
                    f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
                )
            if self.a is not None:
                raise ServeError(
                    "model-mode requests are metadata-only (modeled-time "
                    "serving); pass shape=, not a="
                )
            if self.rows != 1:
                raise ServeError(
                    f"a model-mode request is one sequence (rows=1), "
                    f"got rows={self.rows}"
                )
            if self.steps == 1:
                object.__setattr__(self, "steps", self.max_new_tokens)
            elif self.steps != self.max_new_tokens:
                raise ServeError(
                    f"steps={self.steps} conflicts with "
                    f"max_new_tokens={self.max_new_tokens}"
                )

    @property
    def deadline_s(self) -> "float | None":
        """``arrival_s + slo_ms`` on the simulated clock, or ``None``
        when the request carries no SLO."""
        if self.slo_ms is None:
            return None
        return self.arrival_s + self.slo_ms * 1e-3

    @property
    def rows(self) -> int:
        """Rows this request contributes to a batch (its ``m``)."""
        if self.a is None:
            return int(self.shape[0])
        return int(self.a.shape[0])

    @property
    def k(self) -> int:
        if self.a is None:
            return int(self.shape[1])
        return int(self.a.shape[1])

    def label(self) -> str:
        text = (
            f"req#{self.request_id} {self.model} "
            f"{self.rows}x{self.k} @t={self.arrival_s * 1e3:.3f}ms"
        )
        if self.priority:
            text += f" pri={self.priority}"
        if self.slo_ms is not None:
            text += f" slo={self.slo_ms:g}ms"
        if self.prompt_len is not None:
            text += f" prompt={self.prompt_len} gen={self.max_new_tokens}"
        elif self.steps > 1:
            text += f" steps={self.steps}"
        return text


@dataclass
class RequestRecord:
    """Completion record for one request.

    ``output`` is the request's slice of the batched product (padding
    rows removed), or ``None`` when the runtime ran in modeled-time-only
    mode.
    """

    request: InferenceRequest
    batch_id: int
    started_s: float
    finished_s: float
    output: "np.ndarray | None" = None
    #: Launch-failure retries this request survived before completing
    #: (0 on a healthy run; populated by the resilience machinery).
    retries: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServeError(f"retries must be >= 0, got {self.retries}")
        if self.finished_s < self.started_s:
            raise ServeError(
                f"finished_s={self.finished_s} precedes started_s="
                f"{self.started_s}"
            )
        if self.started_s < self.request.arrival_s:
            raise ServeError(
                f"request {self.request.request_id} started at "
                f"{self.started_s} before its arrival "
                f"{self.request.arrival_s}"
            )

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (what users experience)."""
        return self.finished_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before the batch launched."""
        return self.started_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        """Modeled GPU + host time of the batch this request rode in."""
        return self.finished_s - self.started_s

    @property
    def slo_met(self) -> "bool | None":
        """Whether the request finished inside its SLO (``None`` when
        it carries none)."""
        if self.request.slo_ms is None:
            return None
        return self.latency_s <= self.request.slo_ms * 1e-3
