"""Request and completion records of the serving runtime.

An :class:`InferenceRequest` is one user call against a registered
model: a dense activation block ``A_i`` of shape ``(rows, k)`` plus a
simulated arrival timestamp.  The runtime stacks many requests into one
NM-SpMM launch (the online phase of Fig. 2 amortized over a batch) and
returns a :class:`RequestRecord` per request carrying the timing
decomposition the metrics layer aggregates.

All timestamps are seconds on the *simulated* clock — the runtime never
reads the wall clock, which keeps throughput/latency curves exactly
reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["InferenceRequest", "RequestRecord"]


@dataclass(frozen=True)
class InferenceRequest:
    """One inference call against a registered model.

    Parameters
    ----------
    request_id:
        Unique monotone id (ties in arrival time break by id).
    model:
        Name the target weights were registered under.
    a:
        The activation block, ``(rows, k)`` float32 — or ``None`` for a
        metadata-only request (scheduling studies with numerics off),
        in which case ``shape`` supplies ``(rows, k)``.
    arrival_s:
        Arrival time on the simulated clock.
    shape:
        ``(rows, k)`` of a metadata-only request; ignored (and must be
        omitted) when ``a`` is given.
    """

    request_id: int
    model: str
    a: "np.ndarray | None"
    arrival_s: float
    shape: "tuple[int, int] | None" = None

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise ServeError(f"request_id must be >= 0, got {self.request_id}")
        if not self.model:
            raise ServeError("request needs a model name")
        if self.a is not None:
            if self.shape is not None:
                raise ServeError("pass either a or shape, not both")
            a = as_f32(check_matrix("a", self.a))
            object.__setattr__(self, "a", a)
        else:
            if self.shape is None:
                raise ServeError(
                    "a metadata-only request needs shape=(rows, k)"
                )
            rows, k = self.shape
            if rows < 1 or k < 1:
                raise ServeError(f"bad request shape {self.shape}")
        if not np.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ServeError(
                f"arrival_s must be finite and >= 0, got {self.arrival_s}"
            )

    @property
    def rows(self) -> int:
        """Rows this request contributes to a batch (its ``m``)."""
        if self.a is None:
            return int(self.shape[0])
        return int(self.a.shape[0])

    @property
    def k(self) -> int:
        if self.a is None:
            return int(self.shape[1])
        return int(self.a.shape[1])

    def label(self) -> str:
        return (
            f"req#{self.request_id} {self.model} "
            f"{self.rows}x{self.k} @t={self.arrival_s * 1e3:.3f}ms"
        )


@dataclass
class RequestRecord:
    """Completion record for one request.

    ``output`` is the request's slice of the batched product (padding
    rows removed), or ``None`` when the runtime ran in modeled-time-only
    mode.
    """

    request: InferenceRequest
    batch_id: int
    started_s: float
    finished_s: float
    output: "np.ndarray | None" = None

    def __post_init__(self) -> None:
        if self.finished_s < self.started_s:
            raise ServeError(
                f"finished_s={self.finished_s} precedes started_s="
                f"{self.started_s}"
            )
        if self.started_s < self.request.arrival_s:
            raise ServeError(
                f"request {self.request.request_id} started at "
                f"{self.started_s} before its arrival "
                f"{self.request.arrival_s}"
            )

    @property
    def latency_s(self) -> float:
        """Arrival-to-completion latency (what users experience)."""
        return self.finished_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before the batch launched."""
        return self.started_s - self.request.arrival_s

    @property
    def service_s(self) -> float:
        """Modeled GPU + host time of the batch this request rode in."""
        return self.finished_s - self.started_s
