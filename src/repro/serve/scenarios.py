"""Canned serving scenarios: Llama-shaped models under synthetic load.

Shared by ``python -m repro serve-sim`` and
``benchmarks/bench_serving.py`` so the CLI demo and the tracked
benchmark run the identical setup: each requested Llama checkpoint is
shrunk by ``scale`` (geometry-preserving), one linear layer's weight
matrix is synthesized from the seed, registered on the server, and a
:class:`~repro.serve.loadgen.TrafficSource` is attached to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ServeError
from repro.serve.batcher import BatchingPolicy
from repro.serve.loadgen import (
    DEFAULT_ROWS_CHOICES,
    TrafficSource,
    generate_requests,
)
from repro.serve.scheduling import SchedulingPolicy
from repro.serve.server import (
    DEFAULT_HOST_OVERHEAD_S,
    InferenceServer,
    ServingReport,
)
from repro.sparsity.config import NMPattern
from repro.workloads.llama import get_llama_model, llama_layer_shapes

__all__ = ["parse_pattern", "TrafficTier", "LlamaServingScenario"]


def parse_pattern(spec: str, vector_length: int = 8) -> NMPattern:
    """Parse an ``"N:M"`` pattern spec (e.g. ``"2:8"``).

    >>> parse_pattern("2:8").sparsity
    0.75
    """
    parts = spec.strip().split(":")
    if len(parts) != 2:
        raise ConfigurationError(
            f"bad pattern spec {spec!r}; expected 'N:M' like '2:8'"
        )
    try:
        n, m = int(parts[0]), int(parts[1])
    except ValueError:
        raise ConfigurationError(
            f"bad pattern spec {spec!r}; N and M must be integers"
        ) from None
    return NMPattern(n, m, vector_length=vector_length)


@dataclass(frozen=True)
class TrafficTier:
    """One priority tier of a tiered traffic mix.

    Every registered model gets one :class:`TrafficSource` per tier,
    tagged with the tier's priority/SLO and carrying ``share`` of the
    model's traffic.
    """

    priority: int
    slo_ms: "float | None" = None
    share: float = 1.0
    decode_fraction: "float | None" = None

    def label(self) -> str:
        text = f"pri{self.priority}"
        if self.slo_ms is not None:
            text += f"/slo{self.slo_ms:g}ms"
        return text


@dataclass
class LlamaServingScenario:
    """One reproducible serving experiment.

    Parameters
    ----------
    models:
        Llama checkpoint names (``"llama-7b"``...), each registered as
        one serving model.
    layer:
        Which linear layer's shape to serve (a name from
        :func:`~repro.workloads.llama.llama_layer_shapes`).
    scale:
        Geometry-preserving shrink factor applied to every dimension so
        the NumPy kernels stay fast; 1 serves the true shapes.
    pattern:
        N:M sparsity pattern for every registered model.
    qps / duration_s / arrival / seed:
        Load-generation knobs (see :mod:`repro.serve.loadgen`).
    scheduling:
        Scheduler policy: ``"fifo"``, ``"priority"``, or ``"slo-edf"``.
    continuous:
        Enable continuous batching (decode-shaped requests join the
        rolling in-flight batch instead of the cut-and-wait batcher).
    decode_fraction:
        When set, that fraction of every source's traffic is emitted
        decode-shaped (1-4 rows, multi-step); ignored by tiers that set
        their own fraction.
    tiers:
        Priority tiers of the traffic mix; empty serves one untagged
        source per model (the legacy behaviour).
    devices / shard / link:
        Simulated multi-GPU topology: shard every registered model
        ``devices``-way (``"column"`` or ``"row"`` tensor parallel)
        over the named interconnect.  ``devices=1`` is the
        single-GPU server.
    """

    models: tuple[str, ...] = ("llama-7b",)
    layer: str = "attn-qkvo"
    scale: int = 16
    pattern: NMPattern = field(
        default_factory=lambda: NMPattern(2, 8, vector_length=8)
    )
    gpu: str = "A100"
    version: str = "V3"
    qps: float = 200.0
    duration_s: float = 5.0
    arrival: str = "poisson"
    seed: int = 0
    rows_choices: tuple[int, ...] = DEFAULT_ROWS_CHOICES
    policy: BatchingPolicy = field(default_factory=BatchingPolicy)
    plan_cache_capacity: int = 64
    execute_numerics: bool = True
    integer_values: bool = False
    backend: str = "auto"
    scheduling: str = SchedulingPolicy.FIFO.value
    continuous: bool = False
    decode_fraction: "float | None" = None
    tiers: tuple[TrafficTier, ...] = ()
    devices: int = 1
    shard: str = "column"
    link: str = "nvlink"
    #: Optional :class:`~repro.obs.tracer.Tracer` threaded into the
    #: server — the scenario's seeded run then records a full span
    #: tree and metrics (``serve-sim --trace`` builds one here).
    tracer: "object | None" = None
    #: Per-launch host cost.  The scaled-down NumPy shapes make modeled
    #: GPU time microseconds, so scheduling studies that need real
    #: contention raise this instead of serving impractical QPS.
    host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S
    #: Chaos schedule: a :class:`~repro.faults.FaultPlan`, a fault-spec
    #: string (``"devfail:device=1,at=0.5"``...), or ``None`` for a
    #: healthy run.
    faults: "object | str | None" = None
    #: Resilience machinery: a
    #: :class:`~repro.serve.resilience.ResiliencePolicy`, ``True`` for
    #: the defaults, or ``None``/``False`` to serve without retries,
    #: timeouts, re-sharding, or shedding.
    resilience: "object | bool | None" = None

    def __post_init__(self) -> None:
        if not self.models:
            raise ServeError("scenario needs at least one model")
        if self.scale < 1:
            raise ConfigurationError(
                "scale must be >= 1 (1 serves the true shapes), got "
                f"{self.scale}"
            )
        SchedulingPolicy.parse(self.scheduling)  # fail fast on typos

    # ------------------------------------------------------------------
    def build_server(self) -> "tuple[InferenceServer, list[TrafficSource]]":
        """Register every model (offline phase) and return the server
        plus one traffic source per model."""
        server = InferenceServer(
            policy=self.policy,
            plan_cache_capacity=self.plan_cache_capacity,
            execute_numerics=self.execute_numerics,
            backend=self.backend,
            scheduling=self.scheduling,
            continuous_batching=self.continuous,
            host_overhead_s=self.host_overhead_s,
            devices=self.devices,
            shard=self.shard,
            link=self.link,
            tracer=self.tracer,
            faults=self.faults,
            resilience=self.resilience,
        )
        sources: list[TrafficSource] = []
        rng = np.random.default_rng(self.seed)
        for model_name in self.models:
            base = get_llama_model(model_name)
            scaled = base.scaled(self.scale) if self.scale > 1 else base
            shapes = {
                layer: (n, k) for layer, n, k in llama_layer_shapes(scaled)
            }
            if self.layer not in shapes:
                raise ConfigurationError(
                    f"unknown layer {self.layer!r}; known: "
                    f"{sorted(shapes)}"
                )
            n, k = shapes[self.layer]
            if self.integer_values:
                weights = rng.integers(-4, 5, size=(k, n)).astype(np.float32)
            else:
                weights = rng.standard_normal((k, n)).astype(np.float32)
            registered = f"{model_name.lower()}/{self.layer}"
            server.register_model(
                registered,
                weights,
                self.pattern,
                gpu=self.gpu,
                version=self.version,
            )
            if self.tiers:
                for tier in self.tiers:
                    sources.append(
                        TrafficSource(
                            model=registered,
                            k=k,
                            rows_choices=self.rows_choices,
                            share=tier.share,
                            priority=tier.priority,
                            slo_ms=tier.slo_ms,
                            decode_fraction=(
                                tier.decode_fraction
                                if tier.decode_fraction is not None
                                else self.decode_fraction
                            ),
                        )
                    )
            else:
                sources.append(
                    TrafficSource(
                        model=registered,
                        k=k,
                        rows_choices=self.rows_choices,
                        decode_fraction=self.decode_fraction,
                    )
                )
        return server, sources

    def run(self) -> ServingReport:
        """Build the server, generate the seeded trace, simulate."""
        server, sources = self.build_server()
        trace = generate_requests(
            sources,
            self.qps,
            self.duration_s,
            seed=self.seed,
            arrival=self.arrival,
            integer_values=self.integer_values,
            synthesize_activations=self.execute_numerics,
        )
        return server.simulate(trace)

    def describe(self) -> str:
        text = (
            f"models={','.join(self.models)} layer={self.layer} "
            f"scale=1/{self.scale} pattern={self.pattern.label()} "
            f"gpu={self.gpu} {self.version} qps={self.qps:g} "
            f"duration={self.duration_s:g}s arrival={self.arrival} "
            f"seed={self.seed} sched={self.scheduling}"
        )
        if self.continuous:
            text += " continuous"
        if self.decode_fraction is not None:
            text += f" decode={self.decode_fraction:g}"
        if self.tiers:
            text += " tiers=" + ",".join(t.label() for t in self.tiers)
        if self.devices > 1:
            text += (
                f" devices={self.devices} shard={self.shard} "
                f"link={self.link}"
            )
        if self.faults is not None:
            spec = (
                self.faults
                if isinstance(self.faults, str)
                else self.faults.describe()
            )
            text += f" faults=[{spec}]"
        if self.resilience:
            text += " resilience"
        return text

    # ------------------------------------------------------------------
    # Canned scenarios (shared by bench_serving.py and the tests)
    # ------------------------------------------------------------------
    @classmethod
    def mixed_prefill_decode(cls, **overrides) -> "LlamaServingScenario":
        """Mixed prefill/decode traffic through the continuous batcher:
        60% decode-shaped multi-step sequences (1-4 rows), the rest
        prefill chunks on the dynamic path."""
        defaults = dict(
            models=("llama-7b",),
            qps=200.0,
            duration_s=2.0,
            continuous=True,
            decode_fraction=0.6,
            execute_numerics=False,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def priority_tiered(
        cls, scheduling: str = SchedulingPolicy.SLO_EDF.value, **overrides
    ) -> "LlamaServingScenario":
        """Priority-tiered traffic with per-tier SLOs: a small
        latency-sensitive interactive tier sharing the GPU with a bulk
        backlog.  Run once with ``scheduling="fifo"`` and once with
        ``"slo-edf"`` to measure what SLO-aware scheduling buys."""
        defaults = dict(
            models=("llama-7b",),
            qps=3000.0,
            duration_s=2.0,
            arrival="bursty",
            tiers=(
                TrafficTier(priority=2, slo_ms=5.0, share=0.2),
                TrafficTier(priority=0, slo_ms=100.0, share=0.8),
            ),
            policy=BatchingPolicy(max_batch_rows=64),
            host_overhead_s=2e-3,
            execute_numerics=False,
        )
        defaults.update(overrides)
        return cls(scheduling=scheduling, **defaults)
