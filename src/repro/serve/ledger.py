"""Generic conservation ledger for per-request resident footprints.

The serving stack keeps several "total footprint" aggregates that must
never drift from the entries they summarize: the queued activation rows
admission control polls (:class:`~repro.serve.queue.RequestQueue`), the
rolling batch's resident rows
(:class:`~repro.serve.batcher.ContinuousBatcher`), and the simulated
HBM bytes of the device-memory model
(:mod:`repro.serve.model_exec.memory`).  Before this module each of
those maintained its own incremental counter next to its own container
— three copies of the same invariant, each a separate drift bug waiting
to happen.

:class:`CostLedger` is that machinery once: a keyed map of non-negative
costs with an incrementally maintained total and high-water mark, plus
a :meth:`reconcile` that recomputes the sum from the entries and raises
on any drift.  Rows and bytes are both just costs; the property tests
that hammer the queue's row conservation now exercise the exact same
code path the KV-byte cap trusts.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.errors import ServeError

__all__ = ["CostLedger"]


class CostLedger:
    """Keyed non-negative costs with a conservation-checked total.

    ``add``/``adjust``/``remove`` maintain :attr:`total` incrementally
    (the schedulers poll it on every event-loop step) and :attr:`peak`
    as the high-water mark.  :meth:`reconcile` recomputes the total
    from the entries and raises :class:`~repro.errors.ServeError` if
    the incremental value drifted — the zero-silent-loss check of the
    byte and row accounting.
    """

    __slots__ = ("name", "_costs", "_total", "_peak")

    def __init__(self, name: str = "cost") -> None:
        self.name = name
        self._costs: dict[Hashable, float] = {}
        self._total: float = 0
        self._peak: float = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._costs)

    def __bool__(self) -> bool:
        return bool(self._costs)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._costs

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._costs)

    @property
    def total(self) -> float:
        """Summed cost over every entry (maintained incrementally)."""
        return self._total

    @property
    def peak(self) -> float:
        """High-water mark of :attr:`total` over the ledger's life."""
        return self._peak

    def cost_of(self, key: Hashable) -> float:
        try:
            return self._costs[key]
        except KeyError:
            raise ServeError(
                f"{self.name} ledger holds no entry for {key!r}"
            ) from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, key: Hashable, cost: float) -> None:
        """Admit ``key`` at ``cost``.  A key is resident at most once —
        double-admission is exactly the accounting bug this ledger
        exists to catch."""
        if key in self._costs:
            raise ServeError(
                f"{self.name} ledger already holds {key!r} "
                f"(cost {self._costs[key]})"
            )
        if cost < 0:
            raise ServeError(
                f"{self.name} ledger cost must be >= 0, got {cost} "
                f"for {key!r}"
            )
        self._costs[key] = cost
        self._total += cost
        if self._total > self._peak:
            self._peak = self._total

    def adjust(self, key: Hashable, delta: float) -> None:
        """Grow (or shrink) a resident entry's cost by ``delta``; the
        entry must stay non-negative."""
        cost = self.cost_of(key) + delta
        if cost < 0:
            raise ServeError(
                f"{self.name} ledger entry {key!r} would go negative: "
                f"{self._costs[key]} {delta:+}"
            )
        self._costs[key] = cost
        self._total += delta
        if self._total > self._peak:
            self._peak = self._total

    def remove(self, key: Hashable) -> float:
        """Release ``key`` and return the cost it held."""
        cost = self.cost_of(key)
        del self._costs[key]
        self._total -= cost
        return cost

    def discard(self, key: Hashable) -> float:
        """Release ``key`` if resident; returns the freed cost (0 when
        the key was not held — the idempotent cleanup path)."""
        if key not in self._costs:
            return 0
        return self.remove(key)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def reconcile(self) -> float:
        """Recompute the total from the entries; raise on drift from
        the incremental counter.  Returns the (verified) total."""
        actual = sum(self._costs.values())
        if actual != self._total:
            raise ServeError(
                f"{self.name} ledger does not reconcile: incremental "
                f"total {self._total} vs recomputed {actual} over "
                f"{len(self._costs)} entries"
            )
        return self._total

    def assert_empty(self) -> None:
        """Raise unless every cost was released (drain invariant)."""
        self.reconcile()
        if self._costs:
            raise ServeError(
                f"{self.name} ledger leaked {len(self._costs)} entries "
                f"({self._total} cost): {sorted(map(repr, self._costs))[:8]}"
            )
