"""Serving metrics: latency percentiles, throughput, batch shape.

Aggregates the per-request, per-batch, and per-step records the engine
emits into the numbers serving papers report — p50/p95/p99 latency
(overall and per priority tier), SLO attainment, achieved QPS,
batch-size histogram, continuous-batching join/evict/preempt counts,
modeled GPU busy time and utilization — plus a JSON-able summary dict
so benchmark trajectories can accrue across PRs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ServeError
from repro.serve.request import RequestRecord
from repro.utils.stats import percentile as _percentile
from repro.utils.tables import TextTable

__all__ = [
    "percentile",
    "LatencySummary",
    "BatchRecord",
    "StepRecord",
    "DropRecord",
    "ReshardRecord",
    "DROP_OUTCOMES",
    "ServingMetrics",
]

#: Terminal outcomes of a request that did *not* complete.  Together
#: with ``completed`` these partition every submitted request — the
#: zero-silent-loss invariant :meth:`ServingMetrics.reconcile` checks.
DROP_OUTCOMES = ("shed", "timed-out", "failed")


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation (shared with
    the trace summarizer via :mod:`repro.utils.stats`, so a serving
    p99 and a per-span p99 agree byte-for-byte on the same sample).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    try:
        return _percentile(values, q)
    except ValueError as exc:
        raise ServeError(str(exc)) from None


@dataclass(frozen=True)
class LatencySummary:
    """The latency digest of one sample, in milliseconds."""

    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, seconds: Sequence[float]) -> "LatencySummary":
        ms = [s * 1e3 for s in seconds]
        return cls(
            p50_ms=percentile(ms, 50),
            p95_ms=percentile(ms, 95),
            p99_ms=percentile(ms, 99),
            mean_ms=sum(ms) / len(ms),
            max_ms=max(ms),
        )

    def as_dict(self) -> dict:
        return {
            "p50_ms": round(self.p50_ms, 6),
            "p95_ms": round(self.p95_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
            "mean_ms": round(self.mean_ms, 6),
            "max_ms": round(self.max_ms, 6),
        }


@dataclass(frozen=True)
class BatchRecord:
    """One launched batch, as the metrics layer sees it.

    On a distributed (``devices > 1``) server, ``modeled_gpu_s`` is the
    full tensor-parallel launch (slowest device + collective),
    ``per_device_gpu_s`` holds each device's own compute seconds, and
    ``comm_s`` the modeled collective time; single-device launches
    leave the latter two at their defaults.
    """

    batch_id: int
    model: str
    n_requests: int
    rows: int
    padded_rows: int
    started_s: float
    finished_s: float
    modeled_gpu_s: float
    per_device_gpu_s: tuple[float, ...] = ()
    comm_s: float = 0.0
    #: The launch suffered an injected fault: the GPU time was spent
    #: but no request finished (its requests retried or failed).
    failed: bool = False

    @property
    def padding_fraction(self) -> float:
        """Share of the launched rows that are zero padding.  A
        zero-row record (possible for synthetic/edge records; a formed
        batch always has >= 1 row) pads nothing, not everything."""
        if self.padded_rows <= 0:
            return 0.0
        return 1.0 - self.rows / self.padded_rows


@dataclass(frozen=True)
class StepRecord:
    """One engine step of the continuous (rolling) batcher (same
    distributed fields as :class:`BatchRecord`)."""

    step_id: int
    model: str
    n_resident: int
    rows: int
    padded_rows: int
    joined: int
    evicted: int
    preempted: int
    started_s: float
    finished_s: float
    modeled_gpu_s: float
    per_device_gpu_s: tuple[float, ...] = ()
    comm_s: float = 0.0
    #: The step's launch suffered an injected fault: no sequence
    #: advanced (the GPU time was still spent).
    failed: bool = False
    #: Model-mode extras: modeled (re)prefill seconds charged inside
    #: this step, host-link thrash seconds (the ``none`` admission
    #: baseline's overflow cost), memory-pressure evictions, and the
    #: resident KV bytes after the step.
    prefill_s: float = 0.0
    thrash_s: float = 0.0
    kv_evicted: int = 0
    kv_bytes: int = 0


@dataclass(frozen=True)
class DropRecord:
    """Terminal record of a request that did not complete.

    ``outcome`` is one of :data:`DROP_OUTCOMES`:

    * ``shed`` — rejected at admission by load shedding;
    * ``timed-out`` — cancelled after its timeout deadline passed
      (whether queued, backing off, or resident in the rolling batch);
    * ``failed`` — gave up after exhausting its launch-failure retries
      (or, with resilience off, on the first fault).
    """

    request: "object"  # InferenceRequest (kept untyped to avoid a cycle)
    outcome: str
    at_s: float
    retries: int = 0

    def __post_init__(self) -> None:
        if self.outcome not in DROP_OUTCOMES:
            raise ServeError(
                f"drop outcome must be one of {DROP_OUTCOMES}, got "
                f"{self.outcome!r}"
            )
        if self.retries < 0:
            raise ServeError(f"retries must be >= 0, got {self.retries}")


@dataclass(frozen=True)
class ReshardRecord:
    """One health-driven re-partition of a model onto the surviving
    devices after a fail-stop."""

    model: str
    failed_device: int
    survivors: int
    at_s: float
    recovery_s: float


@dataclass
class ServingMetrics:
    """Accumulator for one simulated serving run."""

    request_records: list[RequestRecord] = field(default_factory=list)
    batch_records: list[BatchRecord] = field(default_factory=list)
    step_records: list[StepRecord] = field(default_factory=list)
    drop_records: list[DropRecord] = field(default_factory=list)
    reshard_records: list[ReshardRecord] = field(default_factory=list)
    #: Requests handed to ``simulate()`` (0 on runs predating the
    #: resilience layer / built outside the engine).  When set, the
    #: zero-silent-loss reconciliation is available.
    submitted: int = 0
    #: Injected transient launch failures observed by the engine.
    launch_faults: int = 0
    #: Per-device circuit-breaker openings.
    circuit_opens: int = 0
    #: In-flight continuous-batch sequences evicted by timeout
    #: cancellation (outside any step record; counted into
    #: :attr:`continuous_evictions` so the rolling batch's row
    #: accounting reconciles).
    cancelled_evictions: int = 0
    #: Model-mode runs: the device-memory model's end-of-run summary
    #: (budget, peaks, evictions) — ``None`` on matmul-only runs.
    memory: "dict | None" = None
    _launch_shapes_cache: "tuple[tuple[int, int], list] | None" = field(
        init=False, default=None, repr=False, compare=False
    )

    def add_request(self, record: RequestRecord) -> None:
        self.request_records.append(record)

    def add_batch(self, record: BatchRecord) -> None:
        self.batch_records.append(record)

    def add_step(self, record: StepRecord) -> None:
        self.step_records.append(record)

    def add_drop(self, record: DropRecord) -> None:
        self.drop_records.append(record)

    def add_reshard(self, record: ReshardRecord) -> None:
        self.reshard_records.append(record)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.request_records)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion on the simulated clock."""
        if not self.request_records:
            return 0.0
        first = min(r.request.arrival_s for r in self.request_records)
        last = max(r.finished_s for r in self.request_records)
        return last - first

    @property
    def achieved_qps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    def latency(self) -> LatencySummary:
        self._require_records()
        return LatencySummary.from_seconds(
            [r.latency_s for r in self.request_records]
        )

    def queue_wait(self) -> LatencySummary:
        self._require_records()
        return LatencySummary.from_seconds(
            [r.queue_wait_s for r in self.request_records]
        )

    def latency_by_priority(self) -> dict[int, LatencySummary]:
        """Per-priority-tier latency digests (SLO-aware scheduling is
        judged per tier, not on the overall distribution)."""
        self._require_records()
        by_tier: dict[int, list[float]] = {}
        for record in self.request_records:
            by_tier.setdefault(record.request.priority, []).append(
                record.latency_s
            )
        return {
            tier: LatencySummary.from_seconds(values)
            for tier, values in sorted(by_tier.items())
        }

    # ------------------------------------------------------------------
    # SLO attainment
    # ------------------------------------------------------------------
    @property
    def slo_requests(self) -> int:
        """Completed requests that carried an SLO."""
        return sum(1 for r in self.request_records if r.slo_met is not None)

    @property
    def slo_attained(self) -> int:
        return sum(1 for r in self.request_records if r.slo_met)

    @property
    def slo_attainment(self) -> "float | None":
        """Fraction of SLO-carrying requests that met their deadline,
        or ``None`` when the trace carried no SLOs."""
        total = self.slo_requests
        if not total:
            return None
        return self.slo_attained / total

    def slo_attainment_by_priority(self) -> dict[int, float]:
        """Per-tier attainment over the tiers that carry SLOs (a tier
        with no SLO-carrying requests is omitted)."""
        totals: dict[int, int] = {}
        attained: dict[int, int] = {}
        for record in self.request_records:
            met = record.slo_met
            if met is None:
                continue
            tier = record.request.priority
            totals[tier] = totals.get(tier, 0) + 1
            attained[tier] = attained.get(tier, 0) + int(met)
        return {
            tier: attained[tier] / totals[tier] for tier in sorted(totals)
        }

    # ------------------------------------------------------------------
    # Resilience: outcomes, goodput, reconciliation
    # ------------------------------------------------------------------
    def drops_by_outcome(self) -> dict[str, int]:
        """``outcome -> count`` over the drop records (all outcomes of
        :data:`DROP_OUTCOMES` present, zero-filled)."""
        counts = {outcome: 0 for outcome in DROP_OUTCOMES}
        for drop in self.drop_records:
            counts[drop.outcome] += 1
        return counts

    def outcome_counts(self) -> dict[str, int]:
        """Every terminal outcome: ``completed`` plus the drop kinds."""
        counts = {"completed": self.completed}
        counts.update(self.drops_by_outcome())
        return counts

    def reconcile(self) -> dict[str, int]:
        """Assert zero silent request loss and return the outcome counts.

        Every submitted request must terminate exactly once — as
        completed, shed, timed-out, or failed.  Raises
        :class:`~repro.errors.ServeError` when the counts do not add up
        to :attr:`submitted` (only meaningful when the engine recorded
        the submitted count).
        """
        counts = self.outcome_counts()
        total = sum(counts.values())
        if self.submitted and total != self.submitted:
            raise ServeError(
                f"request accounting does not reconcile: {total} terminal "
                f"outcomes ({counts}) for {self.submitted} submitted "
                "requests"
            )
        seen = [r.request.request_id for r in self.request_records] + [
            d.request.request_id for d in self.drop_records
        ]
        if len(seen) != len(set(seen)):
            raise ServeError(
                "request accounting does not reconcile: a request "
                "terminated more than once"
            )
        return counts

    @property
    def total_retries(self) -> int:
        """Launch-failure retries across completed and dropped requests."""
        return sum(r.retries for r in self.request_records) + sum(
            d.retries for d in self.drop_records
        )

    @property
    def failed_launches(self) -> int:
        """Launches (batches + steps) that suffered an injected fault."""
        return sum(1 for b in self.batch_records if b.failed) + sum(
            1 for s in self.step_records if s.failed
        )

    @property
    def slo_submitted(self) -> int:
        """SLO-carrying requests among everything that terminated —
        completed *and* dropped.  The goodput denominator: a shed or
        timed-out request with an SLO is a missed SLO, not a
        statistical no-show."""
        return self.slo_requests + sum(
            1 for d in self.drop_records if d.request.slo_ms is not None
        )

    @property
    def slo_goodput(self) -> "float | None":
        """Fraction of *submitted* SLO-carrying requests that completed
        inside their deadline.  Unlike :attr:`slo_attainment` (which is
        conditioned on completion), goodput charges drops against the
        SLO — the honest resilience metric: a server that sheds or
        loses every late request would otherwise score 100%."""
        total = self.slo_submitted
        if not total:
            return None
        return self.slo_attained / total

    @property
    def recovery_s(self) -> float:
        """Total modeled re-shard recovery pause (weight redistribution
        over the group link)."""
        return sum(r.recovery_s for r in self.reshard_records)

    # ------------------------------------------------------------------
    # Continuous batching
    # ------------------------------------------------------------------
    @property
    def continuous_steps(self) -> int:
        return len(self.step_records)

    @property
    def continuous_joins(self) -> int:
        return sum(s.joined for s in self.step_records)

    @property
    def continuous_evictions(self) -> int:
        """Sequences that left the rolling batch: step-completion and
        failure evictions plus timeout cancellations."""
        return (
            sum(s.evicted for s in self.step_records)
            + self.cancelled_evictions
        )

    @property
    def continuous_preemptions(self) -> int:
        return sum(s.preempted for s in self.step_records)

    # ------------------------------------------------------------------
    # Model-mode (KV/memory) aggregates
    # ------------------------------------------------------------------
    @property
    def kv_evictions(self) -> int:
        """Memory-pressure evictions recorded inside steps (device
        -death evictions live in :attr:`memory`'s summary instead)."""
        return sum(s.kv_evicted for s in self.step_records)

    @property
    def model_prefill_s(self) -> float:
        """Modeled GPU seconds spent (re)prefilling sequences."""
        return sum(s.prefill_s for s in self.step_records)

    @property
    def model_thrash_s(self) -> float:
        """Host-link thrash seconds the ``none`` admission baseline
        paid for KV overflow."""
        return sum(s.thrash_s for s in self.step_records)

    def _launch_shapes(self) -> list[tuple[int, int, int]]:
        """``(requests, rows, padded_rows)`` of every GPU launch —
        dynamic batches and continuous steps alike (both occupy the GPU
        and hit the plan cache).  Memoized on the (append-only) record
        counts: summary() reads five aggregates off it per call."""
        key = (len(self.batch_records), len(self.step_records))
        if (
            self._launch_shapes_cache is not None
            and self._launch_shapes_cache[0] == key
        ):
            return self._launch_shapes_cache[1]
        shapes = [
            (b.n_requests, b.rows, b.padded_rows) for b in self.batch_records
        ] + [
            (s.n_resident, s.rows, s.padded_rows) for s in self.step_records
        ]
        self._launch_shapes_cache = (key, shapes)
        return shapes

    @property
    def mean_batch_requests(self) -> float:
        self._require_batches()
        shapes = self._launch_shapes()
        return sum(n for n, _, _ in shapes) / len(shapes)

    @property
    def mean_batch_rows(self) -> float:
        self._require_batches()
        shapes = self._launch_shapes()
        return sum(rows for _, rows, _ in shapes) / len(shapes)

    def batch_requests_histogram(self) -> dict[int, int]:
        """``requests-per-launch -> launch count``."""
        return dict(
            sorted(Counter(n for n, _, _ in self._launch_shapes()).items())
        )

    def padded_rows_histogram(self) -> dict[int, int]:
        """``padded launch rows (plan-cache bucket) -> launch count``."""
        return dict(
            sorted(
                Counter(p for _, _, p in self._launch_shapes()).items()
            )
        )

    @property
    def gpu_busy_s(self) -> float:
        """Total modeled GPU time across batches and continuous steps
        (on a distributed server this is critical-path time: slowest
        device + collective per launch)."""
        return sum(b.modeled_gpu_s for b in self.batch_records) + sum(
            s.modeled_gpu_s for s in self.step_records
        )

    @property
    def gpu_utilization(self) -> float:
        span = self.makespan_s
        return self.gpu_busy_s / span if span > 0 else 0.0

    # ------------------------------------------------------------------
    # Distributed execution
    # ------------------------------------------------------------------
    def _launch_records(self) -> list:
        return list(self.batch_records) + list(self.step_records)

    @property
    def is_distributed(self) -> bool:
        """Whether any launch carried per-device accounting."""
        return any(r.per_device_gpu_s for r in self._launch_records())

    @property
    def comm_s(self) -> float:
        """Total modeled collective (communication) time."""
        return sum(r.comm_s for r in self._launch_records())

    @property
    def comm_fraction(self) -> float:
        """Share of the modeled GPU critical path spent communicating."""
        busy = self.gpu_busy_s
        return self.comm_s / busy if busy > 0 else 0.0

    def device_busy_s(self) -> dict[int, float]:
        """Per-device modeled compute seconds (device index -> busy)."""
        busy: dict[int, float] = {}
        for record in self._launch_records():
            for device, seconds in enumerate(record.per_device_gpu_s):
                busy[device] = busy.get(device, 0.0) + seconds
        return dict(sorted(busy.items()))

    def device_utilization(self) -> dict[int, float]:
        """Per-device busy time over the run's makespan."""
        span = self.makespan_s
        if span <= 0:
            return {device: 0.0 for device in self.device_busy_s()}
        return {
            device: busy / span
            for device, busy in self.device_busy_s().items()
        }

    @property
    def padding_overhead(self) -> float:
        """Fraction of launched rows that were zero padding."""
        self._require_batches()
        shapes = self._launch_shapes()
        launched = sum(p for _, _, p in shapes)
        useful = sum(rows for _, rows, _ in shapes)
        return 1.0 - useful / launched

    def per_model_completed(self) -> dict[str, int]:
        return dict(
            sorted(Counter(r.request.model for r in self.request_records).items())
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, extra: "dict | None" = None) -> dict:
        """A JSON-able digest of the run (the serving-bench schema)."""
        self._require_records()
        out = {
            "completed_requests": self.completed,
            "batches": len(self.batch_records),
            # Dynamic batches + continuous steps: the launch count the
            # per-launch histograms and means below are computed over.
            "launches": len(self.batch_records) + len(self.step_records),
            "makespan_s": round(self.makespan_s, 9),
            "achieved_qps": round(self.achieved_qps, 3),
            "latency": self.latency().as_dict(),
            "queue_wait": self.queue_wait().as_dict(),
            "mean_batch_requests": round(self.mean_batch_requests, 3),
            "mean_batch_rows": round(self.mean_batch_rows, 3),
            "batch_requests_histogram": {
                str(k): v for k, v in self.batch_requests_histogram().items()
            },
            "padded_rows_histogram": {
                str(k): v for k, v in self.padded_rows_histogram().items()
            },
            "padding_overhead": round(self.padding_overhead, 4),
            "modeled_gpu_busy_s": round(self.gpu_busy_s, 9),
            "modeled_gpu_utilization": round(self.gpu_utilization, 4),
            "per_model_completed": self.per_model_completed(),
            "latency_by_priority": {
                str(tier): summary.as_dict()
                for tier, summary in self.latency_by_priority().items()
            },
            "slo": {
                "requests": self.slo_requests,
                "attained": self.slo_attained,
                "attainment_rate": (
                    None
                    if self.slo_attainment is None
                    else round(self.slo_attainment, 4)
                ),
                "attainment_by_priority": {
                    str(tier): round(rate, 4)
                    for tier, rate in self.slo_attainment_by_priority().items()
                },
            },
            "continuous": {
                "steps": self.continuous_steps,
                "joins": self.continuous_joins,
                "evictions": self.continuous_evictions,
                "preemptions": self.continuous_preemptions,
            },
        }
        if self.memory is not None:
            out["memory"] = dict(self.memory)
            out["model"] = {
                "prefill_s": round(self.model_prefill_s, 9),
                "thrash_s": round(self.model_thrash_s, 9),
                "kv_evictions": self.kv_evictions,
            }
        if self.submitted:
            drops = self.drops_by_outcome()
            out["resilience"] = {
                "submitted": self.submitted,
                "outcomes": self.outcome_counts(),
                "shed": drops["shed"],
                "timed_out": drops["timed-out"],
                "failed": drops["failed"],
                "retries": self.total_retries,
                "launch_faults": self.launch_faults,
                "failed_launches": self.failed_launches,
                "circuit_opens": self.circuit_opens,
                "reshards": len(self.reshard_records),
                "recovery_s": round(self.recovery_s, 9),
                "slo_goodput": (
                    None
                    if self.slo_goodput is None
                    else round(self.slo_goodput, 4)
                ),
            }
        if self.is_distributed:
            out["distributed"] = {
                "devices": len(self.device_busy_s()),
                "comm_s": round(self.comm_s, 9),
                "comm_fraction": round(self.comm_fraction, 4),
                "per_device_busy_s": {
                    str(device): round(busy, 9)
                    for device, busy in self.device_busy_s().items()
                },
                "per_device_utilization": {
                    str(device): round(util, 4)
                    for device, util in self.device_utilization().items()
                },
            }
        if extra:
            out.update(extra)
        return out

    def render(self, title: str = "serving run") -> str:
        """The human-readable digest ``serve-sim`` prints."""
        self._require_records()
        lat = self.latency()
        wait = self.queue_wait()
        table = TextTable(["metric", "value"], title=title)
        table.add_row(["requests completed", str(self.completed)])
        table.add_row(["batches launched", str(len(self.batch_records))])
        table.add_row(["makespan", f"{self.makespan_s * 1e3:.3f} ms"])
        table.add_row(["achieved QPS", f"{self.achieved_qps:.1f}"])
        table.add_row(["latency p50", f"{lat.p50_ms:.3f} ms"])
        table.add_row(["latency p95", f"{lat.p95_ms:.3f} ms"])
        table.add_row(["latency p99", f"{lat.p99_ms:.3f} ms"])
        table.add_row(["queue wait p99", f"{wait.p99_ms:.3f} ms"])
        table.add_row(["mean batch size (requests)", f"{self.mean_batch_requests:.2f}"])
        table.add_row(["mean batch rows", f"{self.mean_batch_rows:.1f}"])
        table.add_row(["padding overhead", f"{self.padding_overhead * 100:.1f}%"])
        table.add_row(["modeled GPU busy", f"{self.gpu_busy_s * 1e3:.3f} ms"])
        table.add_row(["modeled GPU utilization", f"{self.gpu_utilization * 100:.1f}%"])
        by_tier = self.latency_by_priority()
        if len(by_tier) > 1:
            for tier, summary in by_tier.items():
                table.add_row(
                    [f"priority {tier} p99", f"{summary.p99_ms:.3f} ms"]
                )
        if self.slo_attainment is not None:
            table.add_row(
                [
                    "SLO attainment",
                    f"{self.slo_attainment * 100:.1f}% "
                    f"({self.slo_attained}/{self.slo_requests})",
                ]
            )
        if self.submitted:
            drops = self.drops_by_outcome()
            table.add_row(
                [
                    "request outcomes",
                    f"{self.completed} completed, {drops['shed']} shed, "
                    f"{drops['timed-out']} timed-out, "
                    f"{drops['failed']} failed "
                    f"(of {self.submitted} submitted)",
                ]
            )
            if self.launch_faults or self.total_retries:
                table.add_row(
                    [
                        "faults / retries",
                        f"{self.launch_faults} launch faults, "
                        f"{self.total_retries} retries, "
                        f"{self.circuit_opens} circuit opens",
                    ]
                )
            if self.reshard_records:
                table.add_row(
                    [
                        "reshards",
                        f"{len(self.reshard_records)} "
                        f"(recovery {self.recovery_s * 1e3:.3f} ms)",
                    ]
                )
            if self.slo_goodput is not None:
                table.add_row(
                    [
                        "SLO goodput",
                        f"{self.slo_goodput * 100:.1f}% "
                        f"({self.slo_attained}/{self.slo_submitted} "
                        "submitted)",
                    ]
                )
        if self.step_records:
            table.add_row(
                [
                    "continuous steps",
                    f"{self.continuous_steps} "
                    f"({self.continuous_joins} joins, "
                    f"{self.continuous_evictions} evictions, "
                    f"{self.continuous_preemptions} preemptions)",
                ]
            )
        if self.memory is not None:
            mem = self.memory
            table.add_row(
                [
                    "HBM budget",
                    f"{mem['budget_bytes'] / 2**20:.2f} MiB "
                    f"({mem['admission']} admission)",
                ]
            )
            table.add_row(
                [
                    "HBM peak resident",
                    f"{mem['peak_resident_bytes'] / 2**20:.2f} MiB "
                    f"({mem['peak_utilization'] * 100:.1f}% of budget, "
                    f"KV peak {mem['kv_peak_bytes'] / 2**20:.2f} MiB)",
                ]
            )
            table.add_row(
                [
                    "KV pressure",
                    f"{mem['kv_evictions']} evictions, "
                    f"{mem['overflow_steps']} overflow steps, "
                    f"prefill {self.model_prefill_s * 1e3:.3f} ms, "
                    f"thrash {self.model_thrash_s * 1e3:.3f} ms",
                ]
            )
        if self.is_distributed:
            table.add_row(
                ["modeled comm time", f"{self.comm_s * 1e3:.3f} ms"]
            )
            table.add_row(
                ["comm fraction", f"{self.comm_fraction * 100:.1f}%"]
            )
            for device, util in self.device_utilization().items():
                table.add_row(
                    [f"device {device} utilization", f"{util * 100:.1f}%"]
                )
        return table.render()

    # ------------------------------------------------------------------
    def _require_records(self) -> None:
        if not self.request_records:
            raise ServeError("no completed requests recorded")

    def _require_batches(self) -> None:
        if not self.batch_records and not self.step_records:
            raise ServeError("no batches recorded")
