"""Serving metrics: latency percentiles, throughput, batch shape.

Aggregates the per-request and per-batch records the engine emits into
the numbers serving papers report — p50/p95/p99 latency, achieved QPS,
batch-size histogram, modeled GPU busy time and utilization — plus a
JSON-able summary dict so benchmark trajectories can accrue across PRs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ServeError
from repro.serve.request import RequestRecord
from repro.utils.tables import TextTable

__all__ = ["percentile", "LatencySummary", "BatchRecord", "ServingMetrics"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation (no numpy
    dependency so the metrics layer stays trivially deterministic).

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    if not values:
        raise ServeError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ServeError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class LatencySummary:
    """The latency digest of one sample, in milliseconds."""

    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, seconds: Sequence[float]) -> "LatencySummary":
        ms = [s * 1e3 for s in seconds]
        return cls(
            p50_ms=percentile(ms, 50),
            p95_ms=percentile(ms, 95),
            p99_ms=percentile(ms, 99),
            mean_ms=sum(ms) / len(ms),
            max_ms=max(ms),
        )

    def as_dict(self) -> dict:
        return {
            "p50_ms": round(self.p50_ms, 6),
            "p95_ms": round(self.p95_ms, 6),
            "p99_ms": round(self.p99_ms, 6),
            "mean_ms": round(self.mean_ms, 6),
            "max_ms": round(self.max_ms, 6),
        }


@dataclass(frozen=True)
class BatchRecord:
    """One launched batch, as the metrics layer sees it."""

    batch_id: int
    model: str
    n_requests: int
    rows: int
    padded_rows: int
    started_s: float
    finished_s: float
    modeled_gpu_s: float

    @property
    def padding_fraction(self) -> float:
        return 1.0 - self.rows / self.padded_rows


@dataclass
class ServingMetrics:
    """Accumulator for one simulated serving run."""

    request_records: list[RequestRecord] = field(default_factory=list)
    batch_records: list[BatchRecord] = field(default_factory=list)

    def add_request(self, record: RequestRecord) -> None:
        self.request_records.append(record)

    def add_batch(self, record: BatchRecord) -> None:
        self.batch_records.append(record)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        return len(self.request_records)

    @property
    def makespan_s(self) -> float:
        """First arrival to last completion on the simulated clock."""
        if not self.request_records:
            return 0.0
        first = min(r.request.arrival_s for r in self.request_records)
        last = max(r.finished_s for r in self.request_records)
        return last - first

    @property
    def achieved_qps(self) -> float:
        span = self.makespan_s
        return self.completed / span if span > 0 else 0.0

    def latency(self) -> LatencySummary:
        self._require_records()
        return LatencySummary.from_seconds(
            [r.latency_s for r in self.request_records]
        )

    def queue_wait(self) -> LatencySummary:
        self._require_records()
        return LatencySummary.from_seconds(
            [r.queue_wait_s for r in self.request_records]
        )

    @property
    def mean_batch_requests(self) -> float:
        self._require_batches()
        return sum(b.n_requests for b in self.batch_records) / len(
            self.batch_records
        )

    @property
    def mean_batch_rows(self) -> float:
        self._require_batches()
        return sum(b.rows for b in self.batch_records) / len(self.batch_records)

    def batch_requests_histogram(self) -> dict[int, int]:
        """``requests-per-batch -> batch count``."""
        return dict(sorted(Counter(b.n_requests for b in self.batch_records).items()))

    def padded_rows_histogram(self) -> dict[int, int]:
        """``padded batch rows (plan-cache bucket) -> batch count``."""
        return dict(sorted(Counter(b.padded_rows for b in self.batch_records).items()))

    @property
    def gpu_busy_s(self) -> float:
        """Total modeled GPU time across batches."""
        return sum(b.modeled_gpu_s for b in self.batch_records)

    @property
    def gpu_utilization(self) -> float:
        span = self.makespan_s
        return self.gpu_busy_s / span if span > 0 else 0.0

    @property
    def padding_overhead(self) -> float:
        """Fraction of launched rows that were zero padding."""
        self._require_batches()
        launched = sum(b.padded_rows for b in self.batch_records)
        useful = sum(b.rows for b in self.batch_records)
        return 1.0 - useful / launched

    def per_model_completed(self) -> dict[str, int]:
        return dict(
            sorted(Counter(r.request.model for r in self.request_records).items())
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self, extra: "dict | None" = None) -> dict:
        """A JSON-able digest of the run (the serving-bench schema)."""
        self._require_records()
        out = {
            "completed_requests": self.completed,
            "batches": len(self.batch_records),
            "makespan_s": round(self.makespan_s, 9),
            "achieved_qps": round(self.achieved_qps, 3),
            "latency": self.latency().as_dict(),
            "queue_wait": self.queue_wait().as_dict(),
            "mean_batch_requests": round(self.mean_batch_requests, 3),
            "mean_batch_rows": round(self.mean_batch_rows, 3),
            "batch_requests_histogram": {
                str(k): v for k, v in self.batch_requests_histogram().items()
            },
            "padded_rows_histogram": {
                str(k): v for k, v in self.padded_rows_histogram().items()
            },
            "padding_overhead": round(self.padding_overhead, 4),
            "modeled_gpu_busy_s": round(self.gpu_busy_s, 9),
            "modeled_gpu_utilization": round(self.gpu_utilization, 4),
            "per_model_completed": self.per_model_completed(),
        }
        if extra:
            out.update(extra)
        return out

    def render(self, title: str = "serving run") -> str:
        """The human-readable digest ``serve-sim`` prints."""
        self._require_records()
        lat = self.latency()
        wait = self.queue_wait()
        table = TextTable(["metric", "value"], title=title)
        table.add_row(["requests completed", str(self.completed)])
        table.add_row(["batches launched", str(len(self.batch_records))])
        table.add_row(["makespan", f"{self.makespan_s * 1e3:.3f} ms"])
        table.add_row(["achieved QPS", f"{self.achieved_qps:.1f}"])
        table.add_row(["latency p50", f"{lat.p50_ms:.3f} ms"])
        table.add_row(["latency p95", f"{lat.p95_ms:.3f} ms"])
        table.add_row(["latency p99", f"{lat.p99_ms:.3f} ms"])
        table.add_row(["queue wait p99", f"{wait.p99_ms:.3f} ms"])
        table.add_row(["mean batch size (requests)", f"{self.mean_batch_requests:.2f}"])
        table.add_row(["mean batch rows", f"{self.mean_batch_rows:.1f}"])
        table.add_row(["padding overhead", f"{self.padding_overhead * 100:.1f}%"])
        table.add_row(["modeled GPU busy", f"{self.gpu_busy_s * 1e3:.3f} ms"])
        table.add_row(["modeled GPU utilization", f"{self.gpu_utilization * 100:.1f}%"])
        return table.render()

    # ------------------------------------------------------------------
    def _require_records(self) -> None:
        if not self.request_records:
            raise ServeError("no completed requests recorded")

    def _require_batches(self) -> None:
        if not self.batch_records:
            raise ServeError("no batches recorded")
