"""End-to-end model serving: full-model execution + device memory.

This subpackage turns the per-matmul serving engine into an LLM
inference simulator:

* :class:`~repro.serve.model_exec.executor.ModelExecutor` hosts every
  layer shape of a ``workloads.llama`` model on the
  :class:`~repro.nn.linear.NMSparseLinear` stack and walks prefill and
  per-token decode through the backend registry — one gather-GEMM
  launch per layer per step, each charged through the perf model.
* :class:`~repro.serve.model_exec.memory.DeviceMemoryModel` tracks a
  simulated HBM budget (compressed weights + per-sequence KV cache
  that grows every decode step) and caps continuous-batch residency:
  admission refuses sequences that would overflow, and memory pressure
  becomes an eviction trigger alongside priority.
* :class:`~repro.serve.model_exec.scenarios.ModelServingScenario`
  bundles the canned workloads (``prefill_heavy_chat``,
  ``long_context_summarization``, ``agentic_short_decodes``).
"""

from repro.serve.model_exec.executor import LayerSpec, ModelExecutor
from repro.serve.model_exec.memory import DeviceMemoryModel

#: Lazily re-exported from :mod:`repro.serve.model_exec.scenarios` —
#: that module needs the fully built serving engine, while
#: :mod:`repro.serve.server` imports this package for the executor, so
#: an eager import here would be circular.
_SCENARIO_EXPORTS = (
    "ModelServingScenario",
    "prefill_heavy_chat",
    "long_context_summarization",
    "agentic_short_decodes",
)


def __getattr__(name: str):
    if name in _SCENARIO_EXPORTS:
        from repro.serve.model_exec import scenarios

        return getattr(scenarios, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "LayerSpec",
    "ModelExecutor",
    "DeviceMemoryModel",
    "ModelServingScenario",
    "prefill_heavy_chat",
    "long_context_summarization",
    "agentic_short_decodes",
]
