"""Canned model-serving scenarios: whole Llama models under load.

Shared by ``python -m repro serve-sim --model-mode``,
``benchmarks/bench_model_serving.py``, and the test suite, so the CLI
demo, the tracked benchmark, and the properties all run the identical
setup: one :class:`~repro.serve.model_exec.executor.ModelExecutor` per
requested checkpoint registered on an
:class:`~repro.serve.server.InferenceServer`, model-mode traffic
(``prompt_len``/``max_new_tokens``), and a simulated HBM budget sized
in *KV tokens* of headroom above the compressed weights — the knob
that makes the memory-constrained regimes reproducible at laptop
scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, ServeError
from repro.serve.batcher import BatchingPolicy
from repro.serve.loadgen import TrafficSource, generate_requests
from repro.serve.model_exec.executor import ModelExecutor
from repro.serve.model_exec.memory import KV_ADMISSION_MODES
from repro.serve.scenarios import TrafficTier
from repro.serve.scheduling import SchedulingPolicy
from repro.serve.server import (
    DEFAULT_HOST_OVERHEAD_S,
    InferenceServer,
    ServingReport,
)
from repro.sparsity.config import NMPattern

__all__ = [
    "ModelServingScenario",
    "prefill_heavy_chat",
    "long_context_summarization",
    "agentic_short_decodes",
]


@dataclass
class ModelServingScenario:
    """One reproducible end-to-end model-serving experiment.

    Parameters
    ----------
    model:
        Llama checkpoint name registered as one executor-backed model.
    scale / blocks / pattern / gpu / version / backend / kv_dtype_bytes:
        Executor construction knobs (see
        :class:`~repro.serve.model_exec.executor.ModelExecutor`).
    qps / duration_s / arrival / seed:
        Load-generation knobs (see :mod:`repro.serve.loadgen`).
    prompt_len_choices / max_new_tokens_choices:
        Per-request prompt and generation lengths (uniform draw).
    tiers:
        Priority tiers of the traffic mix; empty serves one source
        tagged with the scenario-level ``slo_ms``.
    hbm_tokens:
        HBM budget expressed as KV headroom: the budget is the
        executor's compressed ``weight_bytes`` plus this many tokens of
        KV cache.  ``None`` leaves ``hbm_bytes`` (or the GPU catalog
        spec) in charge.
    hbm_bytes:
        Explicit byte budget override (mutually exclusive with
        ``hbm_tokens``).
    kv_admission:
        ``"kv-aware"`` (budget-respecting admission/eviction) or
        ``"none"`` (the thrashing baseline).
    """

    model: str = "llama-7b"
    scale: int = 16
    blocks: int = 2
    pattern: NMPattern = field(
        default_factory=lambda: NMPattern(2, 8, vector_length=8)
    )
    gpu: str = "A100"
    version: str = "V3"
    backend: str = "auto"
    kv_dtype_bytes: int = 2
    qps: float = 100.0
    duration_s: float = 2.0
    arrival: str = "poisson"
    seed: int = 0
    scheduling: str = SchedulingPolicy.FIFO.value
    policy: BatchingPolicy = field(default_factory=BatchingPolicy)
    plan_cache_capacity: int = 64
    prompt_len_choices: tuple[int, ...] = (64, 128, 256)
    max_new_tokens_choices: tuple[int, ...] = (8, 16)
    slo_ms: "float | None" = None
    tiers: tuple[TrafficTier, ...] = ()
    hbm_tokens: "int | None" = None
    hbm_bytes: "int | None" = None
    kv_admission: str = "kv-aware"
    #: Host-link bandwidth the ``none`` baseline pages spilled KV over.
    #: The scaled-down geometry shrinks every byte count by ~scale^2,
    #: so the canned scenarios shrink the link the same way to keep the
    #: thrash-to-compute ratio representative.
    host_link_bytes_per_s: float = 16e9
    host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S
    tracer: "object | None" = None
    devices: int = 1
    shard: str = "column"
    link: str = "nvlink"
    faults: "object | str | None" = None
    resilience: "object | bool | None" = None

    def __post_init__(self) -> None:
        if self.scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {self.scale}")
        if self.hbm_tokens is not None and self.hbm_bytes is not None:
            raise ServeError("pass hbm_tokens or hbm_bytes, not both")
        if self.hbm_tokens is not None and self.hbm_tokens < 1:
            raise ServeError(
                f"hbm_tokens must be >= 1, got {self.hbm_tokens}"
            )
        if self.kv_admission not in KV_ADMISSION_MODES:
            raise ServeError(
                f"unknown kv admission mode {self.kv_admission!r}; "
                f"pick one of {KV_ADMISSION_MODES}"
            )
        SchedulingPolicy.parse(self.scheduling)  # fail fast on typos

    # ------------------------------------------------------------------
    def build_executor(self) -> ModelExecutor:
        return ModelExecutor(
            self.model,
            scale=self.scale,
            blocks=self.blocks,
            pattern=self.pattern,
            gpu=self.gpu,
            version=self.version,
            backend=self.backend,
            seed=self.seed,
            kv_dtype_bytes=self.kv_dtype_bytes,
        )

    def budget_bytes(
        self, executor: "ModelExecutor | None" = None
    ) -> "int | None":
        """The explicit HBM budget this scenario runs under, or
        ``None`` to defer to the GPU catalog spec."""
        if self.hbm_bytes is not None:
            return int(self.hbm_bytes)
        if self.hbm_tokens is None:
            return None
        ex = executor if executor is not None else self.build_executor()
        return ex.weight_bytes + self.hbm_tokens * ex.kv_bytes_per_token

    def build_server(self) -> "tuple[InferenceServer, list[TrafficSource]]":
        """Register the executor (offline phase) and return the server
        plus the scenario's traffic sources."""
        executor = self.build_executor()
        server = InferenceServer(
            policy=self.policy,
            plan_cache_capacity=self.plan_cache_capacity,
            execute_numerics=False,
            backend=self.backend,
            scheduling=self.scheduling,
            continuous_batching=True,
            host_overhead_s=self.host_overhead_s,
            devices=self.devices,
            shard=self.shard,
            link=self.link,
            tracer=self.tracer,
            faults=self.faults,
            resilience=self.resilience,
            hbm_bytes=self.budget_bytes(executor),
            kv_admission=self.kv_admission,
            host_link_bytes_per_s=self.host_link_bytes_per_s,
        )
        registered = self.model.lower()
        server.register_executor(registered, executor)
        sources: list[TrafficSource] = []
        if self.tiers:
            for tier in self.tiers:
                sources.append(
                    TrafficSource(
                        model=registered,
                        k=executor.hidden,
                        share=tier.share,
                        priority=tier.priority,
                        slo_ms=tier.slo_ms,
                        prompt_len_choices=self.prompt_len_choices,
                        max_new_tokens_choices=self.max_new_tokens_choices,
                    )
                )
        else:
            sources.append(
                TrafficSource(
                    model=registered,
                    k=executor.hidden,
                    slo_ms=self.slo_ms,
                    prompt_len_choices=self.prompt_len_choices,
                    max_new_tokens_choices=self.max_new_tokens_choices,
                )
            )
        return server, sources

    def run(self) -> ServingReport:
        """Build the server, generate the seeded trace, simulate."""
        server, sources = self.build_server()
        trace = generate_requests(
            sources,
            self.qps,
            self.duration_s,
            seed=self.seed,
            arrival=self.arrival,
            synthesize_activations=False,
        )
        return server.simulate(trace)

    def describe(self) -> str:
        text = (
            f"model={self.model} scale=1/{self.scale} "
            f"blocks={self.blocks} pattern={self.pattern.label()} "
            f"gpu={self.gpu} {self.version} qps={self.qps:g} "
            f"duration={self.duration_s:g}s arrival={self.arrival} "
            f"seed={self.seed} sched={self.scheduling} "
            f"kv={self.kv_admission}"
        )
        if self.hbm_tokens is not None:
            text += f" hbm_tokens={self.hbm_tokens}"
        elif self.hbm_bytes is not None:
            text += f" hbm_bytes={self.hbm_bytes}"
        if self.tiers:
            text += " tiers=" + ",".join(t.label() for t in self.tiers)
        if self.devices > 1:
            text += (
                f" devices={self.devices} shard={self.shard} "
                f"link={self.link}"
            )
        if self.faults is not None:
            spec = (
                self.faults
                if isinstance(self.faults, str)
                else self.faults.describe()
            )
            text += f" faults=[{spec}]"
        if self.resilience:
            text += " resilience"
        return text


# ----------------------------------------------------------------------
# Canned scenarios (shared by bench_model_serving.py and the tests)
# ----------------------------------------------------------------------
def prefill_heavy_chat(**overrides) -> ModelServingScenario:
    """Chat traffic: medium prompts, short decodes, healthy KV headroom
    — compute-bound, the memory model barely intervenes."""
    defaults = dict(
        qps=60.0,
        duration_s=2.0,
        prompt_len_choices=(64, 128, 256),
        max_new_tokens_choices=(4, 8),
        slo_ms=250.0,
        hbm_tokens=20_000,
    )
    defaults.update(overrides)
    return ModelServingScenario(**defaults)


def long_context_summarization(**overrides) -> ModelServingScenario:
    """Long prompts, long decodes, *tight* KV headroom — the
    memory-constrained regime where kv-aware admission beats the
    no-memory-model baseline on SLO attainment (the tracked benchmark
    comparison runs exactly this scenario under both modes)."""
    defaults = dict(
        qps=80.0,
        duration_s=2.0,
        prompt_len_choices=(256, 384, 512),
        max_new_tokens_choices=(16, 32),
        slo_ms=400.0,
        hbm_tokens=2_000,
        # Per-launch host cost stretches steps so sequences genuinely
        # overlap (same trick as LlamaServingScenario.priority_tiered);
        # the link shrinks with the geometry so paging spilled KV
        # costs what it would at paper scale.
        host_overhead_s=2e-3,
        host_link_bytes_per_s=250e6,
    )
    defaults.update(overrides)
    return ModelServingScenario(**defaults)


def agentic_short_decodes(**overrides) -> ModelServingScenario:
    """Agent loops: tiny prompts, bursty arrivals, short decodes —
    scheduling-dominated, lots of small steps."""
    defaults = dict(
        qps=120.0,
        duration_s=2.0,
        arrival="bursty",
        prompt_len_choices=(8, 16, 32),
        max_new_tokens_choices=(8, 16),
        slo_ms=150.0,
        hbm_tokens=10_000,
    )
    defaults.update(overrides)
    return ModelServingScenario(**defaults)
