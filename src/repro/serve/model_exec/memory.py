"""Simulated device-memory (HBM) accounting for model serving.

Production LLM serving is bounded by device memory long before it is
bounded by compute: the compressed weights are resident for the whole
run, and every in-flight sequence pins a KV cache that grows by one
token per decode step.  :class:`DeviceMemoryModel` reproduces that
constraint on the simulated clock — two
:class:`~repro.serve.ledger.CostLedger` instances (weights keyed by
model name, KV bytes keyed by request id) against a byte budget taken
from the :mod:`repro.gpu.catalog` spec (``dram_gb``) or an explicit
override for the scaled-down regimes the test suite runs.

The model is an *accountant*, not a policy: the serving engine asks
:meth:`fits` at admission/rejoin time, charges growth after every
decode step, and releases on completion, timeout, preemption, and
device death.  Every mutation appends a ``(t_s, resident_bytes)``
sample to :attr:`events`, so the property tests can assert the cap
held at every instant, and :meth:`reconcile` re-derives the totals and
demands zero leaked KV after drain — the same zero-silent-loss
discipline the request ledger already enforces.
"""

from __future__ import annotations

from repro.errors import ServeError
from repro.gpu.catalog import resolve_gpu
from repro.serve.ledger import CostLedger

__all__ = ["DeviceMemoryModel", "KV_ADMISSION_MODES"]

#: ``kv-aware`` — admission/growth respects the budget (the default);
#: ``none`` — the no-memory-model baseline: everything is admitted and
#: overflow is charged as host-link thrash time instead.
KV_ADMISSION_MODES = ("kv-aware", "none")


class DeviceMemoryModel:
    """Byte-accurate simulated HBM pool for one serving run."""

    def __init__(self, budget_bytes: int, *, admission: str = "kv-aware"):
        if budget_bytes <= 0:
            raise ServeError(
                f"HBM budget must be > 0 bytes, got {budget_bytes}"
            )
        if admission not in KV_ADMISSION_MODES:
            raise ServeError(
                f"unknown kv admission mode {admission!r}; "
                f"pick one of {KV_ADMISSION_MODES}"
            )
        self.budget_bytes = int(budget_bytes)
        self.admission = admission
        self.weights = CostLedger("hbm.weight-bytes")
        self.kv = CostLedger("hbm.kv-bytes")
        #: ``(t_s, resident_bytes)`` after every mutation — the raw
        #: series behind the "never exceeds budget" property.
        self.events: list[tuple[float, int]] = []
        self.peak_bytes = 0
        self.kv_evictions = 0
        self.overflow_steps = 0
        self.budget_shrinks = 0

    @classmethod
    def from_gpu(
        cls,
        gpu,
        *,
        devices: int = 1,
        admission: str = "kv-aware",
    ) -> "DeviceMemoryModel":
        """Budget from the catalog spec's ``dram_gb``, scaled by the
        device-group size (the pool is modeled as one aggregate)."""
        spec = resolve_gpu(gpu)
        if devices < 1:
            raise ServeError(f"devices must be >= 1, got {devices}")
        budget = int(spec.dram_gb) * (1 << 30) * devices
        return cls(budget, admission=admission)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def enforce(self) -> bool:
        """Whether admission control consults the budget."""
        return self.admission == "kv-aware"

    @property
    def weight_bytes(self) -> int:
        return self.weights.total

    @property
    def kv_bytes(self) -> int:
        return self.kv.total

    @property
    def resident_bytes(self) -> int:
        return self.weights.total + self.kv.total

    @property
    def free_bytes(self) -> int:
        return self.budget_bytes - self.resident_bytes

    @property
    def overflow_bytes(self) -> int:
        """Bytes past the budget (only ever > 0 under ``none``)."""
        return max(0, self.resident_bytes - self.budget_bytes)

    def fits(self, extra_bytes: int) -> bool:
        """Would ``extra_bytes`` more stay inside the budget?"""
        return self.resident_bytes + extra_bytes <= self.budget_bytes

    def kv_bytes_of(self, request_id) -> int:
        """Resident KV bytes of one sequence (0 when not resident)."""
        if request_id not in self.kv:
            return 0
        return self.kv.cost_of(request_id)

    def _note(self, t_s: float) -> None:
        resident = self.resident_bytes
        if resident > self.peak_bytes:
            self.peak_bytes = resident
        self.events.append((t_s, resident))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_weights(self, model: str, nbytes: int, t_s: float = 0.0) -> None:
        """Pin a model's compressed weights for the whole run."""
        self.weights.add(model, int(nbytes))
        if self.enforce and self.weights.total > self.budget_bytes:
            raise ServeError(
                f"compressed weights ({self.weights.total} B) exceed the "
                f"HBM budget ({self.budget_bytes} B) before any KV cache "
                "is resident — the model does not fit on this device"
            )
        self._note(t_s)

    def reserve_kv(self, request_id, nbytes: int, t_s: float) -> None:
        """Pin a sequence's KV cache (prefill: one entry per resident
        sequence, sized at prompt + already-generated tokens)."""
        self.kv.add(request_id, int(nbytes))
        self._note(t_s)

    def grow_kv(self, request_id, nbytes: int, t_s: float) -> None:
        """Grow a resident sequence's KV cache (one decode step)."""
        self.kv.adjust(request_id, int(nbytes))
        self._note(t_s)

    def release_kv(self, request_id, t_s: float) -> int:
        """Free a sequence's KV cache; idempotent (completion, timeout,
        preemption, and device death can race on the same sequence).
        Returns the freed bytes."""
        freed = self.kv.discard(request_id)
        if freed:
            self._note(t_s)
        return freed

    def set_budget(self, budget_bytes: int, t_s: float) -> None:
        """Shrink (or restore) the pool — device fail-stop re-shards
        onto the survivors, whose aggregate HBM is smaller."""
        if budget_bytes <= 0:
            raise ServeError(
                f"HBM budget must be > 0 bytes, got {budget_bytes}"
            )
        if budget_bytes < self.budget_bytes:
            self.budget_shrinks += 1
        self.budget_bytes = int(budget_bytes)
        self._note(t_s)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def assert_within_budget(self) -> None:
        """Raise unless every recorded sample stayed inside the budget
        that was in force *now* (callers with a shrinking budget check
        incrementally via :meth:`fits`)."""
        for t_s, resident in self.events:
            if resident > self.budget_bytes:
                raise ServeError(
                    f"resident bytes {resident} exceeded the HBM budget "
                    f"{self.budget_bytes} at t={t_s}"
                )

    def reconcile(self) -> int:
        """End-of-run check: both ledgers reconcile and every KV byte
        was released (zero leaked KV after drain).  Returns the
        resident (weight-only) total."""
        self.weights.reconcile()
        self.kv.assert_empty()
        return self.resident_bytes

    def summary(self) -> dict:
        """The KV/memory block of the serving report."""
        return {
            "admission": self.admission,
            "budget_bytes": self.budget_bytes,
            "weight_bytes": self.weights.total,
            "kv_peak_bytes": self.kv.peak,
            "peak_resident_bytes": self.peak_bytes,
            "peak_utilization": (
                self.peak_bytes / self.budget_bytes if self.budget_bytes else 0.0
            ),
            "kv_evictions": self.kv_evictions,
            "overflow_steps": self.overflow_steps,
            "budget_shrinks": self.budget_shrinks,
        }
