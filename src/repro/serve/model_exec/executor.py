"""Full-model execution on the NM-SpMM stack.

:class:`ModelExecutor` hosts every layer shape of a
``workloads.llama`` model — the five shapes
:func:`~repro.workloads.llama.llama_layer_shapes` derives (fused QKV,
attention output, MLP gate/up, MLP down, LM head) — as
:class:`~repro.nn.linear.NMSparseLinear` layers, repeated per
transformer block.  Each layer keeps its own compressed handle and
routes through the pluggable backend registry, so format/backend
choice can differ per layer shape (the customized-storage argument of
Shi et al.); the serving engine charges one gather-GEMM launch per
layer per step through the perf model.

The executor provides both views the simulator needs:

* *numerics* — :meth:`hidden_states` / :meth:`logits` run the actual
  NumPy forward walk (tests compare it against a dense reference);
* *modeled time* — :meth:`modeled_prefill_s` /
  :meth:`modeled_decode_step_s` sum the per-layer perf-model seconds
  at a padded row count, memoized per bucket.  The continuous
  batcher's cost-of-recompute preemption model is exactly
  ``modeled_prefill_s`` of the victim's restart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.nn.linear import Linear, NMSparseLinear
from repro.nn.mlp import relu
from repro.sparsity.config import NMPattern
from repro.workloads.llama import (
    LlamaModel,
    get_llama_model,
    llama_layer_shapes,
)

__all__ = ["LayerSpec", "ModelExecutor"]

#: Per-block layer kinds, in walk order (the LM head runs once at the
#: end of the stack, not per block).
BLOCK_LAYER_KINDS = ("attn-qkv-fused", "attn-qkvo", "mlp-gate-up", "mlp-down")
HEAD_LAYER_KIND = "lm-head"


@dataclass(frozen=True)
class LayerSpec:
    """One resident layer of the executor's walk order."""

    #: Unique name, e.g. ``"block0/mlp-gate-up"`` or ``"lm-head"``.
    name: str
    #: The :func:`llama_layer_shapes` kind this layer instantiates.
    kind: str
    #: Transformer block index, or ``None`` for the LM head.
    block: "int | None"
    #: The hosted N:M-sparse layer (owns op + compressed handle).
    layer: NMSparseLinear

    @property
    def weight_bytes(self) -> int:
        """Compressed footprint (values + indices) of this layer."""
        compressed = self.layer.handle.compressed
        return int(compressed.values_bytes() + compressed.indices_bytes())


class ModelExecutor:
    """A whole Llama model hosted on the NM-SpMM serving stack.

    Parameters
    ----------
    model:
        A :class:`~repro.workloads.llama.LlamaModel` or a catalog name
        (``"llama-7b"`` etc.).
    scale:
        Down-scaling divisor applied via ``LlamaModel.scaled`` so the
        simulator runs at laptop sizes; ``1`` keeps paper dimensions.
    blocks:
        Transformer blocks to instantiate (each gets independent
        weights for all four block-layer shapes).
    pattern:
        N:M pruning pattern shared by every layer.
    kv_dtype_bytes:
        Bytes per cached element (2 ~= fp16 KV cache).
    """

    def __init__(
        self,
        model: "str | LlamaModel" = "llama-7b",
        *,
        scale: int = 16,
        blocks: int = 2,
        pattern: "NMPattern | None" = None,
        gpu: str = "A100",
        version: str = "V3",
        backend: str = "auto",
        seed: int = 0,
        kv_dtype_bytes: int = 2,
    ):
        if blocks < 1:
            raise ServeError(f"blocks must be >= 1, got {blocks}")
        if kv_dtype_bytes < 1:
            raise ServeError(
                f"kv_dtype_bytes must be >= 1, got {kv_dtype_bytes}"
            )
        base = get_llama_model(model) if isinstance(model, str) else model
        self.base_model = base
        self.model = base.scaled(scale) if scale != 1 else base
        self.blocks = blocks
        self.pattern = (
            pattern if pattern is not None else NMPattern(2, 8, vector_length=8)
        )
        self.gpu = gpu
        self.version = version
        self.backend = backend
        self.seed = seed
        self.kv_dtype_bytes = kv_dtype_bytes
        self.layers = self._build_layers()
        self._by_name = {spec.name: spec for spec in self.layers}
        #: padded-row bucket -> summed per-layer modeled seconds.
        self._stack_seconds: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_layers(self) -> "tuple[LayerSpec, ...]":
        # llama_layer_shapes yields (kind, n, k): the layer computes
        # [m, k] @ [k, n], so the dense weight is (k, n).
        shapes = {
            kind: (k, n) for kind, n, k in llama_layer_shapes(self.model)
        }
        rng = np.random.default_rng([self.seed, 0x11A])
        specs: list[LayerSpec] = []

        def host(name: str, kind: str, block: "int | None") -> None:
            k, n = shapes[kind]
            weight = (rng.standard_normal((k, n)) * k**-0.5).astype(
                np.float32
            )
            sparse = NMSparseLinear.from_dense(
                Linear(weight), self.pattern, gpu=self.gpu, version=self.version
            )
            sparse.backend = self.backend
            specs.append(LayerSpec(name=name, kind=kind, block=block, layer=sparse))

        for b in range(self.blocks):
            for kind in BLOCK_LAYER_KINDS:
                host(f"block{b}/{kind}", kind, b)
        host(HEAD_LAYER_KIND, HEAD_LAYER_KIND, None)
        return tuple(specs)

    def layer(self, name: str) -> LayerSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise ServeError(
                f"executor hosts no layer {name!r}; "
                f"layers are {[s.name for s in self.layers]}"
            ) from None

    # ------------------------------------------------------------------
    # Footprints
    # ------------------------------------------------------------------
    @property
    def hidden(self) -> int:
        return self.model.hidden

    @property
    def vocab(self) -> int:
        return self.model.vocab

    @property
    def weight_bytes(self) -> int:
        """Compressed weights resident in HBM for the whole run."""
        return sum(spec.weight_bytes for spec in self.layers)

    @property
    def kv_bytes_per_token(self) -> int:
        """KV-cache bytes one sequence pins per cached token: K and V
        vectors of ``hidden`` elements, per block."""
        return 2 * self.blocks * self.model.hidden * self.kv_dtype_bytes

    def kv_bytes(self, tokens: int) -> int:
        """KV footprint of one sequence with ``tokens`` cached."""
        if tokens < 0:
            raise ServeError(f"tokens must be >= 0, got {tokens}")
        return tokens * self.kv_bytes_per_token

    # ------------------------------------------------------------------
    # Numerics (the NumPy walk; modeled-time serving never calls this)
    # ------------------------------------------------------------------
    def _block_forward(self, x: np.ndarray, block: int) -> np.ndarray:
        h = self.model.hidden
        qkv = self._by_name[f"block{block}/attn-qkv-fused"].layer(x)
        # Single-token decode has no cross-token mixing to model in a
        # GEMM-level simulator; the Q projection slice stands in for
        # the attention read so the residual stream stays h-wide.
        attended = qkv[:, :h]
        x = x + self._by_name[f"block{block}/attn-qkvo"].layer(attended)
        up = self._by_name[f"block{block}/mlp-gate-up"].layer(x)
        x = x + self._by_name[f"block{block}/mlp-down"].layer(relu(up))
        return x

    def hidden_states(self, x: np.ndarray) -> np.ndarray:
        """Walk every transformer block: ``(m, hidden) -> (m, hidden)``."""
        x = np.ascontiguousarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.model.hidden:
            raise ServeError(
                f"activations must be (m, {self.model.hidden}), "
                f"got {x.shape}"
            )
        for b in range(self.blocks):
            x = self._block_forward(x, b)
        return x

    def logits(self, x: np.ndarray) -> np.ndarray:
        """Full forward: blocks then LM head, ``(m, vocab)`` logits."""
        return self._by_name[HEAD_LAYER_KIND].layer(self.hidden_states(x))

    __call__ = logits

    # ------------------------------------------------------------------
    # Modeled time
    # ------------------------------------------------------------------
    def stack_seconds(self, padded_rows: int) -> float:
        """Summed per-layer modeled seconds for one walk of the whole
        stack at ``padded_rows`` activation rows (memoized per bucket;
        single-device — the server models sharded walks itself)."""
        if padded_rows < 1:
            raise ServeError(f"padded_rows must be >= 1, got {padded_rows}")
        cached = self._stack_seconds.get(padded_rows)
        if cached is not None:
            return cached
        total = 0.0
        for spec in self.layers:
            plan = spec.layer.op.plan_for(
                padded_rows, spec.layer.handle, use_cache=True
            )
            total += plan.simulate().seconds
        self._stack_seconds[padded_rows] = total
        return total

    def modeled_prefill_s(self, tokens: int, policy=None) -> float:
        """Modeled seconds to (re)build a sequence's KV cache: one walk
        at ``tokens`` rows (bucketed by ``policy`` when given).  Also
        the preemption cost-of-recompute for a victim holding that many
        tokens."""
        if tokens < 1:
            raise ServeError(f"tokens must be >= 1, got {tokens}")
        rows = policy.bucket_rows(tokens) if policy is not None else tokens
        return self.stack_seconds(rows)

    def modeled_decode_step_s(self, rows: int, policy=None) -> float:
        """Modeled seconds for one decode step of a ``rows``-sequence
        rolling batch (one token per sequence)."""
        if rows < 1:
            raise ServeError(f"rows must be >= 1, got {rows}")
        padded = policy.bucket_rows(rows) if policy is not None else rows
        return self.stack_seconds(padded)

    def describe(self) -> dict:
        return {
            "model": self.model.name,
            "hidden": self.model.hidden,
            "ffn": self.model.ffn,
            "vocab": self.model.vocab,
            "blocks": self.blocks,
            "layers": len(self.layers),
            "pattern": str(self.pattern),
            "gpu": self.gpu,
            "version": self.version,
            "backend": self.backend,
            "weight_bytes": self.weight_bytes,
            "kv_bytes_per_token": self.kv_bytes_per_token,
        }
