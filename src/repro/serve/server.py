"""The serving engine: model registry + discrete-event simulation.

:class:`InferenceServer` owns the registered models (each an
:class:`~repro.core.api.NMSpMM` operator plus its prepared
:class:`~repro.core.api.SparseHandle`), per-device plan caches, and a
simulated GPU — or, with ``devices > 1``, a simulated multi-GPU
:class:`~repro.distributed.topology.DeviceGroup` that every model's
weights are sharded tensor-parallel across at registration.
``simulate`` replays a seeded request trace through the batching layer
with a discrete-event loop:

* requests are admitted to their model's queue at arrival time — to
  the *decode* queue (rolling continuous batch) when continuous
  batching is enabled and the request is decode-shaped, else to the
  *prefill* queue (cut-and-wait dynamic batcher);
* whenever the GPU is free, the most urgent launchable work runs: a
  prefill queue that fills a batch budget, blows its max-wait deadline,
  or sits nonempty after the arrival stream has drained — or a
  continuous step whenever decode work is resident or waiting.
  Urgency follows the :class:`~repro.serve.scheduling.SchedulingPolicy`
  (arrival order, strict priority, or priority + earliest deadline);
* a launch's service time is the perf model's prediction for the
  padded batch shape (plus a fixed host overhead), so the latency
  curves reflect the paper's modeled GPU timing while the numerics run
  through the real NumPy kernels.  A multi-step (decode-sequence)
  request charges one modeled launch per step: the dynamic path holds
  the whole batch until its longest member finishes, while the
  continuous path re-forms the rolling batch between steps.

With a :class:`~repro.faults.FaultPlan` attached, the run is subjected
to seeded chaos — transient launch failures, device fail-stop and
slow-down, link degradation — and with a
:class:`~repro.serve.resilience.ResiliencePolicy` the engine survives
it: failed launches retry with exponential backoff on the simulated
clock, requests past their timeout are cancelled wherever they live,
a per-device circuit breaker benches a device that fails repeatedly
(half-open: it rejoins after a cooldown, or fail-stops for good when
the cooldown is disabled), dead devices trigger re-sharding of the
affected models onto the survivors, and admission control sheds
low-priority load under
backlog.  Every submitted request terminates exactly once — completed,
shed, timed-out, or failed — and the run's
:meth:`~repro.serve.metrics.ServingMetrics.reconcile` proves it.

Everything advances on the simulated clock — two runs of the same trace
produce identical reports.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.backends.registry import backend_names
from repro.core.api import NMSpMM, SparseHandle
from repro.distributed.shard import SHARD_MODES, ShardedHandle, shard_handle
from repro.distributed.sharded import sharded_execute
from repro.distributed.topology import CommEvent, DeviceGroup, Link, get_link
from repro.errors import ServeError
from repro.faults import FaultInjector, FaultPlan, parse_fault_spec
from repro.gpu.spec import GPUSpec
from repro.obs.tracer import Tracer
from repro.serve.batcher import BatchingPolicy, ContinuousBatcher, DynamicBatcher
from repro.serve.cache import PlanCache
from repro.serve.metrics import (
    BatchRecord,
    DropRecord,
    ReshardRecord,
    ServingMetrics,
    StepRecord,
)
from repro.serve.model_exec.executor import ModelExecutor
from repro.serve.model_exec.memory import (
    KV_ADMISSION_MODES,
    DeviceMemoryModel,
)
from repro.serve.queue import RequestQueue
from repro.serve.request import InferenceRequest, RequestRecord
from repro.serve.resilience import ResiliencePolicy
from repro.serve.scheduling import SchedulingPolicy, request_order_key
from repro.sparsity.config import NMPattern

__all__ = ["ModelEntry", "ServingReport", "InferenceServer"]

#: Fixed host-side cost charged per batch launch (scheduling, argument
#: marshalling) on top of the modeled GPU time.
DEFAULT_HOST_OVERHEAD_S = 10e-6


@dataclass(frozen=True)
class ModelEntry:
    """One registered weight matrix and its operator.

    On a distributed server (``devices > 1``) the entry additionally
    carries the tensor-parallel partition of its weights and the device
    group they execute on; single-device entries leave both ``None``.
    """

    name: str
    op: NMSpMM
    handle: SparseHandle
    sharded: "ShardedHandle | None" = None
    group: "DeviceGroup | None" = None
    #: Model-mode: the whole-model executor this entry serves, plus
    #: one per-layer sub-entry per hosted layer (each with its own
    #: handle, shards, and plan-cache key).  Plain matmul entries
    #: leave both unset.
    executor: "ModelExecutor | None" = None
    layers: "tuple[ModelEntry, ...]" = ()

    @property
    def k(self) -> int:
        """Activation width requests must have (the weights' logical
        k; compression padding is internal to execute)."""
        if self.executor is not None:
            return self.executor.hidden
        return self.handle.k_logical

    @property
    def n(self) -> int:
        """Output width requests receive (the weights' logical n)."""
        if self.executor is not None:
            return self.executor.vocab
        return self.handle.n_logical

    @property
    def distributed(self) -> bool:
        if self.layers:
            return any(layer.sharded is not None for layer in self.layers)
        return self.sharded is not None

    def describe(self) -> str:
        if self.executor is not None:
            text = (
                f"{self.name}: {self.executor.model.name} "
                f"({len(self.layers)} layers, "
                f"{self.executor.pattern.label()}) "
                f"gpu={self.op.gpu.name} {self.op.version.value}"
            )
            if self.distributed:
                sub = self.layers[0]
                text += (
                    f" [{sub.sharded.mode}-parallel x"
                    f"{sub.sharded.devices} over {sub.group.link.name}]"
                )
            return text
        text = (
            f"{self.name}: {self.op.pattern.label()} "
            f"k={self.k} n={self.n} gpu={self.op.gpu.name} "
            f"{self.op.version.value}"
        )
        if self.distributed:
            text += (
                f" [{self.sharded.mode}-parallel x"
                f"{self.sharded.devices} over {self.group.link.name}]"
            )
        return text


@dataclass
class _RunState:
    """Chaos/resilience state of one ``simulate()`` call.

    Everything fault-related is run-local: the injector is rebuilt (and
    its seeded stream rewound) per run, re-sharded model entries live in
    an overlay over the immutable registry, and breaker/retry/timeout
    bookkeeping starts empty — so back-to-back runs of the same trace
    stay byte-identical.
    """

    metrics: ServingMetrics
    injector: "FaultInjector | None" = None
    resilience: "ResiliencePolicy | None" = None
    rng: "np.random.Generator | None" = None  # backoff jitter stream
    #: model -> re-sharded ModelEntry (shadowing the registry).
    overlay: dict = field(default_factory=dict)
    #: model -> tuple of *physical* device ids its shards run on.
    device_map: dict = field(default_factory=dict)
    #: fail-stopped physical devices (plan-scheduled, or breaker-opened
    #: permanently under ``breaker_cooldown_s=None``).
    dead: set = field(default_factory=set)
    #: physical device -> circuit-close (revival) time of a half-open
    #: breaker; models touching the device hold launches until then.
    breaker_down: dict = field(default_factory=dict)
    #: physical device -> consecutive attributed launch failures.
    breaker_streak: dict = field(default_factory=dict)
    #: request_id -> failed launch attempts so far.
    attempts: dict = field(default_factory=dict)
    #: (ready_s, request_id, request) backoff heap of pending retries.
    retry_heap: list = field(default_factory=list)
    #: request_id -> absolute cancellation deadline.
    deadlines: dict = field(default_factory=dict)
    #: model -> consecutive failed continuous steps.
    cb_streak: dict = field(default_factory=dict)
    #: model -> no continuous step before this time (decode backoff).
    holdoff: dict = field(default_factory=dict)
    resharded: bool = False
    #: Simulated HBM pool of the run (set when any registered model
    #: carries a ModelExecutor).
    memory: "DeviceMemoryModel | None" = None
    #: The run's aggregate HBM budget at full device count — the base
    #: a fail-stop's survivor budget is scaled from.
    hbm_base_budget: int = 0
    #: The run's model -> ContinuousBatcher map (device-death handling
    #: must evict model-mode residents outside the step path).
    continuous: "dict | None" = None


@dataclass
class ServingReport:
    """Everything one simulated run produced."""

    metrics: ServingMetrics
    policy: BatchingPolicy
    plan_cache_stats: dict
    model_names: list[str]
    numerics: bool
    backend: str = "auto"
    scheduling: str = SchedulingPolicy.FIFO.value
    continuous: bool = False
    devices: int = 1
    shard: "str | None" = None
    link: "str | None" = None
    faults: "str | None" = None
    resilience: "str | None" = None
    #: The run's reconciled HBM pool (only on executor-backed runs) —
    #: its ``events`` series backs the never-over-budget property.
    memory_model: "DeviceMemoryModel | None" = None

    @property
    def request_records(self) -> list[RequestRecord]:
        return self.metrics.request_records

    def record_for(self, request_id: int) -> RequestRecord:
        for record in self.metrics.request_records:
            if record.request.request_id == request_id:
                return record
        raise ServeError(f"no record for request {request_id}")

    def summary(self, extra: "dict | None" = None) -> dict:
        out = self.metrics.summary(
            {
                "models": self.model_names,
                "numerics": self.numerics,
                "backend": self.backend,
                "plan_cache": self.plan_cache_stats,
                "policy": {
                    "scheduling": self.scheduling,
                    "continuous_batching": self.continuous,
                    "max_batch_requests": self.policy.max_batch_requests,
                    "max_batch_rows": self.policy.max_batch_rows,
                    "max_wait_ms": self.policy.max_wait_s * 1e3,
                    "pad_rows_quantum": self.policy.pad_rows_quantum,
                    "pow2_rows": self.policy.pow2_rows,
                    "decode_rows_threshold": self.policy.decode_rows_threshold,
                },
            }
        )
        if self.devices > 1:
            out["topology"] = {
                "devices": self.devices,
                "shard": self.shard,
                "link": self.link,
            }
        if self.faults is not None or self.resilience is not None:
            out["chaos"] = {
                "faults": self.faults,
                "resilience": self.resilience,
            }
        if extra:
            out.update(extra)
        return out

    def render(self, title: str = "serve-sim") -> str:
        text = self.metrics.render(title=title)
        cache = self.plan_cache_stats
        text += (
            f"\nplan cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({cache['hit_rate'] * 100:.1f}% hit rate, "
            f"{cache['evictions']} evictions)"
        )
        text += f"\nscheduling: {self.scheduling}"
        if self.continuous:
            text += (
                " + continuous batching (decode rows <= "
                f"{self.policy.decode_rows_threshold})"
            )
        if self.devices > 1:
            text += (
                f"\ntopology: {self.devices} devices, "
                f"{self.shard}-parallel over {self.link}"
            )
        if self.faults is not None:
            text += f"\nfaults: {self.faults}"
        if self.resilience is not None:
            text += f"\nresilience: {self.resilience}"
        text += f"\nmodels: {', '.join(self.model_names)}"
        return text


class InferenceServer:
    """Single-process serving runtime over NM-SpMM operators.

    Parameters
    ----------
    policy:
        Default batching policy (overridable per ``simulate`` call).
    plan_cache_capacity:
        Entries in the shared plan LRU (keyed by model, padded row
        count, GPU, and optimization version — see
        :class:`~repro.serve.cache.PlanCache`).
    execute_numerics:
        When True each batch also runs through the NumPy kernels and
        every request record carries its output slice; when False only
        the modeled timing is produced (pure scheduling study).
    host_overhead_s:
        Fixed per-launch host cost added to the modeled GPU time.
    backend:
        Kernel backend every batch executes with — any name the
        backend registry (:mod:`repro.backends`) knows, validated here
        so misconfiguration fails at construction rather than on the
        first batch.  The default ``"auto"`` lets the cost-aware
        selector choose per model handle (gather-GEMM for healthy
        vector lengths, scatter-to-dense below the efficiency
        crossover); the server only needs numerics and modeled timing,
        never recorded traces, so auto never lands on the structural
        executors.
    scheduling:
        Queue-order and queue-selection policy: ``"fifo"`` (arrival
        order), ``"priority"`` (strict tiers), or ``"slo-edf"``
        (strict tiers + earliest deadline first within a tier).
    continuous_batching:
        Route decode-shaped requests (rows <= the policy's
        ``decode_rows_threshold``) to a rolling in-flight batch that
        refills every engine step instead of waiting for a fresh cut.
    devices:
        Simulated device count.  ``1`` (the default) is the
        single-GPU server; ``> 1`` shards every registered model's
        weights tensor-parallel across a
        :class:`~repro.distributed.topology.DeviceGroup` built from the
        model's own GPU spec — each device gets its own plan cache, a
        launch's modeled time is the slowest device plus the mode's
        ring collective, and numerics (when enabled) run the real
        per-device gather-GEMM kernels.  Distributed numerics always
        take the sharded path; ``backend`` applies to single-device
        entries only.
    shard:
        Tensor-parallel mode for ``devices > 1``: ``"column"`` (shard
        n, all-gather outputs) or ``"row"`` (shard k, all-reduce
        partials).
    link:
        Interconnect of the simulated group — a name from
        :data:`~repro.distributed.topology.LINKS` or an explicit
        :class:`~repro.distributed.topology.Link`.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When set, every
        simulated run records spans on the simulated clock — request
        admission and queue waits, batch/step launches with nested
        per-device compute and ring-collective children, plan-cache
        hits/misses, continuous-batching join/evict/preempt — plus the
        matching counters/histograms in ``tracer.metrics``.  ``None``
        (the default) keeps serving observation-free; the only cost of
        the disabled path is a ``None`` check per instrumentation
        site.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or a ``--faults``
        spec string) applied to every simulated run: transient launch
        failures, device fail-stop/slow-down, link degradation.  The
        plan's seed drives one run-local random stream, so the same
        plan and trace produce the identical fault schedule.
    resilience:
        Optional :class:`~repro.serve.resilience.ResiliencePolicy`
        (``True`` for the defaults): retries with backoff, timeouts,
        circuit breaking, re-sharding onto survivors, load shedding.
        ``None`` (the default) serves without a safety net — any
        injected launch failure permanently fails its requests.
    hbm_bytes:
        Model-mode only: aggregate simulated HBM of the device group.
        ``None`` (the default) takes the executor GPU's catalog
        ``dram_gb`` times ``devices``; scaled-down scenarios pass a
        small explicit budget so memory pressure is actually exercised.
    kv_admission:
        ``"kv-aware"`` (default): continuous-batch admission refuses
        sequences whose KV cache would overflow the budget, and memory
        pressure evicts residents (cheapest modeled re-prefill first)
        before growth; resident bytes never exceed the budget.
        ``"none"``: the no-memory-model baseline — everything is
        admitted and each overflowing step pays host-link thrash time
        (spilled KV bytes over ``host_link_bytes_per_s``).
    host_link_bytes_per_s:
        Modeled host<->device bandwidth the ``"none"`` baseline's KV
        spill/reload thrash is priced against (default ~PCIe gen4).
    """

    def __init__(
        self,
        *,
        policy: "BatchingPolicy | None" = None,
        plan_cache_capacity: int = 64,
        execute_numerics: bool = True,
        host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S,
        backend: str = "auto",
        scheduling: "str | SchedulingPolicy" = SchedulingPolicy.FIFO,
        continuous_batching: bool = False,
        devices: int = 1,
        shard: str = "column",
        link: "str | Link" = "nvlink",
        tracer: "Tracer | None" = None,
        faults: "FaultPlan | str | None" = None,
        resilience: "ResiliencePolicy | bool | None" = None,
        hbm_bytes: "int | None" = None,
        kv_admission: str = "kv-aware",
        host_link_bytes_per_s: float = 16e9,
    ):
        if host_overhead_s < 0:
            raise ServeError(
                f"host_overhead_s must be >= 0, got {host_overhead_s}"
            )
        if hbm_bytes is not None and hbm_bytes <= 0:
            raise ServeError(f"hbm_bytes must be > 0, got {hbm_bytes}")
        if kv_admission not in KV_ADMISSION_MODES:
            raise ServeError(
                f"unknown kv admission mode {kv_admission!r}; "
                f"pick one of {KV_ADMISSION_MODES}"
            )
        if host_link_bytes_per_s <= 0:
            raise ServeError(
                "host_link_bytes_per_s must be > 0, got "
                f"{host_link_bytes_per_s}"
            )
        if backend not in backend_names():
            raise ServeError(
                f"unknown backend {backend!r}; expected one of "
                f"{backend_names()}"
            )
        if devices < 1:
            raise ServeError(f"devices must be >= 1, got {devices}")
        if shard not in SHARD_MODES:
            raise ServeError(
                f"unknown shard mode {shard!r}; expected one of "
                f"{SHARD_MODES}"
            )
        self.policy = policy or BatchingPolicy()
        #: One plan cache per simulated device (a shard's launch
        #: geometry differs per device when windows divide unevenly, so
        #: sharing one LRU would let devices evict each other's plans).
        self.plan_caches: tuple[PlanCache, ...] = tuple(
            PlanCache(capacity=plan_cache_capacity) for _ in range(devices)
        )
        self.plan_cache = self.plan_caches[0]
        self.execute_numerics = execute_numerics
        self.host_overhead_s = host_overhead_s
        self.backend = backend
        self.scheduling = SchedulingPolicy.parse(scheduling)
        self.continuous_batching = continuous_batching
        self.devices = devices
        self.shard = shard
        self.link = get_link(link)
        self.tracer = tracer
        if isinstance(faults, str):
            faults = parse_fault_spec(faults)
        self.faults = faults
        if resilience is True:
            resilience = ResiliencePolicy()
        elif resilience is False:
            resilience = None
        self.resilience = resilience
        #: Aggregate simulated HBM of the device group in bytes for
        #: model-mode runs; ``None`` reads the executor GPU's catalog
        #: ``dram_gb`` (times ``devices``).
        self.hbm_bytes = hbm_bytes
        #: ``"kv-aware"`` — admission/growth respects the HBM budget
        #: and memory pressure evicts; ``"none"`` — the baseline with
        #: no memory model, where overflow costs host-link thrash.
        self.kv_admission = kv_admission
        #: Modeled host<->device link rate the ``"none"`` baseline's
        #: KV spill/reload thrash is priced against.
        self.host_link_bytes_per_s = host_link_bytes_per_s
        self._models: dict[str, ModelEntry] = {}
        self._inbox: list[InferenceRequest] = []
        #: (registry id, metric, label) -> pre-bound metric handle;
        #: the per-launch hot path must not re-normalize labels.
        self._bound_metrics: dict = {}
        # Per-site handle caches keyed by the one varying label value —
        # a plain string-keyed dict get per observation instead of
        # rebuilding/hashing a tuple key (the per-launch hot path).
        self._launch_metric_cache: dict = {}
        self._qwait_metric_cache: dict = {}
        self._plan_metric_cache: dict = {}
        self._admit_metric_cache: dict = {}
        self._kv_gauge_cache: dict = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register_model(
        self,
        name: str,
        weights: np.ndarray,
        pattern: NMPattern,
        *,
        gpu: "str | GPUSpec" = "A100",
        version: str = "V3",
        already_pruned: bool = False,
    ) -> ModelEntry:
        """Prepare ``weights`` (the offline phase) and register the
        handle under ``name``."""
        op = NMSpMM(pattern, gpu=gpu, version=version)
        handle = op.prepare(weights, already_pruned=already_pruned)
        return self.register_handle(name, op, handle)

    def register_handle(
        self, name: str, op: NMSpMM, handle: SparseHandle
    ) -> ModelEntry:
        """Register an already-prepared handle under ``name``.  On a
        distributed server this is where the offline phase pays the
        tensor-parallel partition (plus the per-shard gather layouts),
        so serving steps only execute and communicate."""
        if not name:
            raise ServeError("model name must be nonempty")
        if name in self._models:
            raise ServeError(f"model {name!r} is already registered")
        sharded = None
        group = None
        if self.devices > 1:
            sharded = shard_handle(handle, self.devices, self.shard)
            group = DeviceGroup(
                gpu=op.gpu, devices=self.devices, link=self.link
            )
        entry = ModelEntry(
            name=name, op=op, handle=handle, sharded=sharded, group=group
        )
        self._models[name] = entry
        return entry

    def register_executor(
        self, name: str, executor: ModelExecutor
    ) -> ModelEntry:
        """Register a whole-model :class:`ModelExecutor` under
        ``name``.  Every hosted layer becomes a per-layer sub-entry
        (own handle, own shards on a distributed server, own
        plan-cache key), and requests against ``name`` must be
        model-mode (``prompt_len``/``max_new_tokens``): the engine
        walks prefill and per-token decode through the sub-entries,
        one modeled gather-GEMM launch per layer per step."""
        if not name:
            raise ServeError("model name must be nonempty")
        if name in self._models:
            raise ServeError(f"model {name!r} is already registered")
        if self.execute_numerics:
            raise ServeError(
                "model-mode serving is modeled-time only; build the "
                "server with execute_numerics=False (use the executor's "
                "own logits()/hidden_states() for numerics)"
            )
        if not self.continuous_batching:
            raise ServeError(
                "model-mode serving decodes through the rolling batch; "
                "build the server with continuous_batching=True"
            )
        layers = []
        for spec in executor.layers:
            op, handle = spec.layer.op, spec.layer.handle
            sharded = None
            group = None
            if self.devices > 1:
                sharded = shard_handle(handle, self.devices, self.shard)
                group = DeviceGroup(
                    gpu=op.gpu, devices=self.devices, link=self.link
                )
            layers.append(
                ModelEntry(
                    name=f"{name}/{spec.name}", op=op, handle=handle,
                    sharded=sharded, group=group,
                )
            )
        entry = ModelEntry(
            name=name,
            op=executor.layers[0].layer.op,
            handle=executor.layers[0].layer.handle,
            executor=executor,
            layers=tuple(layers),
        )
        self._models[name] = entry
        return entry

    @property
    def model_names(self) -> list[str]:
        return sorted(self._models)

    def model(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise ServeError(
                f"unknown model {name!r}; registered: {self.model_names}"
            ) from None

    def _entry(self, name: str, state: "_RunState | None") -> ModelEntry:
        """The model entry a launch executes with: the run-local
        re-sharded overlay entry when a fail-stop re-partitioned the
        model, else the registered one."""
        if state is not None and name in state.overlay:
            return state.overlay[name]
        return self.model(name)

    def _phys_devices(
        self, entry: ModelEntry, state: "_RunState | None"
    ) -> tuple[int, ...]:
        """The physical device ids ``entry`` occupies, in shard-slot
        order.  Identity until a re-shard maps the survivors."""
        if state is not None and entry.name in state.device_map:
            return state.device_map[entry.name]
        if entry.distributed:
            return tuple(range(self.devices))
        return (0,)

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Queue a request for the next :meth:`run_submitted` call."""
        self._validate_request(request)
        self._inbox.append(request)

    def run_submitted(
        self, *, policy: "BatchingPolicy | None" = None
    ) -> ServingReport:
        """Simulate everything submitted so far and clear the inbox."""
        requests, self._inbox = self._inbox, []
        return self.simulate(requests, policy=policy)

    def _validate_request(self, request: InferenceRequest) -> None:
        entry = self.model(request.model)
        if request.k != entry.k:
            raise ServeError(
                f"request {request.request_id} has k={request.k} but model "
                f"{request.model!r} expects k={entry.k}"
            )
        if entry.executor is not None:
            if request.prompt_len is None:
                raise ServeError(
                    f"request {request.request_id} targets model-mode "
                    f"{request.model!r} but carries no "
                    "prompt_len/max_new_tokens"
                )
            if self.kv_admission == "kv-aware":
                ex = entry.executor
                weights = sum(
                    e.executor.weight_bytes
                    for e in self._models.values()
                    if e.executor is not None
                )
                need = ex.kv_bytes(
                    request.prompt_len + request.max_new_tokens
                )
                budget = self._model_budget_bytes()
                if weights + need > budget:
                    raise ServeError(
                        f"request {request.request_id} can never fit: "
                        f"weights {weights} B + lifetime KV {need} B "
                        f"exceed the HBM budget {budget} B"
                    )
            return
        if request.prompt_len is not None:
            raise ServeError(
                f"request {request.request_id} carries prompt_len but "
                f"model {request.model!r} is a plain matmul entry"
            )
        if self.execute_numerics and request.a is None:
            raise ServeError(
                f"request {request.request_id} is metadata-only but the "
                "server executes numerics; generate the trace with "
                "synthesize_activations=True or disable numerics"
            )

    def _model_budget_bytes(self) -> int:
        """The run's aggregate HBM budget: the explicit override, else
        the executor GPU's catalog ``dram_gb`` times the device count."""
        if self.hbm_bytes is not None:
            return int(self.hbm_bytes)
        for entry in self._models.values():
            if entry.executor is not None:
                return int(entry.op.gpu.dram_gb) * (1 << 30) * self.devices
        raise ServeError("no executor-backed model is registered")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _queue_key(self, queue: RequestQueue) -> tuple:
        """Ascending urgency of a prefill flush: the order key of the
        exact request the queue would serve next, so queue selection
        and pop order never disagree (a queue must not win on one
        tier's priority and then serve a different tier's request)."""
        return request_order_key(queue.peek(), self.scheduling)

    def _decode_key(
        self, queue: RequestQueue, batcher: ContinuousBatcher
    ) -> tuple:
        """Urgency of a continuous step: the most urgent request with a
        stake in the next step — waiting, resident, or preempted.  A
        resident high-priority sequence must not lose the GPU to lower
        tiers just because a low-priority decode request is queued."""
        keys = [
            request_order_key(entry.request, self.scheduling)
            for entry in batcher.resident
        ]
        keys.extend(
            request_order_key(entry.request, self.scheduling)
            for entry in batcher.preempted
        )
        if queue:
            keys.append(self._queue_key(queue))
        return min(keys)

    def _is_decode(self, request: InferenceRequest, policy: BatchingPolicy) -> bool:
        return (
            self.continuous_batching
            and request.rows <= policy.decode_rows_threshold
        )

    # ------------------------------------------------------------------
    # Launch accounting (shared by the dynamic and continuous paths)
    # ------------------------------------------------------------------
    def _bm(
        self,
        kind: str,
        name: str,
        help_text: str,
        label: "tuple[str, object] | None" = None,
    ):
        """Cached pre-bound metric handle for one ``(metric, label)``
        pair — per-launch instrumentation calls this instead of
        re-resolving the instrument and re-normalizing labels every
        step."""
        registry = self.tracer.metrics
        key = (id(registry), name, label)
        handle = self._bound_metrics.get(key)
        if handle is None:
            metric = getattr(registry, kind)(name, help_text)
            handle = (
                metric.labels(**{label[0]: label[1]})
                if label is not None
                else metric.labels()
            )
            self._bound_metrics[key] = handle
        return handle

    def _cached_plan(self, cache: PlanCache, device: int, entry: ModelEntry,
                     handle: SparseHandle, padded_rows: int):
        """One plan-cache lookup, surfaced (when tracing) as a
        ``plan_cache.hit``/``plan_cache.miss`` event plus a counter —
        the outcome read off the cache's own stats delta, so the event
        stream and ``plan_cache_stats`` can never disagree."""
        tr = self.tracer
        if tr is None:
            return cache.lookup(entry.name, entry.op, handle, padded_rows)
        hits_before = cache.stats.hits
        plan_entry = cache.lookup(entry.name, entry.op, handle, padded_rows)
        outcome = "hit" if cache.stats.hits > hits_before else "miss"
        counter = self._plan_metric_cache.get(outcome)
        if counter is None:
            counter = self._bm(
                "counter", "serve_plan_cache_total",
                "plan-cache lookups by outcome", ("outcome", outcome),
            )
            self._plan_metric_cache[outcome] = counter
        counter.inc()
        if tr.sample():  # skip attr building on dropped traces
            tr.event(
                f"plan_cache.{outcome}",
                track="engine",
                model=entry.name,
                padded_rows=padded_rows,
                device=device,
                keep=True,
            )
        return plan_entry

    def _modeled_launch(
        self,
        entry: ModelEntry,
        padded_rows: int,
        state: "_RunState | None" = None,
        t_s: float = 0.0,
    ) -> (
        "tuple[float, tuple[float, ...], CommEvent | None, object,"
        " tuple[int, int, int]]"
    ):
        """Model one ``padded_rows``-row launch of ``entry``:
        ``(modeled_gpu_s, per_device_gpu_s, comm_event, plan, cost)``
        where ``cost`` is the launch's ``(flops, ldg_bytes,
        stg_bytes)`` from the cached plans' analytic traces (summed
        over device shards) — the counts roofline attribution places
        against the GPU's peaks.

        Single-device entries go through the shared plan cache exactly
        as before (plan returned for the numerics path, no comm
        event).  Distributed entries look up one plan per device shard
        in that device's own cache; the launch's modeled time is the
        slowest device plus the mode's ring collective, returned as
        the full :class:`~repro.distributed.topology.CommEvent` so the
        trace can attribute wire bytes, not just seconds.

        With a fault injector active, each device's modeled seconds is
        multiplied by its straggler clock factor at ``t_s`` and the
        collective is priced against the (possibly degraded) link — so
        a slowdown on one device gates the whole tensor-parallel
        launch, exactly as the topology model prescribes.
        """
        injector = None if state is None else state.injector
        phys = self._phys_devices(entry, state)
        if not entry.distributed:
            device = phys[0]
            plan_entry = self._cached_plan(
                self.plan_caches[device], device, entry, entry.handle,
                padded_rows,
            )
            seconds = plan_entry.modeled_seconds
            if injector is not None:
                seconds *= injector.device_factor(device, t_s)
            return seconds, (), None, plan_entry.plan, plan_entry.launch_cost
        per_device = []
        flops = ldg_bytes = stg_bytes = 0
        for shard in entry.sharded.shards:
            device = phys[shard.device]
            plan_entry = self._cached_plan(
                self.plan_caches[device], device, entry,
                shard.handle, padded_rows,
            )
            seconds = plan_entry.modeled_seconds
            if injector is not None:
                seconds *= injector.device_factor(device, t_s)
            per_device.append(seconds)
            shard_flops, shard_ldg, shard_stg = plan_entry.launch_cost
            flops += shard_flops
            ldg_bytes += shard_ldg
            stg_bytes += shard_stg
        group = entry.group
        if injector is not None:
            group = injector.degraded_group(group, t_s)
        comm = entry.sharded.collective(group, padded_rows)
        return (
            max(per_device) + comm.seconds, tuple(per_device), comm, None,
            (flops, ldg_bytes, stg_bytes),
        )

    def _trace_launch(
        self,
        tr: Tracer,
        parent: "object | None",
        start_s: float,
        steps: int,
        modeled_s: float,
        per_device: "tuple[float, ...]",
        comm: "CommEvent | None",
        model: str,
        device_ids: "tuple[int, ...] | None" = None,
        failed: bool = False,
        rows: "int | None" = None,
        gpu: "str | None" = None,
        cost: "tuple[int, int, int] | None" = None,
    ):
        """Record one launch's GPU-side spans: ``gpu.launch`` covering
        the full modeled busy time (so summed launch durations equal
        ``ServingMetrics.gpu_busy_s`` exactly), one nested
        ``device.compute`` child per device shard, and — when the
        launch communicates — a ``comm.<collective>`` child occupying
        the launch's tail (compute gates the ring, so the collective
        finishes the launch), carrying the modeled wire bytes.

        ``rows``/``gpu``/``cost`` enrich the ``gpu.launch`` span with
        the padded row count, the GPU-catalog name, and the launch's
        ``(flops, ldg_bytes, stg_bytes)`` — scaled by ``steps`` —
        which ``trace attribute`` places on the roofline offline."""
        handles = self._launch_metric_cache.get(model)
        if handles is None:
            handles = (
                self._bm(
                    "counter", "serve_launches_total",
                    "batch/step launches", ("model", model),
                ),
                self._bm(
                    "histogram", "serve_launch_seconds",
                    "modeled GPU seconds per launch", ("model", model),
                ),
            )
            self._launch_metric_cache[model] = handles
        handles[0].inc()
        handles[1].observe(steps * modeled_s)
        launch_end = start_s + steps * modeled_s
        if parent is not None and not parent.sampled:
            # metrics above are sampling-independent; the span tree of
            # an unsampled trace is never built.
            tr.advance(launch_end)
            return None
        extra = {"failed": True} if failed else {}
        if rows is not None:
            extra["rows"] = rows
        if gpu is not None:
            extra["gpu"] = gpu
        if cost is not None:
            extra["flops"] = steps * cost[0]
            extra["ldg_bytes"] = steps * cost[1]
            extra["stg_bytes"] = steps * cost[2]
        launch = tr.add_span(
            "gpu.launch", start_s, launch_end,
            track="gpu", parent=parent, model=model, steps=steps, **extra,
        )
        if launch.sampled:  # children of an unsampled trace never record
            for slot, seconds in enumerate(per_device):
                device = device_ids[slot] if device_ids else slot
                tr.add_span(
                    "device.compute", start_s, start_s + steps * seconds,
                    track=f"device{device}", parent=launch,
                    device=device, model=model,
                )
            if comm is not None and comm.seconds > 0:
                tr.add_span(
                    f"comm.{comm.collective}",
                    launch_end - steps * comm.seconds, launch_end,
                    track="comm", parent=launch, model=model,
                    **comm.trace_attrs(),
                )
        return launch

    def _trace_queue_wait(
        self, tr: Tracer, request: InferenceRequest, started_s: float,
        queue: str, keep: "bool | None" = None,
        finished_s: "float | None" = None,
    ) -> None:
        """One request's time-in-queue as a span on the ``queue``
        track (admission to service start) plus a wait histogram.
        ``keep`` ties the span to its batch's sampling decision (the
        histogram records regardless — metrics never sample).

        ``finished_s`` additionally emits a ``request.complete`` event
        at the request's completion time: together with ``queue.wait``
        it bounds the request's end-to-end interval, which the
        critical-path analyzer decomposes into queue / compute / comm
        / paging / retry-backoff buckets offline."""
        hist = self._qwait_metric_cache.get(queue)
        if hist is None:
            hist = self._bm(
                "histogram", "serve_queue_wait_seconds",
                "queue wait per request", ("queue", queue),
            )
            self._qwait_metric_cache[queue] = hist
        hist.observe(started_s - request.arrival_s)
        if keep is False:
            return
        tr.add_span(
            "queue.wait", request.arrival_s, started_s,
            track="queue", parent=None, keep=keep,
            request_id=request.request_id, model=request.model,
            priority=request.priority, queue=queue,
        )
        if finished_s is not None:
            tr.event(
                "request.complete", t_s=finished_s, track="queue",
                keep=keep, request_id=request.request_id,
                model=request.model, priority=request.priority,
                queue=queue, started_s=started_s,
                arrival_s=request.arrival_s,
            )

    def _execute_batch(self, entry: ModelEntry, batch, plan) -> list:
        """Run one batch's numerics and split per-request outputs."""
        if entry.distributed:
            c = sharded_execute(batch.a, entry.sharded)
            return batch.split(c[:, : entry.handle.n_logical])
        c = entry.op.execute(
            batch.a, entry.handle, plan=plan, backend=self.backend,
            tracer=self.tracer,
        )
        return batch.split(c)

    def _plan_cache_snapshot(self) -> list:
        return [cache.stats.snapshot() for cache in self.plan_caches]

    def _plan_cache_stats_since(self, snapshots: list) -> dict:
        """Aggregate per-device plan-cache deltas into one stats dict
        (devices see identical lookup streams, so the sum keeps the
        single-device schema)."""
        total = None
        for cache, before in zip(self.plan_caches, snapshots, strict=True):
            delta = cache.stats.since(before)
            if total is None:
                total = delta
            else:
                total.hits += delta.hits
                total.misses += delta.misses
                total.evictions += delta.evictions
        return total.as_dict()

    # ------------------------------------------------------------------
    # Chaos & resilience
    # ------------------------------------------------------------------
    def _new_run_state(self, metrics: ServingMetrics) -> _RunState:
        plan = self.faults
        injector = None
        if plan is not None and not plan.empty:
            injector = FaultInjector(plan, tracer=self.tracer)
        # Backoff jitter draws come from their own child stream so the
        # injector's fault schedule never shifts when retries happen.
        seed = plan.seed if plan is not None else 0
        rng = np.random.default_rng([seed, 0xB0])
        return _RunState(
            metrics=metrics,
            injector=injector,
            resilience=self.resilience,
            rng=rng,
        )

    def _launch_fault(
        self, entry: ModelEntry, t_s: float, state: _RunState
    ) -> "int | None":
        """The physical device a launch of ``entry`` at ``t_s`` fails
        on — a dead device it still touches (pre-reshard, or resilience
        off), or a transient injected failure — or ``None``."""
        if state.injector is None:
            return None
        phys = self._phys_devices(entry, state)
        for device in phys:
            if device in state.dead:
                return device
            if state.breaker_down.get(device, 0.0) > t_s:
                return device
        slot = state.injector.launch_fails(entry.name, t_s, len(phys))
        if slot is None:
            return None
        return phys[slot]

    def _note_launch_ok(self, entry: ModelEntry, state: _RunState) -> None:
        if state.injector is None:
            return
        for device in self._phys_devices(entry, state):
            state.breaker_streak[device] = 0

    def _note_launch_failed(
        self, fail_device: int, t_s: float, state: _RunState
    ) -> float:
        """Advance the circuit breaker after a failure attributed to
        ``fail_device``.  With a cooldown the opened circuit is
        half-open (the device sits out ``breaker_cooldown_s`` and then
        rejoins); without one the device fail-stops and (when enabled)
        re-shards.  Returns the time the GPU is blocked until by any
        recovery, else 0."""
        res = state.resilience
        if (
            res is None
            or res.breaker_threshold is None
            or fail_device in state.dead
            or state.breaker_down.get(fail_device, 0.0) > t_s
        ):
            return 0.0
        streak = state.breaker_streak.get(fail_device, 0) + 1
        state.breaker_streak[fail_device] = streak
        if streak < res.breaker_threshold:
            return 0.0
        state.breaker_streak[fail_device] = 0
        state.metrics.circuit_opens += 1
        tr = self.tracer
        if tr is not None:
            tr.event(
                "device.circuit_open", t_s=t_s, track="faults",
                device=fail_device, streak=streak,
                permanent=res.breaker_cooldown_s is None,
            )
            tr.metrics.counter(
                "serve_circuit_opens_total", "circuit-breaker openings"
            ).inc()
        if res.breaker_cooldown_s is not None:
            state.breaker_down[fail_device] = t_s + res.breaker_cooldown_s
            return 0.0
        state.dead.add(fail_device)
        return self._handle_device_death(fail_device, t_s, state)

    def _revive_devices(self, t_s: float, state: _RunState) -> None:
        """Close every half-open circuit whose cooldown expired."""
        for device in sorted(state.breaker_down):
            until = state.breaker_down[device]
            if until <= t_s:
                del state.breaker_down[device]
                if self.tracer is not None:
                    self.tracer.event(
                        "device.circuit_close", t_s=until, track="faults",
                        device=device,
                    )

    def _down_until(
        self, entry: ModelEntry, t_s: float, state: _RunState
    ) -> float:
        """When every half-open device ``entry`` touches has revived
        (``t_s`` when it is launchable now)."""
        until = t_s
        for device in self._phys_devices(entry, state):
            until = max(until, state.breaker_down.get(device, 0.0))
        return until

    def _process_device_failures(
        self, t_s: float, state: _RunState
    ) -> float:
        """Apply plan-scheduled fail-stops due at or before ``t_s``.
        Returns the time the GPU is blocked until by re-shard recovery,
        else 0."""
        if state.injector is None:
            return 0.0
        blocked = 0.0
        for failure in state.injector.plan.device_failures:
            if failure.at_s <= t_s and failure.device not in state.dead:
                state.dead.add(failure.device)
                state.injector.note_failstop(failure.device, failure.at_s)
                blocked = max(
                    blocked,
                    self._handle_device_death(
                        failure.device, failure.at_s, state
                    ),
                )
        return blocked

    def _handle_device_death(
        self, device: int, t_s: float, state: _RunState
    ) -> float:
        """Gracefully degrade after ``device`` fail-stops: re-shard
        every model it carried onto the surviving devices and keep
        serving.  The recovery pause (redistributing each model's
        compressed weights over the group link) blocks the GPU; the
        returned time is when it frees up (0 when nothing re-shards —
        resilience off, re-sharding disabled, or no survivors, in
        which case launches touching the device keep failing)."""
        res = state.resilience
        survivors = [
            d for d in range(self.devices) if d not in state.dead
        ]
        if (
            res is None
            or not res.reshard
            or not survivors
            or self.devices == 1
        ):
            return 0.0
        tr = self.tracer
        blocked = t_s
        for name in sorted(self._models):
            entry = self._entry(name, state)
            if not entry.distributed:
                continue
            if device not in self._phys_devices(entry, state):
                continue
            if entry.executor is not None:
                new_entry = self._reshard_executor_entry(
                    entry, survivors, state
                )
                payload = entry.executor.weight_bytes
            else:
                handle = entry.handle
                if len(survivors) >= 2:
                    sharded = shard_handle(
                        handle, len(survivors), self.shard
                    )
                    group = DeviceGroup(
                        gpu=entry.op.gpu, devices=len(survivors),
                        link=self.link,
                    )
                    new_entry = ModelEntry(
                        name=name, op=entry.op, handle=handle,
                        sharded=sharded, group=group,
                    )
                else:
                    new_entry = ModelEntry(
                        name=name, op=entry.op, handle=handle
                    )
                payload = (
                    handle.compressed.values.nbytes
                    + handle.compressed.indices.nbytes
                )
            state.overlay[name] = new_entry
            state.device_map[name] = tuple(survivors)
            recovery_s = (
                payload / len(survivors) / self.link.bytes_per_s
                + self.link.latency_s
            )
            state.metrics.add_reshard(
                ReshardRecord(
                    model=name,
                    failed_device=device,
                    survivors=len(survivors),
                    at_s=blocked,
                    recovery_s=recovery_s,
                )
            )
            if tr is not None:
                tr.add_span(
                    "reshard", blocked, blocked + recovery_s,
                    track="engine", parent=None, model=name,
                    failed_device=device, survivors=len(survivors),
                )
                tr.event(
                    "reshard", t_s=blocked, track="engine", model=name,
                    failed_device=device, survivors=len(survivors),
                )
                tr.metrics.counter(
                    "serve_reshards_total", "health-driven re-shards"
                ).inc(model=name)
            blocked += recovery_s
            if entry.executor is not None:
                self._evict_model_residents(
                    name, blocked, state, reason="reshard"
                )
        if state.memory is not None and self.devices > 1:
            # The survivors' aggregate HBM is smaller; evicted KV was
            # released above, and sequences that can no longer fit at
            # all are dropped by the step path's stall relief.
            state.memory.set_budget(
                state.hbm_base_budget * len(survivors) // self.devices,
                blocked,
            )
        # The plan caches key by (model, rows, gpu, version) — not by
        # handle — so plans built for the old shard geometry are stale.
        for cache in self.plan_caches:
            cache.clear()
        state.resharded = True
        return blocked

    def _reshard_executor_entry(
        self, entry: ModelEntry, survivors: list, state: _RunState
    ) -> ModelEntry:
        """Rebuild a model-mode entry's per-layer sub-entries on the
        surviving devices (each layer re-partitions its own handle)."""
        new_layers = []
        for layer in entry.layers:
            if len(survivors) >= 2:
                sharded = shard_handle(
                    layer.handle, len(survivors), self.shard
                )
                group = DeviceGroup(
                    gpu=layer.op.gpu, devices=len(survivors),
                    link=self.link,
                )
                sub = ModelEntry(
                    name=layer.name, op=layer.op, handle=layer.handle,
                    sharded=sharded, group=group,
                )
            else:
                sub = ModelEntry(
                    name=layer.name, op=layer.op, handle=layer.handle
                )
            state.device_map[sub.name] = tuple(survivors)
            new_layers.append(sub)
        return ModelEntry(
            name=entry.name, op=entry.op, handle=entry.handle,
            executor=entry.executor, layers=tuple(new_layers),
        )

    def _evict_model_residents(
        self, name: str, t_s: float, state: _RunState, *, reason: str
    ) -> int:
        """Preempt every resident sequence of model-mode ``name`` and
        release its KV bytes (device death: the re-shard invalidates
        resident caches; victims keep their progress and re-prefill on
        the survivors when they rejoin)."""
        cb = None if state.continuous is None else state.continuous.get(name)
        if cb is None or not cb.resident:
            return 0
        victims = list(cb.resident)
        cb.preempt_entries(victims)
        for inflight in victims:
            if state.memory is not None:
                state.memory.release_kv(inflight.request.request_id, t_s)
        if state.memory is not None:
            state.memory.kv_evictions += len(victims)
        tr = self.tracer
        if tr is not None:
            tr.event(
                "kv.evict", t_s=t_s, track="engine", model=name,
                count=len(victims), reason=reason,
            )
            tr.metrics.counter(
                "serve_kv_evictions_total", "memory-pressure evictions"
            ).inc(model=name, reason=reason)
        return len(victims)

    def _drop(
        self,
        request: InferenceRequest,
        outcome: str,
        at_s: float,
        state: _RunState,
        **attrs,
    ) -> None:
        """Terminate ``request`` without completion: record the drop
        (reconciliation counts it) and emit the matching event."""
        state.metrics.add_drop(
            DropRecord(
                request=request,
                outcome=outcome,
                at_s=at_s,
                retries=state.attempts.get(request.request_id, 0),
            )
        )
        tr = self.tracer
        if tr is None:
            return
        event_name = {
            "shed": "admission.shed",
            "timed-out": "request.timeout",
            "failed": "request.failed",
        }[outcome]
        tr.event(
            event_name, t_s=at_s, track="queue",
            request_id=request.request_id, model=request.model,
            priority=request.priority, **attrs,
        )
        tr.metrics.counter(
            "serve_drops_total", "dropped requests by outcome"
        ).inc(outcome=outcome)

    def _retry_or_fail(
        self, request: InferenceRequest, t_s: float, state: _RunState
    ) -> None:
        """After a failed launch: schedule a backoff retry for
        ``request`` or, with the retry budget exhausted (or resilience
        off), fail it terminally."""
        attempts = state.attempts.get(request.request_id, 0) + 1
        state.attempts[request.request_id] = attempts
        res = state.resilience
        if res is not None and attempts <= res.max_retries:
            u = float(state.rng.random())
            ready_s = t_s + res.backoff_s(attempts, u)
            heapq.heappush(
                state.retry_heap, (ready_s, request.request_id, request)
            )
        else:
            state.attempts[request.request_id] = attempts - 1
            self._drop(request, "failed", t_s, state, attempts=attempts)

    def _admit_retries(
        self,
        t_s: float,
        prefill_queues: dict,
        decode_queues: dict,
        run_policy: BatchingPolicy,
        state: _RunState,
    ) -> None:
        """Re-queue every retry whose backoff expired by ``t_s``."""
        tr = self.tracer
        while state.retry_heap and state.retry_heap[0][0] <= t_s:
            _, request_id, request = heapq.heappop(state.retry_heap)
            decode = self._is_decode(request, run_policy)
            queues = decode_queues if decode else prefill_queues
            queues[request.model].requeue(request)
            if tr is not None:
                tr.event(
                    "retry.attempt", t_s=t_s, track="queue",
                    request_id=request_id, model=request.model,
                    attempt=state.attempts.get(request_id, 0),
                )
                tr.metrics.counter(
                    "serve_retries_total", "launch-failure retries"
                ).inc(model=request.model)

    def _cancel_timed_out(
        self,
        t_s: float,
        prefill_queues: dict,
        decode_queues: dict,
        continuous: dict,
        state: _RunState,
    ) -> None:
        """Cancel every request whose deadline passed by ``t_s``,
        wherever it lives: queued, backing off in the retry heap, or
        resident in (or preempted out of) the rolling decode batch.
        Queue and continuous-batch row accounting unwinds through the
        dedicated removal paths."""
        if state.resilience is None or not state.deadlines:
            return

        def expired(request: InferenceRequest) -> bool:
            deadline = state.deadlines.get(request.request_id)
            return deadline is not None and deadline <= t_s

        for queues, where in (
            (prefill_queues, "prefill"),
            (decode_queues, "decode"),
        ):
            for queue in queues.values():
                for request in queue.remove_where(expired):
                    self._drop(
                        request, "timed-out",
                        state.deadlines[request.request_id],
                        state, where=where,
                    )
        if state.retry_heap and any(
            expired(item[2]) for item in state.retry_heap
        ):
            kept = []
            for item in state.retry_heap:
                if expired(item[2]):
                    self._drop(
                        item[2], "timed-out",
                        state.deadlines[item[2].request_id],
                        state, where="retry",
                    )
                else:
                    kept.append(item)
            state.retry_heap = kept
            heapq.heapify(state.retry_heap)
        tr = self.tracer
        for name, cb in continuous.items():
            cancelled = cb.cancel_where(expired)
            state.metrics.cancelled_evictions += len(cancelled)
            for inflight in cancelled:
                if state.memory is not None:
                    state.memory.release_kv(
                        inflight.request.request_id, t_s
                    )
                self._drop(
                    inflight.request, "timed-out",
                    state.deadlines[inflight.request.request_id],
                    state, where="inflight",
                )
            if cancelled and tr is not None:
                tr.event(
                    "cb.evict", t_s=t_s, track="engine", model=name,
                    count=len(cancelled), reason="timeout",
                )

    def _next_timeout_deadline(
        self,
        t_s: float,
        prefill_queues: dict,
        decode_queues: dict,
        continuous: dict,
        state: _RunState,
    ) -> "float | None":
        """The earliest pending cancellation deadline strictly after
        ``t_s`` among live (queued / retrying / resident) requests, so
        an idle engine wakes up to cancel on time."""
        if state.resilience is None or not state.deadlines:
            return None
        best: "float | None" = None

        def consider(request: InferenceRequest) -> None:
            nonlocal best
            deadline = state.deadlines.get(request.request_id)
            if deadline is not None and deadline > t_s:
                best = deadline if best is None else min(best, deadline)

        for queues in (prefill_queues, decode_queues):
            for queue in queues.values():
                for request in queue.iter_requests():
                    consider(request)
        for item in state.retry_heap:
            consider(item[2])
        for cb in continuous.values():
            for entry in cb.resident:
                consider(entry.request)
            for entry in cb.preempted:
                consider(entry.request)
        return best

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        requests: "list[InferenceRequest] | tuple[InferenceRequest, ...]",
        *,
        policy: "BatchingPolicy | None" = None,
    ) -> ServingReport:
        """Replay a request trace through the batching layer against a
        single simulated GPU and return the full report."""
        if not requests:
            raise ServeError("simulate needs at least one request")
        for request in requests:
            self._validate_request(request)
        pending = sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        stats_before = self._plan_cache_snapshot()
        batcher = DynamicBatcher(policy or self.policy)
        run_policy = batcher.policy
        prefill_queues = {
            name: RequestQueue(name, self.scheduling) for name in self._models
        }
        decode_queues: dict[str, RequestQueue] = {}
        continuous: dict[str, ContinuousBatcher] = {}
        if self.continuous_batching:
            decode_queues = {
                name: RequestQueue(name, self.scheduling)
                for name in self._models
            }
            for name, entry in self._models.items():
                recompute_cost = None
                if entry.executor is not None:
                    # Preemption cost = the victim's modeled re-prefill
                    # (prompt + progress walked through every layer).
                    def recompute_cost(
                        inflight, _ex=entry.executor, _policy=run_policy
                    ):
                        return _ex.modeled_prefill_s(
                            inflight.request.prompt_len
                            + inflight.completed_steps,
                            _policy,
                        )

                continuous[name] = ContinuousBatcher(
                    run_policy, self.scheduling,
                    recompute_cost=recompute_cost,
                )
        metrics = ServingMetrics(submitted=len(pending))
        state = self._new_run_state(metrics)
        state.continuous = continuous
        executor_entries = sorted(
            name for name, e in self._models.items() if e.executor is not None
        )
        if executor_entries:
            budget = self._model_budget_bytes()
            state.hbm_base_budget = budget
            state.memory = DeviceMemoryModel(
                budget, admission=self.kv_admission
            )
            for name in executor_entries:
                state.memory.add_weights(
                    name, self._models[name].executor.weight_bytes, 0.0
                )
        if state.resilience is not None:
            for request in pending:
                deadline = state.resilience.deadline_s(request)
                if deadline is not None:
                    state.deadlines[request.request_id] = deadline
        tracer = self.tracer
        i, n = 0, len(pending)
        clock_s = 0.0
        gpu_free_s = 0.0

        while True:
            # The GPU can next launch at t; admit everything arrived by
            # then (requests landing during a busy period join the next
            # batch, which is how batches grow under load).
            t = max(clock_s, gpu_free_s)
            # Chaos bookkeeping first: plan-scheduled fail-stops (whose
            # re-shard recovery blocks the GPU), then cancellations,
            # then expired retry backoffs rejoining their queues.
            blocked = self._process_device_failures(t, state)
            if blocked > gpu_free_s:
                gpu_free_s = blocked
                t = max(clock_s, gpu_free_s)
            self._revive_devices(t, state)
            self._cancel_timed_out(
                t, prefill_queues, decode_queues, continuous, state
            )
            self._admit_retries(
                t, prefill_queues, decode_queues, run_policy, state
            )
            while i < n and pending[i].arrival_s <= t:
                request = pending[i]
                i += 1
                decode = self._is_decode(request, run_policy)
                queues = decode_queues if decode else prefill_queues
                target = queues[request.model]
                if state.resilience is not None and state.resilience.shed(
                    request, target.total_rows
                ):
                    self._drop(
                        request, "shed", request.arrival_s, state,
                        queued_rows=target.total_rows,
                    )
                    continue
                target.push(request)
                if tracer is not None:
                    queue_name = "decode" if decode else "prefill"
                    admitted = self._admit_metric_cache.get(queue_name)
                    if admitted is None:
                        admitted = self._bm(
                            "counter", "serve_requests_admitted_total",
                            "admitted requests", ("queue", queue_name),
                        )
                        self._admit_metric_cache[queue_name] = admitted
                    admitted.inc()
                    if tracer.sample():
                        tracer.event(
                            "request.admit",
                            t_s=request.arrival_s,
                            track="queue",
                            keep=True,
                            request_id=request.request_id,
                            model=request.model,
                            queue=queue_name,
                            priority=request.priority,
                            rows=request.rows,
                        )
            drain = i >= n
            # (sort key, kind, model): the most urgent launchable work
            # wins; model name and kind break exact ties.
            candidates: list[tuple[tuple, str, str]] = []
            for name in self._models:
                # A model touching a half-open (breaker-cooldown)
                # device holds its launches until the circuit closes.
                launchable = (
                    not state.breaker_down
                    or self._down_until(self._entry(name, state), t, state)
                    <= t
                )
                queue = prefill_queues[name]
                if launchable and batcher.should_flush(
                    queue, t, drain=drain
                ):
                    candidates.append(
                        (self._queue_key(queue) + (name, 0), "prefill", name)
                    )
                if self.continuous_batching:
                    dq = decode_queues[name]
                    cb = continuous[name]
                    if (
                        launchable
                        and (dq or cb.has_work)
                        and t >= state.holdoff.get(name, 0.0)
                    ):
                        candidates.append(
                            (self._decode_key(dq, cb) + (name, 1),
                             "decode", name)
                        )
            if candidates:
                candidates.sort(key=lambda c: c[0])
                _, kind, name = candidates[0]
                if kind == "prefill":
                    gpu_free_s = self._launch(
                        prefill_queues[name], batcher, t, state
                    )
                elif self._entry(name, state).executor is not None:
                    gpu_free_s = self._launch_model_step(
                        name,
                        decode_queues[name],
                        continuous[name],
                        batcher,
                        t,
                        state,
                    )
                else:
                    gpu_free_s = self._launch_step(
                        name,
                        decode_queues[name],
                        continuous[name],
                        batcher,
                        t,
                        state,
                    )
                clock_s = t
                continue
            # Nothing to launch: advance to the next event — arrival,
            # prefill deadline, retry backoff expiry, decode holdoff
            # expiry, or a pending cancellation deadline.  All candidate
            # times are strictly after t, so the loop always progresses.
            events = []
            if i < n:
                events.append(pending[i].arrival_s)
            for queue in prefill_queues.values():
                deadline = batcher.deadline_s(queue)
                # A due-but-held queue (its model waiting out a
                # half-open breaker) wakes at the circuit-close event
                # instead; a deadline <= t here would stall the clock.
                if deadline is not None and deadline > t:
                    events.append(deadline)
            if state.retry_heap:
                events.append(state.retry_heap[0][0])
            for until in state.breaker_down.values():
                if until > t:
                    events.append(until)
            for name, until in state.holdoff.items():
                if until > t and (
                    decode_queues[name] or continuous[name].has_work
                ):
                    events.append(until)
            timeout_at = self._next_timeout_deadline(
                t, prefill_queues, decode_queues, continuous, state
            )
            if timeout_at is not None:
                events.append(timeout_at)
            if not events:
                break
            clock_s = max(t, min(events))

        if state.injector is not None:
            metrics.launch_faults = state.injector.launch_faults_injected
        if state.resharded:
            # Drop the plans built for the survivors' shard geometry:
            # the next run starts from the registered entries again.
            for cache in self.plan_caches:
                cache.clear()
        metrics.request_records.sort(key=lambda r: r.request.request_id)
        if state.memory is not None:
            # Drain invariant: every KV byte released, ledgers clean.
            state.memory.reconcile()
            metrics.memory = state.memory.summary()
            if self.tracer is not None:
                self.tracer.metrics.gauge(
                    "serve_kv_bytes", "resident KV-cache bytes"
                ).set(0.0)
        metrics.reconcile()
        chaos = self.faults is not None and not self.faults.empty
        return ServingReport(
            metrics=metrics,
            policy=run_policy,
            plan_cache_stats=self._plan_cache_stats_since(stats_before),
            model_names=self.model_names,
            numerics=self.execute_numerics,
            backend=self.backend,
            scheduling=self.scheduling.value,
            continuous=self.continuous_batching,
            devices=self.devices,
            shard=self.shard if self.devices > 1 else None,
            link=self.link.name if self.devices > 1 else None,
            faults=self.faults.describe() if chaos else None,
            resilience=(
                None if self.resilience is None else self.resilience.describe()
            ),
            memory_model=state.memory,
        )

    def _launch(
        self,
        queue: RequestQueue,
        batcher: DynamicBatcher,
        start_s: float,
        state: _RunState,
    ) -> float:
        """Form a dynamic batch from ``queue``, execute it at
        ``start_s``, record per-request and per-batch results, and
        return when the GPU frees up.

        The batch geometry is fixed at the cut: a multi-step request
        charges one modeled launch per step, and the whole batch holds
        the GPU until its longest member finishes (finished requests'
        rows ride along as waste — the cost continuous batching
        removes).

        Under an injected launch fault the attempt still occupies the
        GPU for one modeled step (the fault kills the batch at its
        first step), no request completes, and every member retries
        with backoff or fails terminally."""
        metrics = state.metrics
        entry = self._entry(queue.model, state)
        tr = self.tracer
        if tr is not None:
            tr.advance(start_s)
        # Stack directly at the weights' padded k so execute() consumes
        # the block without another copy.
        batch = batcher.form_batch(
            queue, stack=self.execute_numerics, pad_to_k=entry.handle.k
        )
        modeled_s, per_device, comm, plan, cost = self._modeled_launch(
            entry, batch.padded_rows, state, start_s
        )
        comm_s = 0.0 if comm is None else comm.seconds
        step_s = modeled_s + self.host_overhead_s
        device_ids = self._phys_devices(entry, state)

        fail_device = self._launch_fault(entry, start_s, state)
        if fail_device is not None:
            finished_s = start_s + step_s
            if tr is not None:
                batch_span = tr.add_span(
                    "serve.batch", start_s, finished_s,
                    track="engine", parent=None, kind="prefill",
                    steps=1, failed=True, **batch.trace_attrs(),
                )
                self._trace_launch(
                    tr, batch_span, start_s, 1, modeled_s,
                    per_device, comm, batch.model,
                    device_ids=device_ids, failed=True,
                    rows=batch.padded_rows, gpu=entry.op.gpu.name,
                    cost=cost,
                )
            metrics.add_batch(
                BatchRecord(
                    batch_id=batch.batch_id,
                    model=batch.model,
                    n_requests=batch.n_requests,
                    rows=batch.rows,
                    padded_rows=batch.padded_rows,
                    started_s=start_s,
                    finished_s=finished_s,
                    modeled_gpu_s=modeled_s,
                    per_device_gpu_s=per_device,
                    comm_s=comm_s,
                    failed=True,
                )
            )
            for request in batch.requests:
                self._retry_or_fail(request, finished_s, state)
            blocked = self._note_launch_failed(fail_device, finished_s, state)
            return max(finished_s, blocked)

        self._note_launch_ok(entry, state)
        max_steps = max(request.steps for request in batch.requests)
        finished_s = start_s + max_steps * step_s

        outputs: "list[np.ndarray] | None" = None
        if self.execute_numerics:
            outputs = self._execute_batch(entry, batch, plan)

        if tr is not None:
            keep = tr.sample()
            batch_span = tr.add_span(
                "serve.batch", start_s, finished_s,
                track="engine", parent=None, keep=True, kind="prefill",
                steps=max_steps, **batch.trace_attrs(),
            ) if keep else tr.add_span(
                # Dropped trace: record nothing, still advance the clock.
                "serve.batch", start_s, finished_s, parent=None, keep=False,
            )
            for request in batch.requests:
                self._trace_queue_wait(
                    tr, request, start_s, "prefill", keep=keep,
                    finished_s=start_s + request.steps * step_s,
                )
            self._trace_launch(
                tr, batch_span, start_s, max_steps, modeled_s,
                per_device, comm, batch.model, device_ids=device_ids,
                rows=batch.padded_rows, gpu=entry.op.gpu.name, cost=cost,
            )

        for idx, request in enumerate(batch.requests):
            metrics.add_request(
                RequestRecord(
                    request=request,
                    batch_id=batch.batch_id,
                    started_s=start_s,
                    finished_s=start_s + request.steps * step_s,
                    output=None if outputs is None else outputs[idx],
                    retries=state.attempts.get(request.request_id, 0),
                )
            )
        metrics.add_batch(
            BatchRecord(
                batch_id=batch.batch_id,
                model=batch.model,
                n_requests=batch.n_requests,
                rows=batch.rows,
                padded_rows=batch.padded_rows,
                started_s=start_s,
                finished_s=finished_s,
                modeled_gpu_s=max_steps * modeled_s,
                per_device_gpu_s=tuple(
                    max_steps * seconds for seconds in per_device
                ),
                comm_s=max_steps * comm_s,
            )
        )
        return finished_s

    def _launch_step(
        self,
        name: str,
        queue: RequestQueue,
        cb: ContinuousBatcher,
        batcher: DynamicBatcher,
        start_s: float,
        state: _RunState,
    ) -> float:
        """Run one continuous-batching engine step for ``name`` at
        ``start_s``: refill the rolling batch, execute the resident
        rows, evict finished sequences, and return when the GPU frees
        up.

        Under an injected launch fault no sequence advances (the GPU
        time is still spent): retry-exhausted residents are evicted
        and failed, the survivors stay resident, and the model backs
        off (``holdoff``) before its next step."""
        metrics = state.metrics
        entry = self._entry(name, state)
        tr = self.tracer
        if tr is not None:
            tr.advance(start_s)
        joined, preempted = cb.refill(queue, start_s)
        batch = cb.form_step(
            batcher.allocate_batch_id(),
            stack=self.execute_numerics,
            pad_to_k=entry.handle.k,
        )
        modeled_gpu_s, per_device, comm, plan, cost = self._modeled_launch(
            entry, batch.padded_rows, state, start_s
        )
        comm_s = 0.0 if comm is None else comm.seconds
        finished_s = start_s + modeled_gpu_s + self.host_overhead_s
        device_ids = self._phys_devices(entry, state)

        fail_device = self._launch_fault(entry, start_s, state)
        if fail_device is not None:
            return self._failed_step(
                name, cb, batch, start_s, finished_s, modeled_gpu_s,
                per_device, comm, comm_s, joined, preempted,
                fail_device, device_ids, state, cost=cost,
                gpu=entry.op.gpu.name,
            )
        self._note_launch_ok(entry, state)
        state.cb_streak[name] = 0

        outputs: "list[np.ndarray] | None" = None
        if self.execute_numerics:
            outputs = self._execute_batch(entry, batch, plan)

        finished_entries = cb.advance()
        if tr is not None:
            keep = tr.sample()
            if keep:
                step_span = tr.add_span(
                    "serve.step", start_s, finished_s,
                    track="engine", parent=None, keep=True, kind="decode",
                    joined=joined, evicted=len(finished_entries),
                    preempted=preempted, **batch.trace_attrs(),
                )
                if joined:
                    tr.event(
                        "cb.join", t_s=start_s, track="engine",
                        keep=True, model=name, count=joined,
                    )
                if preempted:
                    tr.event(
                        "cb.preempt", t_s=start_s, track="engine",
                        keep=True, model=name, count=preempted,
                    )
                if finished_entries:
                    tr.event(
                        "cb.evict", t_s=finished_s, track="engine",
                        keep=True, model=name, count=len(finished_entries),
                    )
            else:
                step_span = tr.add_span(
                    "serve.step", start_s, finished_s, parent=None,
                    keep=False,
                )
            for _, inflight in finished_entries:
                self._trace_queue_wait(
                    tr, inflight.request, inflight.joined_s, "decode",
                    keep=keep, finished_s=finished_s,
                )
            self._trace_launch(
                tr, step_span, start_s, 1, modeled_gpu_s,
                per_device, comm, name, device_ids=device_ids,
                rows=batch.padded_rows, gpu=entry.op.gpu.name, cost=cost,
            )
        for idx, inflight in finished_entries:
            metrics.add_request(
                RequestRecord(
                    request=inflight.request,
                    batch_id=batch.batch_id,
                    started_s=inflight.joined_s,
                    finished_s=finished_s,
                    output=None if outputs is None else outputs[idx],
                    retries=state.attempts.get(
                        inflight.request.request_id, 0
                    ),
                )
            )
        metrics.add_step(
            StepRecord(
                step_id=batch.batch_id,
                model=name,
                n_resident=batch.n_requests,
                rows=batch.rows,
                padded_rows=batch.padded_rows,
                joined=joined,
                evicted=len(finished_entries),
                preempted=preempted,
                started_s=start_s,
                finished_s=finished_s,
                modeled_gpu_s=modeled_gpu_s,
                per_device_gpu_s=per_device,
                comm_s=comm_s,
            )
        )
        return finished_s

    def _failed_step(
        self,
        name: str,
        cb: ContinuousBatcher,
        batch,
        start_s: float,
        finished_s: float,
        modeled_gpu_s: float,
        per_device: "tuple[float, ...]",
        comm: "CommEvent | None",
        comm_s: float,
        joined: int,
        preempted: int,
        fail_device: int,
        device_ids: tuple,
        state: _RunState,
        cost: "tuple[int, int, int] | None" = None,
        gpu: "str | None" = None,
    ) -> float:
        """Account one continuous step that suffered a launch fault:
        GPU time spent, no sequence advanced.  Every resident sequence
        burns one attempt; the retry-exhausted ones are evicted (their
        rows free immediately) and failed, the rest stay resident for
        the next step after the model's backoff holdoff."""
        metrics = state.metrics
        tr = self.tracer
        res = state.resilience
        dropped_ids: set[int] = set()
        for inflight in cb.resident:
            request = inflight.request
            attempts = state.attempts.get(request.request_id, 0) + 1
            state.attempts[request.request_id] = attempts
            if res is None or attempts > res.max_retries:
                state.attempts[request.request_id] = attempts - 1
                dropped_ids.add(request.request_id)
                self._drop(
                    request, "failed", finished_s, state, attempts=attempts
                )
        if dropped_ids:
            cb.cancel_where(lambda r: r.request_id in dropped_ids)
        if res is not None:
            streak = state.cb_streak.get(name, 0) + 1
            state.cb_streak[name] = streak
            u = float(state.rng.random())
            state.holdoff[name] = finished_s + res.backoff_s(
                min(streak, 6), u
            )
        if tr is not None:
            step_span = tr.add_span(
                "serve.step", start_s, finished_s,
                track="engine", parent=None, kind="decode",
                joined=joined, evicted=len(dropped_ids),
                preempted=preempted, failed=True, **batch.trace_attrs(),
            )
            if dropped_ids:
                tr.event(
                    "cb.evict", t_s=finished_s, track="engine",
                    model=name, count=len(dropped_ids), reason="failed",
                )
            if res is not None and cb.has_work:
                tr.event(
                    "retry.attempt", t_s=finished_s, track="engine",
                    model=name, count=len(cb.resident),
                    attempt=state.cb_streak.get(name, 0),
                )
                tr.metrics.counter(
                    "serve_retries_total", "launch-failure retries"
                ).inc(model=name)
            self._trace_launch(
                tr, step_span, start_s, 1, modeled_gpu_s,
                per_device, comm, name, device_ids=device_ids, failed=True,
                rows=batch.padded_rows, gpu=gpu, cost=cost,
            )
        metrics.add_step(
            StepRecord(
                step_id=batch.batch_id,
                model=name,
                n_resident=batch.n_requests,
                rows=batch.rows,
                padded_rows=batch.padded_rows,
                joined=joined,
                evicted=len(dropped_ids),
                preempted=preempted,
                started_s=start_s,
                finished_s=finished_s,
                modeled_gpu_s=modeled_gpu_s,
                per_device_gpu_s=per_device,
                comm_s=comm_s,
                failed=True,
            )
        )
        blocked = self._note_launch_failed(fail_device, finished_s, state)
        return max(finished_s, blocked)

    # ------------------------------------------------------------------
    # Model-mode serving (ModelExecutor entries)
    # ------------------------------------------------------------------
    def _modeled_model_walk(
        self,
        entry: ModelEntry,
        padded_rows: int,
        state: _RunState,
        t_s: float,
    ) -> "tuple[float, tuple, tuple[float, ...], float]":
        """One walk of the whole layer stack at ``padded_rows`` rows:
        ``(total_s, layer_spans, per_device_s, comm_s)``, where
        ``layer_spans`` is ``(layer_name, start_offset, seconds,
        cost)`` per layer in walk order — layers execute back-to-back,
        so the walk's modeled time is their plain sum (each
        distributed layer's seconds already includes its collective).
        ``cost`` is the layer launch's ``(flops, ldg_bytes,
        stg_bytes)`` for the per-layer ``gpu.launch`` span attrs."""
        total = 0.0
        comm_total = 0.0
        per_device: "list[float] | None" = None
        spans = []
        for sub in entry.layers:
            seconds, pd, comm, _, cost = self._modeled_launch(
                sub, padded_rows, state, t_s
            )
            spans.append((sub.name, total, seconds, cost))
            total += seconds
            if comm is not None:
                comm_total += comm.seconds
            if pd:
                if per_device is None:
                    per_device = list(pd)
                else:
                    per_device = [a + b for a, b in zip(per_device, pd, strict=True)]
        return total, tuple(spans), tuple(per_device or ()), comm_total

    def _drop_hopeless_model_work(
        self,
        name: str,
        queue: RequestQueue,
        cb: ContinuousBatcher,
        mem: DeviceMemoryModel,
        bpt: int,
        t_s: float,
        state: _RunState,
    ) -> None:
        """After a budget shrink, drop every sequence of ``name`` that
        can never fit even with all KV drained — queued as ``shed``,
        mid-flight as ``failed`` — so the event loop cannot stall on
        permanently inadmissible work."""

        def hopeless(request: InferenceRequest) -> bool:
            lifetime = (request.prompt_len + request.max_new_tokens) * bpt
            return mem.weight_bytes + lifetime > mem.budget_bytes

        for request in queue.remove_where(hopeless):
            self._drop(request, "shed", t_s, state, reason="kv-overflow")
        doomed = [e for e in cb.preempted if hopeless(e.request)]
        if doomed:
            ids = {e.request.request_id for e in doomed}
            cb.cancel_where(lambda r: r.request_id in ids)
            state.metrics.cancelled_evictions += len(doomed)
            for inflight in doomed:
                self._drop(
                    inflight.request, "failed", t_s, state,
                    reason="kv-overflow",
                )

    def _launch_model_step(
        self,
        name: str,
        queue: RequestQueue,
        cb: ContinuousBatcher,
        batcher: DynamicBatcher,
        start_s: float,
        state: _RunState,
    ) -> float:
        """Run one model-mode engine step for ``name`` at ``start_s``.

        Order of operations, all on the simulated clock:

        1. refill the rolling batch behind the KV admission gate
           (``kv-aware`` only) and release the KV of anything the
           refill preempted;
        2. reserve KV for residents that need (re)prefill;
        3. memory-pressure eviction: while the coming growth (one
           token per resident) would overflow the budget, preempt the
           victim with the lowest priority and cheapest modeled
           re-prefill — resident bytes never exceed the budget;
        4. charge modeled time: one gather-GEMM launch per layer for
           each (re)prefill at the sequence's token count, plus one
           per-layer decode walk of the whole batch, plus — under the
           ``none`` baseline — host-link thrash for the overflow;
        5. advance: finished sequences release their KV, survivors
           grow by one token.
        """
        metrics = state.metrics
        entry = self._entry(name, state)
        ex = entry.executor
        mem = state.memory
        tr = self.tracer
        if tr is not None:
            tr.advance(start_s)
        bpt = ex.kv_bytes_per_token
        run_policy = cb.policy

        gate = None
        if mem.enforce:
            pending = 0

            def gate(request: InferenceRequest, completed: int) -> bool:
                nonlocal pending
                # Admit on the bytes reserved now plus one step of
                # growth headroom; lifetime feasibility was proven at
                # submit against the full budget.
                need = (request.prompt_len + completed + 1) * bpt
                if not mem.fits(pending + need):
                    return False
                pending += need
                return True

        joined, preempted = cb.refill(queue, start_s, gate=gate)
        # Refill preemption displaces victims out of the batch; their
        # KV frees immediately (they re-prefill on rejoin).
        for waiting in cb.preempted:
            mem.release_kv(waiting.request.request_id, start_s)

        if not cb.resident and (queue or cb.preempted):
            # Every waiter is memory-blocked with nothing resident to
            # drain.  Anything that cannot fit even alone (possible
            # only after a fail-stop shrank the budget) is dropped;
            # the rest waits out other models' KV via a short holdoff
            # so the event loop keeps advancing.
            if mem.enforce:
                self._drop_hopeless_model_work(
                    name, queue, cb, mem, bpt, start_s, state
                )
                joined2, preempted2 = cb.refill(queue, start_s, gate=gate)
                joined += joined2
                preempted += preempted2
                for waiting in cb.preempted:
                    mem.release_kv(waiting.request.request_id, start_s)
            if not cb.resident:
                if queue or cb.has_work:
                    state.holdoff[name] = start_s + max(
                        self.host_overhead_s, 1e-6
                    )
                return start_s

        # (2) KV reservation for fresh joins and post-eviction rejoins.
        for inflight in cb.resident:
            if inflight.needs_prefill:
                request = inflight.request
                if request.request_id not in mem.kv:
                    mem.reserve_kv(
                        request.request_id,
                        (request.prompt_len + inflight.completed_steps)
                        * bpt,
                        start_s,
                    )

        # (3) Memory-pressure eviction ahead of this step's growth.
        kv_evicted = 0
        if mem.enforce:
            growth = len(cb.resident) * bpt
            while mem.resident_bytes + growth > mem.budget_bytes:
                if len(cb.resident) > 1:
                    victim = min(
                        enumerate(cb.resident),
                        key=lambda item: (
                            item[1].request.priority,
                            cb.recompute_cost(item[1]),
                            -item[0],
                        ),
                    )[1]
                    cb.preempt_entries([victim])
                    mem.release_kv(victim.request.request_id, start_s)
                    mem.kv_evictions += 1
                    kv_evicted += 1
                    if tr is not None:
                        tr.event(
                            "kv.evict", t_s=start_s, track="engine",
                            model=name,
                            request_id=victim.request.request_id,
                            reason="memory-pressure",
                        )
                        tr.metrics.counter(
                            "serve_kv_evictions_total",
                            "memory-pressure evictions",
                        ).inc(model=name, reason="memory-pressure")
                else:
                    # A lone resident that can no longer grow — only
                    # possible after a budget shrink (admission proved
                    # lifetime fit at the base budget).
                    lone = cb.resident[0]
                    cb.cancel_where(
                        lambda r: r.request_id == lone.request.request_id
                    )
                    metrics.cancelled_evictions += 1
                    mem.release_kv(lone.request.request_id, start_s)
                    self._drop(
                        lone.request, "failed", start_s, state,
                        reason="kv-overflow",
                    )
                growth -= bpt
            if not cb.resident:
                if queue or cb.has_work:
                    state.holdoff[name] = start_s + max(
                        self.host_overhead_s, 1e-6
                    )
                return start_s

        # (4) Modeled time: per-sequence (re)prefills, then one decode
        # walk of the whole rolling batch.
        prefills = []  # (inflight, tokens, seconds, layer_spans)
        prefill_s = 0.0
        comm_s = 0.0
        per_device: "list[float] | None" = None

        def merge_pd(pd) -> None:
            nonlocal per_device
            if pd:
                if per_device is None:
                    per_device = list(pd)
                else:
                    per_device = [a + b for a, b in zip(per_device, pd, strict=True)]

        for inflight in cb.resident:
            if not inflight.needs_prefill:
                continue
            request = inflight.request
            tokens = request.prompt_len + inflight.completed_steps
            seconds, spans, pd, comm = self._modeled_model_walk(
                entry, run_policy.bucket_rows(tokens), state, start_s
            )
            prefills.append((inflight, tokens, seconds, spans))
            prefill_s += seconds
            comm_s += comm
            merge_pd(pd)
            inflight.needs_prefill = False

        batch = cb.form_step(
            batcher.allocate_batch_id(), stack=False,
            pad_to_k=entry.handle.k,
        )
        decode_s, decode_spans, decode_pd, decode_comm = (
            self._modeled_model_walk(
                entry, batch.padded_rows, state, start_s
            )
        )
        comm_s += decode_comm
        merge_pd(decode_pd)

        thrash_s = 0.0
        if not mem.enforce:
            projected = mem.resident_bytes + len(cb.resident) * bpt
            overflow = projected - mem.budget_bytes
            if overflow > 0:
                # No memory model: the overflow spills to host memory
                # and reloads over the host link every step it stays
                # oversubscribed.
                thrash_s = overflow / self.host_link_bytes_per_s
                mem.overflow_steps += 1

        modeled_gpu_s = prefill_s + decode_s + thrash_s
        finished_s = start_s + modeled_gpu_s + self.host_overhead_s
        per_device_t = tuple(per_device or ())
        device_ids = self._phys_devices(entry, state)

        fail_device = self._launch_fault(entry, start_s, state)
        if fail_device is not None:
            walk_costs = [
                cost
                for _, _, _, layer_spans in prefills
                for _, _, _, cost in layer_spans
            ] + [cost for _, _, _, cost in decode_spans]
            step_cost = (
                sum(c[0] for c in walk_costs),
                sum(c[1] for c in walk_costs),
                sum(c[2] for c in walk_costs),
            )
            before_ids = {e.request.request_id for e in cb.resident}
            result = self._failed_step(
                name, cb, batch, start_s, finished_s, modeled_gpu_s,
                per_device_t, None, comm_s, joined, preempted,
                fail_device, device_ids, state, cost=step_cost,
                gpu=entry.op.gpu.name,
            )
            # The failed launch advanced nothing: sequences dropped by
            # retry exhaustion (or evicted by a death re-shard inside
            # _note_launch_failed) free their KV, and survivors that
            # were prefilling this step still need their prefill.
            survivor_ids = {e.request.request_id for e in cb.resident}
            for rid in sorted(before_ids - survivor_ids):
                mem.release_kv(rid, finished_s)
            for inflight, _, _, _ in prefills:
                if inflight.request.request_id in survivor_ids:
                    inflight.needs_prefill = True
            if tr is not None:
                tr.metrics.gauge(
                    "serve_kv_bytes", "resident KV-cache bytes"
                ).set(float(mem.kv_bytes), model=name)
            return result

        self._note_launch_ok(entry, state)
        state.cb_streak[name] = 0

        # (5) Advance: finished sequences leave (KV freed at step
        # end), survivors' KV grows by the token they just decoded.
        finished_entries = cb.advance()
        for _, inflight in finished_entries:
            mem.release_kv(inflight.request.request_id, finished_s)
        for inflight in cb.resident:
            mem.grow_kv(inflight.request.request_id, bpt, finished_s)

        if tr is not None:
            keep = tr.sample()
            if keep:
                step_span = tr.add_span(
                    "serve.step", start_s, finished_s,
                    track="engine", parent=None, keep=True, kind="model",
                    joined=joined, evicted=len(finished_entries),
                    preempted=preempted, kv_evicted=kv_evicted,
                    **batch.trace_attrs(),
                )
                gpu_name = entry.op.gpu.name
                offset = start_s
                for inflight, tokens, seconds, spans in prefills:
                    span = tr.add_span(
                        "model.prefill", offset, offset + seconds,
                        track="gpu", parent=step_span, model=name,
                        request_id=inflight.request.request_id,
                        tokens=tokens,
                    )
                    prefill_rows = run_policy.bucket_rows(tokens)
                    for layer_name, layer_off, layer_s, cost in spans:
                        tr.add_span(
                            "gpu.launch",
                            offset + layer_off,
                            offset + layer_off + layer_s,
                            track="gpu", parent=span, model=name,
                            layer=layer_name, rows=prefill_rows,
                            gpu=gpu_name, flops=cost[0],
                            ldg_bytes=cost[1], stg_bytes=cost[2],
                        )
                    offset += seconds
                span = tr.add_span(
                    "model.decode_step", offset, offset + decode_s,
                    track="gpu", parent=step_span, model=name,
                    rows=batch.rows,
                )
                for layer_name, layer_off, layer_s, cost in decode_spans:
                    tr.add_span(
                        "gpu.launch",
                        offset + layer_off,
                        offset + layer_off + layer_s,
                        track="gpu", parent=span, model=name,
                        layer=layer_name, rows=batch.padded_rows,
                        gpu=gpu_name, flops=cost[0],
                        ldg_bytes=cost[1], stg_bytes=cost[2],
                    )
                offset += decode_s
                if thrash_s > 0:
                    tr.add_span(
                        "kv.thrash", offset, offset + thrash_s,
                        track="gpu", parent=step_span, model=name,
                        overflow_bytes=mem.overflow_bytes,
                    )
                if joined:
                    tr.event(
                        "cb.join", t_s=start_s, track="engine",
                        keep=True, model=name, count=joined,
                    )
                if preempted:
                    tr.event(
                        "cb.preempt", t_s=start_s, track="engine",
                        keep=True, model=name, count=preempted,
                    )
                if finished_entries:
                    tr.event(
                        "cb.evict", t_s=finished_s, track="engine",
                        keep=True, model=name, count=len(finished_entries),
                    )
            else:
                tr.add_span(
                    # Dropped trace: nothing recorded, clock still moves.
                    "serve.step", start_s, finished_s, parent=None,
                    keep=False,
                )
            for _, inflight in finished_entries:
                self._trace_queue_wait(
                    tr, inflight.request, inflight.joined_s, "decode",
                    keep=keep, finished_s=finished_s,
                )
            handles = self._launch_metric_cache.get(name)
            if handles is None:
                handles = (
                    self._bm(
                        "counter", "serve_launches_total",
                        "batch/step launches", ("model", name),
                    ),
                    self._bm(
                        "histogram", "serve_launch_seconds",
                        "modeled GPU seconds per launch", ("model", name),
                    ),
                )
                self._launch_metric_cache[name] = handles
            handles[0].inc()
            handles[1].observe(modeled_gpu_s)
            kv_gauge = self._kv_gauge_cache.get(name)
            if kv_gauge is None:
                kv_gauge = self._bm(
                    "gauge", "serve_kv_bytes", "resident KV-cache bytes",
                    ("model", name),
                )
                self._kv_gauge_cache[name] = kv_gauge
            kv_gauge.set(float(mem.kv_bytes))

        for _, inflight in finished_entries:
            metrics.add_request(
                RequestRecord(
                    request=inflight.request,
                    batch_id=batch.batch_id,
                    started_s=inflight.joined_s,
                    finished_s=finished_s,
                    output=None,
                    retries=state.attempts.get(
                        inflight.request.request_id, 0
                    ),
                )
            )
        metrics.add_step(
            StepRecord(
                step_id=batch.batch_id,
                model=name,
                n_resident=batch.n_requests,
                rows=batch.rows,
                padded_rows=batch.padded_rows,
                joined=joined,
                evicted=len(finished_entries),
                preempted=preempted,
                started_s=start_s,
                finished_s=finished_s,
                modeled_gpu_s=modeled_gpu_s,
                per_device_gpu_s=per_device_t,
                comm_s=comm_s,
                prefill_s=prefill_s,
                thrash_s=thrash_s,
                kv_evicted=kv_evicted,
                kv_bytes=mem.kv_bytes,
            )
        )
        return finished_s
