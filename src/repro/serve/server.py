"""The serving engine: model registry + discrete-event simulation.

:class:`InferenceServer` owns the registered models (each an
:class:`~repro.core.api.NMSpMM` operator plus its prepared
:class:`~repro.core.api.SparseHandle`), per-device plan caches, and a
simulated GPU — or, with ``devices > 1``, a simulated multi-GPU
:class:`~repro.distributed.topology.DeviceGroup` that every model's
weights are sharded tensor-parallel across at registration.
``simulate`` replays a seeded request trace through the batching layer
with a discrete-event loop:

* requests are admitted to their model's queue at arrival time — to
  the *decode* queue (rolling continuous batch) when continuous
  batching is enabled and the request is decode-shaped, else to the
  *prefill* queue (cut-and-wait dynamic batcher);
* whenever the GPU is free, the most urgent launchable work runs: a
  prefill queue that fills a batch budget, blows its max-wait deadline,
  or sits nonempty after the arrival stream has drained — or a
  continuous step whenever decode work is resident or waiting.
  Urgency follows the :class:`~repro.serve.scheduling.SchedulingPolicy`
  (arrival order, strict priority, or priority + earliest deadline);
* a launch's service time is the perf model's prediction for the
  padded batch shape (plus a fixed host overhead), so the latency
  curves reflect the paper's modeled GPU timing while the numerics run
  through the real NumPy kernels.  A multi-step (decode-sequence)
  request charges one modeled launch per step: the dynamic path holds
  the whole batch until its longest member finishes, while the
  continuous path re-forms the rolling batch between steps.

Everything advances on the simulated clock — two runs of the same trace
produce identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.registry import backend_names
from repro.core.api import NMSpMM, SparseHandle
from repro.distributed.shard import SHARD_MODES, ShardedHandle, shard_handle
from repro.distributed.sharded import sharded_execute
from repro.distributed.topology import CommEvent, DeviceGroup, Link, get_link
from repro.errors import ServeError
from repro.obs.tracer import Tracer
from repro.gpu.spec import GPUSpec
from repro.serve.batcher import BatchingPolicy, ContinuousBatcher, DynamicBatcher
from repro.serve.cache import PlanCache
from repro.serve.metrics import BatchRecord, ServingMetrics, StepRecord
from repro.serve.queue import RequestQueue
from repro.serve.request import InferenceRequest, RequestRecord
from repro.serve.scheduling import SchedulingPolicy, request_order_key
from repro.sparsity.config import NMPattern

__all__ = ["ModelEntry", "ServingReport", "InferenceServer"]

#: Fixed host-side cost charged per batch launch (scheduling, argument
#: marshalling) on top of the modeled GPU time.
DEFAULT_HOST_OVERHEAD_S = 10e-6


@dataclass(frozen=True)
class ModelEntry:
    """One registered weight matrix and its operator.

    On a distributed server (``devices > 1``) the entry additionally
    carries the tensor-parallel partition of its weights and the device
    group they execute on; single-device entries leave both ``None``.
    """

    name: str
    op: NMSpMM
    handle: SparseHandle
    sharded: "ShardedHandle | None" = None
    group: "DeviceGroup | None" = None

    @property
    def k(self) -> int:
        """Activation width requests must have (the weights' logical
        k; compression padding is internal to execute)."""
        return self.handle.k_logical

    @property
    def n(self) -> int:
        """Output width requests receive (the weights' logical n)."""
        return self.handle.n_logical

    @property
    def distributed(self) -> bool:
        return self.sharded is not None

    def describe(self) -> str:
        text = (
            f"{self.name}: {self.op.pattern.label()} "
            f"k={self.k} n={self.n} gpu={self.op.gpu.name} "
            f"{self.op.version.value}"
        )
        if self.distributed:
            text += (
                f" [{self.sharded.mode}-parallel x"
                f"{self.sharded.devices} over {self.group.link.name}]"
            )
        return text


@dataclass
class ServingReport:
    """Everything one simulated run produced."""

    metrics: ServingMetrics
    policy: BatchingPolicy
    plan_cache_stats: dict
    model_names: list[str]
    numerics: bool
    backend: str = "auto"
    scheduling: str = SchedulingPolicy.FIFO.value
    continuous: bool = False
    devices: int = 1
    shard: "str | None" = None
    link: "str | None" = None

    @property
    def request_records(self) -> list[RequestRecord]:
        return self.metrics.request_records

    def record_for(self, request_id: int) -> RequestRecord:
        for record in self.metrics.request_records:
            if record.request.request_id == request_id:
                return record
        raise ServeError(f"no record for request {request_id}")

    def summary(self, extra: "dict | None" = None) -> dict:
        out = self.metrics.summary(
            {
                "models": self.model_names,
                "numerics": self.numerics,
                "backend": self.backend,
                "plan_cache": self.plan_cache_stats,
                "policy": {
                    "scheduling": self.scheduling,
                    "continuous_batching": self.continuous,
                    "max_batch_requests": self.policy.max_batch_requests,
                    "max_batch_rows": self.policy.max_batch_rows,
                    "max_wait_ms": self.policy.max_wait_s * 1e3,
                    "pad_rows_quantum": self.policy.pad_rows_quantum,
                    "pow2_rows": self.policy.pow2_rows,
                    "decode_rows_threshold": self.policy.decode_rows_threshold,
                },
            }
        )
        if self.devices > 1:
            out["topology"] = {
                "devices": self.devices,
                "shard": self.shard,
                "link": self.link,
            }
        if extra:
            out.update(extra)
        return out

    def render(self, title: str = "serve-sim") -> str:
        text = self.metrics.render(title=title)
        cache = self.plan_cache_stats
        text += (
            f"\nplan cache: {cache['hits']} hits / {cache['misses']} misses "
            f"({cache['hit_rate'] * 100:.1f}% hit rate, "
            f"{cache['evictions']} evictions)"
        )
        text += f"\nscheduling: {self.scheduling}"
        if self.continuous:
            text += (
                " + continuous batching (decode rows <= "
                f"{self.policy.decode_rows_threshold})"
            )
        if self.devices > 1:
            text += (
                f"\ntopology: {self.devices} devices, "
                f"{self.shard}-parallel over {self.link}"
            )
        text += f"\nmodels: {', '.join(self.model_names)}"
        return text


class InferenceServer:
    """Single-process serving runtime over NM-SpMM operators.

    Parameters
    ----------
    policy:
        Default batching policy (overridable per ``simulate`` call).
    plan_cache_capacity:
        Entries in the shared plan LRU (keyed by model, padded row
        count, GPU, and optimization version — see
        :class:`~repro.serve.cache.PlanCache`).
    execute_numerics:
        When True each batch also runs through the NumPy kernels and
        every request record carries its output slice; when False only
        the modeled timing is produced (pure scheduling study).
    host_overhead_s:
        Fixed per-launch host cost added to the modeled GPU time.
    backend:
        Kernel backend every batch executes with — any name the
        backend registry (:mod:`repro.backends`) knows, validated here
        so misconfiguration fails at construction rather than on the
        first batch.  The default ``"auto"`` lets the cost-aware
        selector choose per model handle (gather-GEMM for healthy
        vector lengths, scatter-to-dense below the efficiency
        crossover); the server only needs numerics and modeled timing,
        never recorded traces, so auto never lands on the structural
        executors.
    scheduling:
        Queue-order and queue-selection policy: ``"fifo"`` (arrival
        order), ``"priority"`` (strict tiers), or ``"slo-edf"``
        (strict tiers + earliest deadline first within a tier).
    continuous_batching:
        Route decode-shaped requests (rows <= the policy's
        ``decode_rows_threshold``) to a rolling in-flight batch that
        refills every engine step instead of waiting for a fresh cut.
    devices:
        Simulated device count.  ``1`` (the default) is the
        single-GPU server; ``> 1`` shards every registered model's
        weights tensor-parallel across a
        :class:`~repro.distributed.topology.DeviceGroup` built from the
        model's own GPU spec — each device gets its own plan cache, a
        launch's modeled time is the slowest device plus the mode's
        ring collective, and numerics (when enabled) run the real
        per-device gather-GEMM kernels.  Distributed numerics always
        take the sharded path; ``backend`` applies to single-device
        entries only.
    shard:
        Tensor-parallel mode for ``devices > 1``: ``"column"`` (shard
        n, all-gather outputs) or ``"row"`` (shard k, all-reduce
        partials).
    link:
        Interconnect of the simulated group — a name from
        :data:`~repro.distributed.topology.LINKS` or an explicit
        :class:`~repro.distributed.topology.Link`.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When set, every
        simulated run records spans on the simulated clock — request
        admission and queue waits, batch/step launches with nested
        per-device compute and ring-collective children, plan-cache
        hits/misses, continuous-batching join/evict/preempt — plus the
        matching counters/histograms in ``tracer.metrics``.  ``None``
        (the default) keeps serving observation-free; the only cost of
        the disabled path is a ``None`` check per instrumentation
        site.
    """

    def __init__(
        self,
        *,
        policy: "BatchingPolicy | None" = None,
        plan_cache_capacity: int = 64,
        execute_numerics: bool = True,
        host_overhead_s: float = DEFAULT_HOST_OVERHEAD_S,
        backend: str = "auto",
        scheduling: "str | SchedulingPolicy" = SchedulingPolicy.FIFO,
        continuous_batching: bool = False,
        devices: int = 1,
        shard: str = "column",
        link: "str | Link" = "nvlink",
        tracer: "Tracer | None" = None,
    ):
        if host_overhead_s < 0:
            raise ServeError(
                f"host_overhead_s must be >= 0, got {host_overhead_s}"
            )
        if backend not in backend_names():
            raise ServeError(
                f"unknown backend {backend!r}; expected one of "
                f"{backend_names()}"
            )
        if devices < 1:
            raise ServeError(f"devices must be >= 1, got {devices}")
        if shard not in SHARD_MODES:
            raise ServeError(
                f"unknown shard mode {shard!r}; expected one of "
                f"{SHARD_MODES}"
            )
        self.policy = policy or BatchingPolicy()
        #: One plan cache per simulated device (a shard's launch
        #: geometry differs per device when windows divide unevenly, so
        #: sharing one LRU would let devices evict each other's plans).
        self.plan_caches: tuple[PlanCache, ...] = tuple(
            PlanCache(capacity=plan_cache_capacity) for _ in range(devices)
        )
        self.plan_cache = self.plan_caches[0]
        self.execute_numerics = execute_numerics
        self.host_overhead_s = host_overhead_s
        self.backend = backend
        self.scheduling = SchedulingPolicy.parse(scheduling)
        self.continuous_batching = continuous_batching
        self.devices = devices
        self.shard = shard
        self.link = get_link(link)
        self.tracer = tracer
        self._models: dict[str, ModelEntry] = {}
        self._inbox: list[InferenceRequest] = []

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register_model(
        self,
        name: str,
        weights: np.ndarray,
        pattern: NMPattern,
        *,
        gpu: "str | GPUSpec" = "A100",
        version: str = "V3",
        already_pruned: bool = False,
    ) -> ModelEntry:
        """Prepare ``weights`` (the offline phase) and register the
        handle under ``name``."""
        op = NMSpMM(pattern, gpu=gpu, version=version)
        handle = op.prepare(weights, already_pruned=already_pruned)
        return self.register_handle(name, op, handle)

    def register_handle(
        self, name: str, op: NMSpMM, handle: SparseHandle
    ) -> ModelEntry:
        """Register an already-prepared handle under ``name``.  On a
        distributed server this is where the offline phase pays the
        tensor-parallel partition (plus the per-shard gather layouts),
        so serving steps only execute and communicate."""
        if not name:
            raise ServeError("model name must be nonempty")
        if name in self._models:
            raise ServeError(f"model {name!r} is already registered")
        sharded = None
        group = None
        if self.devices > 1:
            sharded = shard_handle(handle, self.devices, self.shard)
            group = DeviceGroup(
                gpu=op.gpu, devices=self.devices, link=self.link
            )
        entry = ModelEntry(
            name=name, op=op, handle=handle, sharded=sharded, group=group
        )
        self._models[name] = entry
        return entry

    @property
    def model_names(self) -> list[str]:
        return sorted(self._models)

    def model(self, name: str) -> ModelEntry:
        try:
            return self._models[name]
        except KeyError:
            raise ServeError(
                f"unknown model {name!r}; registered: {self.model_names}"
            ) from None

    # ------------------------------------------------------------------
    # Request intake
    # ------------------------------------------------------------------
    def submit(self, request: InferenceRequest) -> None:
        """Queue a request for the next :meth:`run_submitted` call."""
        self._validate_request(request)
        self._inbox.append(request)

    def run_submitted(
        self, *, policy: "BatchingPolicy | None" = None
    ) -> ServingReport:
        """Simulate everything submitted so far and clear the inbox."""
        requests, self._inbox = self._inbox, []
        return self.simulate(requests, policy=policy)

    def _validate_request(self, request: InferenceRequest) -> None:
        entry = self.model(request.model)
        if request.k != entry.k:
            raise ServeError(
                f"request {request.request_id} has k={request.k} but model "
                f"{request.model!r} expects k={entry.k}"
            )
        if self.execute_numerics and request.a is None:
            raise ServeError(
                f"request {request.request_id} is metadata-only but the "
                "server executes numerics; generate the trace with "
                "synthesize_activations=True or disable numerics"
            )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _queue_key(self, queue: RequestQueue) -> tuple:
        """Ascending urgency of a prefill flush: the order key of the
        exact request the queue would serve next, so queue selection
        and pop order never disagree (a queue must not win on one
        tier's priority and then serve a different tier's request)."""
        return request_order_key(queue.peek(), self.scheduling)

    def _decode_key(
        self, queue: RequestQueue, batcher: ContinuousBatcher
    ) -> tuple:
        """Urgency of a continuous step: the most urgent request with a
        stake in the next step — waiting, resident, or preempted.  A
        resident high-priority sequence must not lose the GPU to lower
        tiers just because a low-priority decode request is queued."""
        keys = [
            request_order_key(entry.request, self.scheduling)
            for entry in batcher.resident
        ]
        keys.extend(
            request_order_key(entry.request, self.scheduling)
            for entry in batcher.preempted
        )
        if queue:
            keys.append(self._queue_key(queue))
        return min(keys)

    def _is_decode(self, request: InferenceRequest, policy: BatchingPolicy) -> bool:
        return (
            self.continuous_batching
            and request.rows <= policy.decode_rows_threshold
        )

    # ------------------------------------------------------------------
    # Launch accounting (shared by the dynamic and continuous paths)
    # ------------------------------------------------------------------
    def _cached_plan(self, cache: PlanCache, device: int, entry: ModelEntry,
                     handle: SparseHandle, padded_rows: int):
        """One plan-cache lookup, surfaced (when tracing) as a
        ``plan_cache.hit``/``plan_cache.miss`` event plus a counter —
        the outcome read off the cache's own stats delta, so the event
        stream and ``plan_cache_stats`` can never disagree."""
        tr = self.tracer
        if tr is None:
            return cache.lookup(entry.name, entry.op, handle, padded_rows)
        hits_before = cache.stats.hits
        plan_entry = cache.lookup(entry.name, entry.op, handle, padded_rows)
        outcome = "hit" if cache.stats.hits > hits_before else "miss"
        tr.event(
            f"plan_cache.{outcome}",
            track="engine",
            model=entry.name,
            padded_rows=padded_rows,
            device=device,
        )
        tr.metrics.counter(
            "serve_plan_cache_total", "plan-cache lookups by outcome"
        ).inc(outcome=outcome)
        return plan_entry

    def _modeled_launch(
        self, entry: ModelEntry, padded_rows: int
    ) -> "tuple[float, tuple[float, ...], CommEvent | None, object]":
        """Model one ``padded_rows``-row launch of ``entry``:
        ``(modeled_gpu_s, per_device_gpu_s, comm_event, plan)``.

        Single-device entries go through the shared plan cache exactly
        as before (plan returned for the numerics path, no comm
        event).  Distributed entries look up one plan per device shard
        in that device's own cache; the launch's modeled time is the
        slowest device plus the mode's ring collective, returned as
        the full :class:`~repro.distributed.topology.CommEvent` so the
        trace can attribute wire bytes, not just seconds.
        """
        if not entry.distributed:
            plan_entry = self._cached_plan(
                self.plan_cache, 0, entry, entry.handle, padded_rows
            )
            return plan_entry.modeled_seconds, (), None, plan_entry.plan
        per_device = tuple(
            self._cached_plan(
                self.plan_caches[shard.device], shard.device, entry,
                shard.handle, padded_rows,
            ).modeled_seconds
            for shard in entry.sharded.shards
        )
        comm = entry.sharded.collective(entry.group, padded_rows)
        return max(per_device) + comm.seconds, per_device, comm, None

    def _trace_launch(
        self,
        tr: Tracer,
        parent: "object | None",
        start_s: float,
        steps: int,
        modeled_s: float,
        per_device: "tuple[float, ...]",
        comm: "CommEvent | None",
        model: str,
    ):
        """Record one launch's GPU-side spans: ``gpu.launch`` covering
        the full modeled busy time (so summed launch durations equal
        ``ServingMetrics.gpu_busy_s`` exactly), one nested
        ``device.compute`` child per device shard, and — when the
        launch communicates — a ``comm.<collective>`` child occupying
        the launch's tail (compute gates the ring, so the collective
        finishes the launch), carrying the modeled wire bytes."""
        launch_end = start_s + steps * modeled_s
        launch = tr.add_span(
            "gpu.launch", start_s, launch_end,
            track="gpu", parent=parent, model=model, steps=steps,
        )
        for device, seconds in enumerate(per_device):
            tr.add_span(
                "device.compute", start_s, start_s + steps * seconds,
                track=f"device{device}", parent=launch,
                device=device, model=model,
            )
        if comm is not None and comm.seconds > 0:
            tr.add_span(
                f"comm.{comm.collective}",
                launch_end - steps * comm.seconds, launch_end,
                track="comm", parent=launch, model=model,
                **comm.trace_attrs(),
            )
        tr.metrics.counter(
            "serve_launches_total", "batch/step launches"
        ).inc(model=model)
        tr.metrics.histogram(
            "serve_launch_seconds", "modeled GPU seconds per launch"
        ).observe(steps * modeled_s, model=model)
        return launch

    def _trace_queue_wait(
        self, tr: Tracer, request: InferenceRequest, started_s: float,
        queue: str,
    ) -> None:
        """One request's time-in-queue as a span on the ``queue``
        track (admission to service start) plus a wait histogram."""
        tr.add_span(
            "queue.wait", request.arrival_s, started_s,
            track="queue", parent=None,
            request_id=request.request_id, model=request.model,
            priority=request.priority, queue=queue,
        )
        tr.metrics.histogram(
            "serve_queue_wait_seconds", "queue wait per request"
        ).observe(started_s - request.arrival_s, queue=queue)

    def _execute_batch(self, entry: ModelEntry, batch, plan) -> list:
        """Run one batch's numerics and split per-request outputs."""
        if entry.distributed:
            c = sharded_execute(batch.a, entry.sharded)
            return batch.split(c[:, : entry.handle.n_logical])
        c = entry.op.execute(
            batch.a, entry.handle, plan=plan, backend=self.backend,
            tracer=self.tracer,
        )
        return batch.split(c)

    def _plan_cache_snapshot(self) -> list:
        return [cache.stats.snapshot() for cache in self.plan_caches]

    def _plan_cache_stats_since(self, snapshots: list) -> dict:
        """Aggregate per-device plan-cache deltas into one stats dict
        (devices see identical lookup streams, so the sum keeps the
        single-device schema)."""
        total = None
        for cache, before in zip(self.plan_caches, snapshots):
            delta = cache.stats.since(before)
            if total is None:
                total = delta
            else:
                total.hits += delta.hits
                total.misses += delta.misses
                total.evictions += delta.evictions
        return total.as_dict()

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def simulate(
        self,
        requests: "list[InferenceRequest] | tuple[InferenceRequest, ...]",
        *,
        policy: "BatchingPolicy | None" = None,
    ) -> ServingReport:
        """Replay a request trace through the batching layer against a
        single simulated GPU and return the full report."""
        if not requests:
            raise ServeError("simulate needs at least one request")
        for request in requests:
            self._validate_request(request)
        pending = sorted(
            requests, key=lambda r: (r.arrival_s, r.request_id)
        )
        stats_before = self._plan_cache_snapshot()
        batcher = DynamicBatcher(policy or self.policy)
        run_policy = batcher.policy
        prefill_queues = {
            name: RequestQueue(name, self.scheduling) for name in self._models
        }
        decode_queues: dict[str, RequestQueue] = {}
        continuous: dict[str, ContinuousBatcher] = {}
        if self.continuous_batching:
            decode_queues = {
                name: RequestQueue(name, self.scheduling)
                for name in self._models
            }
            continuous = {
                name: ContinuousBatcher(run_policy, self.scheduling)
                for name in self._models
            }
        metrics = ServingMetrics()
        tracer = self.tracer
        i, n = 0, len(pending)
        clock_s = 0.0
        gpu_free_s = 0.0

        while True:
            # The GPU can next launch at t; admit everything arrived by
            # then (requests landing during a busy period join the next
            # batch, which is how batches grow under load).
            t = max(clock_s, gpu_free_s)
            while i < n and pending[i].arrival_s <= t:
                request = pending[i]
                decode = self._is_decode(request, run_policy)
                if decode:
                    decode_queues[request.model].push(request)
                else:
                    prefill_queues[request.model].push(request)
                if tracer is not None:
                    queue_name = "decode" if decode else "prefill"
                    tracer.event(
                        "request.admit",
                        t_s=request.arrival_s,
                        track="queue",
                        request_id=request.request_id,
                        model=request.model,
                        queue=queue_name,
                        priority=request.priority,
                        rows=request.rows,
                    )
                    tracer.metrics.counter(
                        "serve_requests_admitted_total", "admitted requests"
                    ).inc(queue=queue_name)
                i += 1
            drain = i >= n
            # (sort key, kind, model): the most urgent launchable work
            # wins; model name and kind break exact ties.
            candidates: list[tuple[tuple, str, str]] = []
            for name in self._models:
                queue = prefill_queues[name]
                if batcher.should_flush(queue, t, drain=drain):
                    candidates.append(
                        (self._queue_key(queue) + (name, 0), "prefill", name)
                    )
                if self.continuous_batching:
                    dq = decode_queues[name]
                    cb = continuous[name]
                    if dq or cb.has_work:
                        candidates.append(
                            (self._decode_key(dq, cb) + (name, 1),
                             "decode", name)
                        )
            if candidates:
                candidates.sort(key=lambda c: c[0])
                _, kind, name = candidates[0]
                if kind == "prefill":
                    gpu_free_s = self._launch(
                        prefill_queues[name], batcher, t, metrics
                    )
                else:
                    gpu_free_s = self._launch_step(
                        name,
                        decode_queues[name],
                        continuous[name],
                        batcher,
                        t,
                        metrics,
                    )
                clock_s = t
                continue
            # Nothing to launch: advance to the next event (arrival or
            # prefill deadline; decode work launches immediately, so an
            # idle decode side never needs a timer).  All candidate
            # times are strictly after t, so the loop always progresses.
            events = []
            if i < n:
                events.append(pending[i].arrival_s)
            for queue in prefill_queues.values():
                deadline = batcher.deadline_s(queue)
                if deadline is not None:
                    events.append(deadline)
            if not events:
                break
            clock_s = max(t, min(events))

        metrics.request_records.sort(key=lambda r: r.request.request_id)
        return ServingReport(
            metrics=metrics,
            policy=run_policy,
            plan_cache_stats=self._plan_cache_stats_since(stats_before),
            model_names=self.model_names,
            numerics=self.execute_numerics,
            backend=self.backend,
            scheduling=self.scheduling.value,
            continuous=self.continuous_batching,
            devices=self.devices,
            shard=self.shard if self.devices > 1 else None,
            link=self.link.name if self.devices > 1 else None,
        )

    def _launch(
        self,
        queue: RequestQueue,
        batcher: DynamicBatcher,
        start_s: float,
        metrics: ServingMetrics,
    ) -> float:
        """Form a dynamic batch from ``queue``, execute it at
        ``start_s``, record per-request and per-batch results, and
        return when the GPU frees up.

        The batch geometry is fixed at the cut: a multi-step request
        charges one modeled launch per step, and the whole batch holds
        the GPU until its longest member finishes (finished requests'
        rows ride along as waste — the cost continuous batching
        removes)."""
        entry = self.model(queue.model)
        tr = self.tracer
        if tr is not None:
            tr.advance(start_s)
        # Stack directly at the weights' padded k so execute() consumes
        # the block without another copy.
        batch = batcher.form_batch(
            queue, stack=self.execute_numerics, pad_to_k=entry.handle.k
        )
        modeled_s, per_device, comm, plan = self._modeled_launch(
            entry, batch.padded_rows
        )
        comm_s = 0.0 if comm is None else comm.seconds
        step_s = modeled_s + self.host_overhead_s
        max_steps = max(request.steps for request in batch.requests)
        finished_s = start_s + max_steps * step_s

        outputs: "list[np.ndarray] | None" = None
        if self.execute_numerics:
            outputs = self._execute_batch(entry, batch, plan)

        if tr is not None:
            batch_span = tr.add_span(
                "serve.batch", start_s, finished_s,
                track="engine", parent=None, kind="prefill",
                steps=max_steps, **batch.trace_attrs(),
            )
            for request in batch.requests:
                self._trace_queue_wait(tr, request, start_s, "prefill")
            self._trace_launch(
                tr, batch_span, start_s, max_steps, modeled_s,
                per_device, comm, batch.model,
            )

        for idx, request in enumerate(batch.requests):
            metrics.add_request(
                RequestRecord(
                    request=request,
                    batch_id=batch.batch_id,
                    started_s=start_s,
                    finished_s=start_s + request.steps * step_s,
                    output=None if outputs is None else outputs[idx],
                )
            )
        metrics.add_batch(
            BatchRecord(
                batch_id=batch.batch_id,
                model=batch.model,
                n_requests=batch.n_requests,
                rows=batch.rows,
                padded_rows=batch.padded_rows,
                started_s=start_s,
                finished_s=finished_s,
                modeled_gpu_s=max_steps * modeled_s,
                per_device_gpu_s=tuple(
                    max_steps * seconds for seconds in per_device
                ),
                comm_s=max_steps * comm_s,
            )
        )
        return finished_s

    def _launch_step(
        self,
        name: str,
        queue: RequestQueue,
        cb: ContinuousBatcher,
        batcher: DynamicBatcher,
        start_s: float,
        metrics: ServingMetrics,
    ) -> float:
        """Run one continuous-batching engine step for ``name`` at
        ``start_s``: refill the rolling batch, execute the resident
        rows, evict finished sequences, and return when the GPU frees
        up."""
        entry = self.model(name)
        tr = self.tracer
        if tr is not None:
            tr.advance(start_s)
        joined, preempted = cb.refill(queue, start_s)
        batch = cb.form_step(
            batcher.allocate_batch_id(),
            stack=self.execute_numerics,
            pad_to_k=entry.handle.k,
        )
        modeled_gpu_s, per_device, comm, plan = self._modeled_launch(
            entry, batch.padded_rows
        )
        comm_s = 0.0 if comm is None else comm.seconds
        finished_s = start_s + modeled_gpu_s + self.host_overhead_s

        outputs: "list[np.ndarray] | None" = None
        if self.execute_numerics:
            outputs = self._execute_batch(entry, batch, plan)

        finished_entries = cb.advance()
        if tr is not None:
            step_span = tr.add_span(
                "serve.step", start_s, finished_s,
                track="engine", parent=None, kind="decode",
                joined=joined, evicted=len(finished_entries),
                preempted=preempted, **batch.trace_attrs(),
            )
            if joined:
                tr.event(
                    "cb.join", t_s=start_s, track="engine",
                    model=name, count=joined,
                )
            if preempted:
                tr.event(
                    "cb.preempt", t_s=start_s, track="engine",
                    model=name, count=preempted,
                )
            if finished_entries:
                tr.event(
                    "cb.evict", t_s=finished_s, track="engine",
                    model=name, count=len(finished_entries),
                )
            for _, inflight in finished_entries:
                self._trace_queue_wait(
                    tr, inflight.request, inflight.joined_s, "decode"
                )
            self._trace_launch(
                tr, step_span, start_s, 1, modeled_gpu_s,
                per_device, comm, name,
            )
        for idx, inflight in finished_entries:
            metrics.add_request(
                RequestRecord(
                    request=inflight.request,
                    batch_id=batch.batch_id,
                    started_s=inflight.joined_s,
                    finished_s=finished_s,
                    output=None if outputs is None else outputs[idx],
                )
            )
        metrics.add_step(
            StepRecord(
                step_id=batch.batch_id,
                model=name,
                n_resident=batch.n_requests,
                rows=batch.rows,
                padded_rows=batch.padded_rows,
                joined=joined,
                evicted=len(finished_entries),
                preempted=preempted,
                started_s=start_s,
                finished_s=finished_s,
                modeled_gpu_s=modeled_gpu_s,
                per_device_gpu_s=per_device,
                comm_s=comm_s,
            )
        )
        return finished_s
