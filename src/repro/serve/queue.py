"""Per-model FIFO request queue.

One :class:`RequestQueue` holds the admitted-but-unlaunched requests of
a single registered model.  The batcher inspects the queue's aggregate
state (request count, total rows, oldest arrival) to decide when a
batch should be cut, and pops requests in strict arrival order.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ServeError
from repro.serve.request import InferenceRequest

__all__ = ["RequestQueue"]


class RequestQueue:
    """FIFO queue of pending requests for one model."""

    def __init__(self, model: str):
        if not model:
            raise ServeError("queue needs a model name")
        self.model = model
        self._items: deque[InferenceRequest] = deque()
        self._total_rows = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def total_rows(self) -> int:
        """Activation rows currently queued (the batch ``m`` a full
        flush would produce before padding).  Maintained incrementally:
        the scheduler polls this on every event-loop step."""
        return self._total_rows

    @property
    def oldest_arrival_s(self) -> "float | None":
        """Arrival time of the longest-waiting request."""
        return self._items[0].arrival_s if self._items else None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, request: InferenceRequest) -> None:
        """Admit a request.  Admission must follow simulated time: a
        request may not arrive before the queue's newest entry."""
        if request.model != self.model:
            raise ServeError(
                f"request for model {request.model!r} pushed onto the "
                f"{self.model!r} queue"
            )
        if self._items and request.arrival_s < self._items[-1].arrival_s:
            raise ServeError(
                f"out-of-order admission: request {request.request_id} "
                f"arrives at {request.arrival_s} but the queue tail is at "
                f"{self._items[-1].arrival_s}"
            )
        self._items.append(request)
        self._total_rows += request.rows

    def pop_upto(
        self, max_requests: int, max_rows: int
    ) -> list[InferenceRequest]:
        """Pop the FIFO prefix that fits both budgets.

        Always pops at least one request (a single oversized request
        still has to run), then keeps taking requests while both the
        request-count and row budgets hold.
        """
        if not self._items:
            raise ServeError(f"pop from empty queue {self.model!r}")
        if max_requests < 1 or max_rows < 1:
            raise ServeError(
                f"budgets must be >= 1, got max_requests={max_requests}, "
                f"max_rows={max_rows}"
            )
        taken = [self._items.popleft()]
        rows = taken[0].rows
        while self._items:
            nxt = self._items[0]
            if len(taken) + 1 > max_requests or rows + nxt.rows > max_rows:
                break
            taken.append(self._items.popleft())
            rows += nxt.rows
        self._total_rows -= rows
        return taken
