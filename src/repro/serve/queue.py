"""Per-model priority-aware request queue.

One :class:`RequestQueue` holds the admitted-but-unlaunched requests of
a single registered model, grouped into strict-priority tiers.  The pop
order follows the queue's :class:`~repro.serve.scheduling.SchedulingPolicy`:

* ``fifo`` — one tier, strict arrival order (the original behaviour);
* ``priority`` — highest tier first, FIFO within a tier;
* ``slo-edf`` — highest tier first, earliest deadline first within a
  tier (requests without an SLO sort after every deadlined request of
  their tier, in arrival order).

The batcher inspects the queue's aggregate state (request count, total
rows, oldest arrival) to decide when a batch should be cut.  Admission
keeps two guards: arrivals must be time-ordered *per tier*, and every
queued request must share one activation width ``k`` (a mixed-k batch
cannot be stacked — see ``DynamicBatcher.form_batch``).
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Iterator

from repro.errors import ServeError
from repro.serve.ledger import CostLedger
from repro.serve.request import InferenceRequest
from repro.serve.scheduling import SchedulingPolicy, request_order_key

__all__ = ["RequestQueue"]


class RequestQueue:
    """Priority-tiered queue of pending requests for one model."""

    def __init__(
        self,
        model: str,
        scheduling: "str | SchedulingPolicy" = SchedulingPolicy.FIFO,
    ):
        if not model:
            raise ServeError("queue needs a model name")
        self.model = model
        self.scheduling = SchedulingPolicy.parse(scheduling)
        #: priority tier -> time-ordered list of requests.  Under FIFO
        #: every request lands in tier 0 (priorities are ignored).
        self._tiers: dict[int, list[InferenceRequest]] = {}
        #: request_id -> queued rows; its conservation-checked total is
        #: what admission control polls.
        self._rows = CostLedger(f"{model}.queued-rows")
        self._k: "int | None" = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    @property
    def total_rows(self) -> int:
        """Activation rows currently queued (the batch ``m`` a full
        flush would produce before padding).  Maintained incrementally:
        the scheduler polls this on every event-loop step."""
        return self._rows.total

    @property
    def rows_ledger(self) -> CostLedger:
        """The underlying :class:`~repro.serve.ledger.CostLedger`
        (exposed so conservation tests can reconcile it directly)."""
        return self._rows

    @property
    def oldest_arrival_s(self) -> "float | None":
        """Arrival time of the longest-waiting request (across tiers)."""
        if not self._rows:
            return None
        return min(items[0].arrival_s for items in self._tiers.values())

    def _tier_of(self, request: InferenceRequest) -> int:
        if self.scheduling is SchedulingPolicy.FIFO:
            return 0
        return request.priority

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def push(self, request: InferenceRequest) -> None:
        """Admit a request.  Admission must follow simulated time
        within a tier: a request may not arrive before its tier's
        newest entry.  All queued requests must share one ``k``."""
        if request.model != self.model:
            raise ServeError(
                f"request for model {request.model!r} pushed onto the "
                f"{self.model!r} queue"
            )
        if self._k is not None and request.k != self._k:
            raise ServeError(
                f"request {request.request_id} has k={request.k} but the "
                f"{self.model!r} queue holds k={self._k} requests; a "
                "mixed-k batch cannot be stacked"
            )
        tier = self._tier_of(request)
        items = self._tiers.get(tier)
        if items and request.arrival_s < items[-1].arrival_s:
            raise ServeError(
                f"out-of-order admission: request {request.request_id} "
                f"arrives at {request.arrival_s} but tier {tier} of the "
                f"queue tail is at {items[-1].arrival_s}"
            )
        if items is None:
            items = self._tiers[tier] = []
        items.append(request)
        self._rows.add(request.request_id, request.rows)
        self._k = request.k

    def requeue(self, request: InferenceRequest) -> None:
        """Re-admit a retried request.

        A retry carries its *original* arrival time, which is usually
        older than the tier's tail — so the time-ordered admission
        guard of :meth:`push` would reject it.  ``requeue`` instead
        bisect-inserts the request by arrival time within its tier,
        preserving the per-tier time ordering that ``push`` enforces
        for fresh arrivals.  The ``k``-homogeneity guard still applies.
        """
        if request.model != self.model:
            raise ServeError(
                f"request for model {request.model!r} requeued onto the "
                f"{self.model!r} queue"
            )
        if self._k is not None and request.k != self._k:
            raise ServeError(
                f"retried request {request.request_id} has k={request.k} "
                f"but the {self.model!r} queue holds k={self._k} requests"
            )
        tier = self._tier_of(request)
        items = self._tiers.get(tier)
        if items is None:
            items = self._tiers[tier] = []
        insort(items, request, key=lambda r: (r.arrival_s, r.request_id))
        self._rows.add(request.request_id, request.rows)
        self._k = request.k

    def remove_where(
        self, predicate: Callable[[InferenceRequest], bool]
    ) -> list[InferenceRequest]:
        """Remove and return every queued request matching
        ``predicate``, unwinding the row/count accounting (used for
        timeout cancellation)."""
        removed: list[InferenceRequest] = []
        for tier in list(self._tiers):
            items = self._tiers[tier]
            kept = []
            for request in items:
                if predicate(request):
                    removed.append(request)
                else:
                    kept.append(request)
            if kept:
                self._tiers[tier] = kept
            else:
                del self._tiers[tier]
        for request in removed:
            self._rows.remove(request.request_id)
        if not self._rows:
            self._k = None
        return removed

    def iter_requests(self) -> Iterator[InferenceRequest]:
        """All queued requests (tier-major, time order within a tier)."""
        for tier in sorted(self._tiers, reverse=True):
            yield from self._tiers[tier]

    def _select(self) -> tuple[int, int]:
        """The (tier, index) the scheduling policy serves next."""
        tier = max(self._tiers)
        items = self._tiers[tier]
        if self.scheduling is SchedulingPolicy.SLO_EDF:
            index = min(
                range(len(items)),
                key=lambda i: request_order_key(items[i], self.scheduling),
            )
        else:
            index = 0  # FIFO within the tier (and overall under fifo).
        return tier, index

    def peek(self) -> InferenceRequest:
        """The request the policy would pop next, without removing it."""
        if not self._rows:
            raise ServeError(f"peek into empty queue {self.model!r}")
        tier, index = self._select()
        return self._tiers[tier][index]

    def _pop_at(self, tier: int, index: int) -> InferenceRequest:
        items = self._tiers[tier]
        request = items.pop(index)
        if not items:
            del self._tiers[tier]
        self._rows.remove(request.request_id)
        if not self._rows:
            self._k = None
        return request

    def pop_next(self) -> InferenceRequest:
        """Pop exactly the request the policy serves next."""
        if not self._rows:
            raise ServeError(f"pop from empty queue {self.model!r}")
        return self._pop_at(*self._select())

    def pop_upto(
        self, max_requests: int, max_rows: int
    ) -> list[InferenceRequest]:
        """Pop the policy-ordered prefix that fits both budgets.

        Always pops at least one request (a single oversized request
        still has to run), then keeps taking requests while both the
        request-count and row budgets hold.
        """
        if not self._rows:
            raise ServeError(f"pop from empty queue {self.model!r}")
        if max_requests < 1 or max_rows < 1:
            raise ServeError(
                f"budgets must be >= 1, got max_requests={max_requests}, "
                f"max_rows={max_rows}"
            )
        taken = [self.pop_next()]
        rows = taken[0].rows
        while self._rows:
            tier, index = self._select()
            nxt = self._tiers[tier][index]
            if len(taken) + 1 > max_requests or rows + nxt.rows > max_rows:
                break
            taken.append(self._pop_at(tier, index))
            rows += nxt.rows
        return taken
