"""Resilience policy of the serving runtime.

One frozen :class:`ResiliencePolicy` bundles every knob the serving
engine uses to survive injected faults (:mod:`repro.faults`):

* **retries** — a failed launch re-queues its requests with
  exponential backoff plus seeded jitter on the simulated clock, up to
  ``max_retries`` attempts per request;
* **timeouts** — a request whose deadline passes is cancelled wherever
  it lives (queued, waiting out a backoff, or resident in the rolling
  decode batch), with queue and continuous-batch accounting unwound;
* **circuit breaking** — ``breaker_threshold`` consecutive attributed
  launch failures open a device's circuit.  With a
  ``breaker_cooldown_s`` the circuit is *half-open*: the device sits
  out the cooldown (models touching it hold their launches) and then
  rejoins — the right response to a transient failure storm.  With
  ``breaker_cooldown_s=None`` an opened circuit is permanent: the
  device is treated as fail-stopped and (when re-sharding is enabled)
  its models move to the survivors;
* **re-sharding** — on device fail-stop the affected tensor-parallel
  models are re-partitioned onto the surviving devices via
  :func:`~repro.distributed.shard.shard_handle` and serving continues
  at reduced throughput (the recovery pause models re-distributing
  the compressed weights over the group link);
* **load shedding** — admission control: when a model's queue already
  holds ``shed_queue_rows`` rows, new requests below
  ``shed_protect_priority`` are rejected at admission instead of
  blowing every queued request's SLO.

``ResiliencePolicy()`` is the sensible-defaults "resilience on"
configuration; ``None`` (the server default) disables all of it —
requests fail on first fault, nothing is shed, nothing re-shards —
which is exactly the baseline the resilience benchmark compares
against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ServeError
from repro.serve.request import InferenceRequest

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunables of the serving engine's fault handling.

    Parameters
    ----------
    max_retries:
        Launch-failure retries per request (0 = fail on first fault).
    backoff_base_s / backoff_multiplier / backoff_jitter:
        Retry ``i`` (1-based) waits ``base * multiplier**(i-1) *
        (1 + jitter * u)`` simulated seconds before re-queueing, with
        ``u`` uniform in ``[0, 1)`` from the run's seeded stream.
    timeout_slo_multiplier:
        A request carrying an SLO times out ``slo_ms * multiplier``
        after arrival; ``None`` disables SLO-derived timeouts.
    default_timeout_ms:
        Timeout for requests without an SLO; ``None`` means they never
        time out.
    breaker_threshold:
        Consecutive attributed launch failures that open a device's
        circuit; ``None`` disables the breaker.
    breaker_cooldown_s:
        Half-open recovery: an opened circuit closes again after this
        many simulated seconds (launches on the device's models hold
        until then).  ``None`` makes an opened circuit permanent —
        the device fail-stops and its models re-shard.
    reshard:
        Re-shard distributed models onto surviving devices on device
        fail-stop (plan-scheduled or breaker-opened).
    shed_queue_rows:
        Admission threshold: a request is shed when its target queue
        already holds at least this many activation rows; ``None``
        disables shedding.
    shed_protect_priority:
        Requests at or above this priority tier are never shed.
    """

    max_retries: int = 3
    backoff_base_s: float = 2e-3
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.1
    timeout_slo_multiplier: "float | None" = 10.0
    default_timeout_ms: "float | None" = None
    breaker_threshold: "int | None" = 5
    breaker_cooldown_s: "float | None" = 0.25
    reshard: bool = True
    shed_queue_rows: "int | None" = None
    shed_protect_priority: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ServeError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0:
            raise ServeError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_multiplier < 1:
            raise ServeError(
                "backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.backoff_jitter < 0:
            raise ServeError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )
        if self.timeout_slo_multiplier is not None and not (
            self.timeout_slo_multiplier > 0
            and math.isfinite(self.timeout_slo_multiplier)
        ):
            raise ServeError(
                "timeout_slo_multiplier must be finite > 0, got "
                f"{self.timeout_slo_multiplier}"
            )
        if self.default_timeout_ms is not None and not (
            self.default_timeout_ms > 0
            and math.isfinite(self.default_timeout_ms)
        ):
            raise ServeError(
                "default_timeout_ms must be finite > 0, got "
                f"{self.default_timeout_ms}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise ServeError(
                f"breaker_threshold must be >= 1, got "
                f"{self.breaker_threshold}"
            )
        if self.breaker_cooldown_s is not None and not (
            self.breaker_cooldown_s > 0
            and math.isfinite(self.breaker_cooldown_s)
        ):
            raise ServeError(
                "breaker_cooldown_s must be finite > 0, got "
                f"{self.breaker_cooldown_s}"
            )
        if self.shed_queue_rows is not None and self.shed_queue_rows < 1:
            raise ServeError(
                f"shed_queue_rows must be >= 1, got {self.shed_queue_rows}"
            )
        if self.shed_protect_priority < 0:
            raise ServeError(
                "shed_protect_priority must be >= 0, got "
                f"{self.shed_protect_priority}"
            )

    # ------------------------------------------------------------------
    def timeout_s(self, request: InferenceRequest) -> "float | None":
        """The request's cancellation timeout in seconds, or ``None``
        when it never times out."""
        if request.slo_ms is not None and self.timeout_slo_multiplier:
            return request.slo_ms * self.timeout_slo_multiplier * 1e-3
        if self.default_timeout_ms is not None:
            return self.default_timeout_ms * 1e-3
        return None

    def deadline_s(self, request: InferenceRequest) -> "float | None":
        """Absolute cancellation deadline on the simulated clock."""
        timeout = self.timeout_s(request)
        if timeout is None:
            return None
        return request.arrival_s + timeout

    def backoff_s(self, attempt: int, u: float) -> float:
        """Backoff before retry ``attempt`` (1-based); ``u`` in
        ``[0, 1)`` supplies the jitter draw."""
        if attempt < 1:
            raise ServeError(f"attempt must be >= 1, got {attempt}")
        base = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        return base * (1.0 + self.backoff_jitter * u)

    def shed(self, request: InferenceRequest, queued_rows: int) -> bool:
        """Whether admission control rejects ``request`` given its
        target queue's current row backlog."""
        if self.shed_queue_rows is None:
            return False
        if request.priority >= self.shed_protect_priority:
            return False
        return queued_rows >= self.shed_queue_rows

    def describe(self) -> str:
        parts = [f"retries={self.max_retries}"]
        if self.timeout_slo_multiplier is not None:
            parts.append(f"timeout={self.timeout_slo_multiplier:g}x-slo")
        if self.default_timeout_ms is not None:
            parts.append(f"default-timeout={self.default_timeout_ms:g}ms")
        if self.breaker_threshold is not None:
            cooldown = (
                "permanent"
                if self.breaker_cooldown_s is None
                else f"{self.breaker_cooldown_s * 1e3:g}ms"
            )
            parts.append(f"breaker={self.breaker_threshold}/{cooldown}")
        if self.reshard:
            parts.append("reshard")
        if self.shed_queue_rows is not None:
            parts.append(
                f"shed>={self.shed_queue_rows}rows"
                f"(protect>={self.shed_protect_priority})"
            )
        return ",".join(parts)
