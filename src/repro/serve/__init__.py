"""Serving runtime for NM-SpMM: queue, dynamic batching, plan-cached
execution, metrics, and seeded load generation.

This is the scaling layer on top of the one-shot
:class:`~repro.core.api.NMSpMM` facade: prepared
:class:`~repro.core.api.SparseHandle` weights are registered once (the
paper's offline phase) and then served under load, with a dynamic
batcher amortizing the per-launch overheads the performance model
charges and a shared LRU plan cache skipping repeat plan construction.

Quickstart::

    import numpy as np
    from repro import NMPattern
    from repro.serve import (
        BatchingPolicy, InferenceServer, TrafficSource, generate_requests,
    )

    rng = np.random.default_rng(0)
    server = InferenceServer(policy=BatchingPolicy(max_wait_s=1e-3))
    server.register_model(
        "llama-7b/attn", rng.standard_normal((256, 256)).astype(np.float32),
        NMPattern(2, 8, vector_length=8),
    )
    trace = generate_requests(
        [TrafficSource(model="llama-7b/attn", k=256)],
        qps=200, duration_s=1.0, seed=0,
    )
    report = server.simulate(trace)
    print(report.render())
"""

from repro.serve.request import InferenceRequest, RequestRecord
from repro.serve.scheduling import SchedulingPolicy
from repro.serve.queue import RequestQueue
from repro.serve.batcher import (
    Batch,
    BatchingPolicy,
    ContinuousBatcher,
    DynamicBatcher,
)
from repro.serve.cache import CacheStats, LRUCache, PlanCache, PlanEntry
from repro.serve.metrics import (
    BatchRecord,
    LatencySummary,
    ServingMetrics,
    StepRecord,
    percentile,
)
from repro.serve.loadgen import (
    TrafficSource,
    bursty_arrivals,
    generate_requests,
    poisson_arrivals,
)
from repro.serve.server import InferenceServer, ModelEntry, ServingReport
from repro.serve.scenarios import (
    LlamaServingScenario,
    TrafficTier,
    parse_pattern,
)
from repro.serve.ledger import CostLedger
from repro.serve.model_exec import (
    DeviceMemoryModel,
    LayerSpec,
    ModelExecutor,
    ModelServingScenario,
    agentic_short_decodes,
    long_context_summarization,
    prefill_heavy_chat,
)

__all__ = [
    "InferenceRequest",
    "RequestRecord",
    "SchedulingPolicy",
    "RequestQueue",
    "Batch",
    "BatchingPolicy",
    "ContinuousBatcher",
    "DynamicBatcher",
    "CacheStats",
    "LRUCache",
    "PlanCache",
    "PlanEntry",
    "BatchRecord",
    "LatencySummary",
    "ServingMetrics",
    "StepRecord",
    "percentile",
    "TrafficSource",
    "bursty_arrivals",
    "generate_requests",
    "poisson_arrivals",
    "InferenceServer",
    "ModelEntry",
    "ServingReport",
    "LlamaServingScenario",
    "TrafficTier",
    "parse_pattern",
    "CostLedger",
    "DeviceMemoryModel",
    "LayerSpec",
    "ModelExecutor",
    "ModelServingScenario",
    "agentic_short_decodes",
    "long_context_summarization",
    "prefill_heavy_chat",
]
