"""Plan caching for the serving runtime.

Plan construction (Table I lookup, Eq. 5 ``ks``, strategy selection)
and the perf-model simulation of the resulting launch are pure
functions of the launch geometry, so the server shares one bounded LRU
across all registered models keyed by ``(model, padded_m, gpu,
version)`` — the GPU spec and optimization version shape the plan just
as much as the row count, so two models serving on different simulated
GPUs (or at different optimization levels) never collide.  The
batcher's row bucketing collapses the batch-size distribution onto a
few buckets, so the cache converges to near-100% hits after warm-up.
``ColumnInfo`` (Listing 3's offline pre-processing) is likewise reused
— it lives on each model's :class:`~repro.core.api.SparseHandle` and is
built at most once per block shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.api import NMSpMM, SparseHandle
from repro.core.plan import ExecutionPlan
from repro.utils.cache import CacheStats, LRUCache

__all__ = ["CacheStats", "LRUCache", "PlanEntry", "PlanCache"]


@dataclass(frozen=True)
class PlanEntry:
    """What the serving engine needs per launch geometry: the execution
    plan, its perf-model report (modeled seconds drive the simulated
    clock), and the closed-form :class:`~repro.kernels.blocked.
    KernelTrace` of the launch (FLOP and global-memory byte counts),
    which the tracer stamps onto every ``gpu.launch`` span so the
    trace-analytics roofline attribution never re-derives work from
    shapes."""

    plan: ExecutionPlan
    report: object  # KernelReport; kept untyped to avoid a model import
    trace: object = None  # KernelTrace; same import-avoidance

    @property
    def modeled_seconds(self) -> float:
        return self.report.seconds  # type: ignore[attr-defined]

    @property
    def launch_cost(self) -> "tuple[int, int, int]":
        """``(flops, ldg_bytes, stg_bytes)`` of one launch — the
        roofline-attribution counts, zeros if no trace was built."""
        if self.trace is None:
            return (0, 0, 0)
        t = self.trace
        return (t.flops, t.ldg_bytes, t.stg_bytes)  # type: ignore[attr-defined]


@dataclass
class PlanCache:
    """The shared ``(model, m, gpu, version) -> PlanEntry`` LRU of the
    server."""

    capacity: int = 64
    _lru: LRUCache = field(init=False)

    def __post_init__(self) -> None:
        self._lru = LRUCache(self.capacity)

    def lookup(
        self, model: str, op: NMSpMM, handle: SparseHandle, m: int
    ) -> PlanEntry:
        """The plan + modeled report for an ``m``-row launch of
        ``model``, building both on first use.

        Hit/miss accounting lives in :attr:`stats`; a tracing server
        reads the stats delta around this call to emit
        ``plan_cache.hit``/``plan_cache.miss`` events (see
        ``InferenceServer._cached_plan``), so the cache itself stays
        observability-free."""
        key = (model, m, op.gpu.name, op.version.value)

        def build() -> PlanEntry:
            # Deliberately NOT handle-level caching (use_cache): this
            # LRU is the single bounded owner of serving plans, so
            # evicting an entry really frees it.
            plan = op.plan_for(m, handle)
            col_info = (
                handle.col_info(plan.ws, plan.params.ns)
                if plan.uses_packing
                else None
            )
            trace = plan.analytic_trace(
                col_info,
                index_itemsize=handle.compressed.indices.dtype.itemsize,
            )
            return PlanEntry(plan=plan, report=plan.simulate(), trace=trace)

        return self._lru.get_or_build(key, build)

    @property
    def stats(self) -> CacheStats:
        return self._lru.stats

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()
