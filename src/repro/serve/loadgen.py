"""Seeded load generation: arrival processes and request synthesis.

Arrivals are generated ahead of time on the simulated clock (Poisson or
bursty on/off-modulated Poisson), so a ``(seed, qps, duration)`` triple
always produces the identical request trace — serving curves reproduce
bit-for-bit with no wall-clock flakiness.

Request shapes are Llama-flavoured: each :class:`TrafficSource` targets
one registered weight matrix (e.g. a scaled Llama linear layer from
:mod:`repro.workloads.llama`) and draws its activation row count from a
decode-heavy distribution (mostly 1-8 rows, the occasional larger
prefill chunk).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.serve.request import InferenceRequest

__all__ = [
    "poisson_arrivals",
    "bursty_arrivals",
    "TrafficSource",
    "generate_requests",
]

#: Default decode-heavy request row distribution: mostly single-token
#: decode steps, a tail of small prefill chunks.
DEFAULT_ROWS_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16)
DEFAULT_ROWS_WEIGHTS: tuple[float, ...] = (0.45, 0.25, 0.15, 0.10, 0.05)


def _check_rate(qps: float, duration_s: float) -> None:
    if not qps > 0:
        raise ServeError(f"qps must be > 0, got {qps}")
    if not duration_s > 0:
        raise ServeError(f"duration_s must be > 0, got {duration_s}")


def poisson_arrivals(
    qps: float, duration_s: float, rng: np.random.Generator
) -> list[float]:
    """Homogeneous Poisson arrivals at ``qps`` over ``[0, duration_s)``
    (i.i.d. exponential gaps)."""
    _check_rate(qps, duration_s)
    times: list[float] = []
    t = float(rng.exponential(1.0 / qps))
    while t < duration_s:
        times.append(t)
        t += float(rng.exponential(1.0 / qps))
    return times


def bursty_arrivals(
    qps: float,
    duration_s: float,
    rng: np.random.Generator,
    *,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.25,
    cycle_s: float = 0.25,
) -> list[float]:
    """On/off-modulated Poisson arrivals with mean rate ``qps``.

    Each ``cycle_s`` window starts with a burst phase lasting
    ``burst_fraction`` of the cycle at ``burst_factor * qps``; the off
    phase rate is chosen so the long-run mean stays ``qps``.  Within
    each phase, arrival counts are Poisson and positions uniform (the
    standard conditional-uniformity construction), keeping the trace a
    pure function of the seed.
    """
    _check_rate(qps, duration_s)
    if burst_factor < 1:
        raise ServeError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0 < burst_fraction < 1:
        raise ServeError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    if burst_factor * burst_fraction > 1:
        raise ServeError(
            f"burst_factor={burst_factor} with burst_fraction="
            f"{burst_fraction} would need a negative off-phase rate to "
            "keep the mean at qps; require burst_factor <= "
            f"{1.0 / burst_fraction:g}"
        )
    if not cycle_s > 0:
        raise ServeError(f"cycle_s must be > 0, got {cycle_s}")
    rate_on = qps * burst_factor
    rate_off = qps * (1.0 - burst_fraction * burst_factor) / (
        1.0 - burst_fraction
    )
    times: list[float] = []
    t0 = 0.0
    while t0 < duration_s:
        for rate, t_start, t_end in (
            (rate_on, t0, t0 + burst_fraction * cycle_s),
            (rate_off, t0 + burst_fraction * cycle_s, t0 + cycle_s),
        ):
            t_end = min(t_end, duration_s)
            span = t_end - t_start
            if span <= 0 or rate <= 0:
                continue
            count = int(rng.poisson(rate * span))
            if count:
                times.extend(
                    sorted(t_start + span * rng.random(count))
                )
        t0 += cycle_s
    return times


@dataclass(frozen=True)
class TrafficSource:
    """One stream of Llama-shaped requests against a registered model.

    Parameters
    ----------
    model:
        Registered model name the requests target.
    k:
        Activation width — must equal the registered handle's ``k``.
    rows_choices / rows_weights:
        Distribution of the per-request activation row count.
    share:
        Relative traffic share when several sources mix.
    """

    model: str
    k: int
    rows_choices: tuple[int, ...] = DEFAULT_ROWS_CHOICES
    rows_weights: "tuple[float, ...] | None" = DEFAULT_ROWS_WEIGHTS
    share: float = 1.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ServeError(f"k must be >= 1, got {self.k}")
        if not self.rows_choices or any(r < 1 for r in self.rows_choices):
            raise ServeError(f"bad rows_choices {self.rows_choices}")
        # The decode-heavy default weights only fit the default choices;
        # custom rows_choices fall back to uniform unless the caller
        # supplies matching weights explicitly.
        if (
            self.rows_weights is DEFAULT_ROWS_WEIGHTS
            and len(self.rows_choices) != len(DEFAULT_ROWS_WEIGHTS)
        ):
            object.__setattr__(self, "rows_weights", None)
        if self.rows_weights is not None and (
            len(self.rows_weights) != len(self.rows_choices)
            or any(w < 0 for w in self.rows_weights)
            or sum(self.rows_weights) <= 0
        ):
            raise ServeError(f"bad rows_weights {self.rows_weights}")
        if not self.share > 0:
            raise ServeError(f"share must be > 0, got {self.share}")


def generate_requests(
    sources: "list[TrafficSource] | tuple[TrafficSource, ...]",
    qps: float,
    duration_s: float,
    *,
    seed: int = 0,
    arrival: str = "poisson",
    integer_values: bool = False,
    synthesize_activations: bool = True,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.25,
    cycle_s: float = 0.25,
) -> list[InferenceRequest]:
    """A full seeded request trace, sorted by arrival time.

    ``integer_values`` fills activations with small integers (exactly
    representable in float32), which makes batched-vs-individual
    execution *bitwise* comparable regardless of BLAS accumulation
    order — the correctness tests rely on it.

    ``synthesize_activations=False`` emits metadata-only requests
    (``a=None``, just ``(rows, k)``) for scheduling-only runs with
    numerics off — no point drawing and storing activation data the
    engine never reads.
    """
    if not sources:
        raise ServeError("generate_requests needs at least one TrafficSource")
    rng = np.random.default_rng(seed)
    if arrival == "poisson":
        times = poisson_arrivals(qps, duration_s, rng)
    elif arrival == "bursty":
        times = bursty_arrivals(
            qps,
            duration_s,
            rng,
            burst_factor=burst_factor,
            burst_fraction=burst_fraction,
            cycle_s=cycle_s,
        )
    else:
        raise ServeError(
            f"unknown arrival process {arrival!r}; use 'poisson' or 'bursty'"
        )

    shares = np.array([s.share for s in sources], dtype=np.float64)
    shares /= shares.sum()
    rows_weights_by_source: "list[np.ndarray | None]" = []
    for src in sources:
        if src.rows_weights is None:
            rows_weights_by_source.append(None)
        else:
            weights = np.array(src.rows_weights, dtype=np.float64)
            rows_weights_by_source.append(weights / weights.sum())
    requests: list[InferenceRequest] = []
    for i, t in enumerate(times):
        src_index = int(rng.choice(len(sources), p=shares))
        src = sources[src_index]
        rows = int(
            rng.choice(src.rows_choices, p=rows_weights_by_source[src_index])
        )
        if not synthesize_activations:
            requests.append(
                InferenceRequest(
                    request_id=i,
                    model=src.model,
                    a=None,
                    arrival_s=float(t),
                    shape=(rows, src.k),
                )
            )
            continue
        if integer_values:
            a = rng.integers(-4, 5, size=(rows, src.k)).astype(np.float32)
        else:
            a = rng.standard_normal((rows, src.k)).astype(np.float32)
        requests.append(
            InferenceRequest(
                request_id=i, model=src.model, a=a, arrival_s=float(t)
            )
        )
    return requests
