"""Seeded load generation: arrival processes and request synthesis.

Arrivals are generated ahead of time on the simulated clock (Poisson or
bursty on/off-modulated Poisson), so a ``(seed, qps, duration)`` triple
always produces the identical request trace — serving curves reproduce
bit-for-bit with no wall-clock flakiness.

Request shapes are Llama-flavoured: each :class:`TrafficSource` targets
one registered weight matrix (e.g. a scaled Llama linear layer from
:mod:`repro.workloads.llama`) and draws its activation row count from a
decode-heavy distribution (mostly 1-8 rows, the occasional larger
prefill chunk).  Sources can *tag* their streams — a priority tier, an
SLO deadline, and a decode fraction that splits the stream into
decode-shaped multi-step sequences vs. single-step prefill chunks — so
one trace can mix interactive and bulk tiers for the scheduler to
separate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ServeError
from repro.serve.request import InferenceRequest

__all__ = [
    "poisson_arrivals",
    "bursty_arrivals",
    "TrafficSource",
    "generate_requests",
    "DECODE_ROWS_CHOICES",
    "DEFAULT_DECODE_STEPS_CHOICES",
]

#: Default decode-heavy request row distribution: mostly single-token
#: decode steps, a tail of small prefill chunks.
DEFAULT_ROWS_CHOICES: tuple[int, ...] = (1, 2, 4, 8, 16)
DEFAULT_ROWS_WEIGHTS: tuple[float, ...] = (0.45, 0.25, 0.15, 0.10, 0.05)

#: Row counts of an explicitly decode-shaped request (m = 1..4 rows per
#: request, the regime the continuous batcher exists for) and the step
#: counts of the decode sequences it emits.
DECODE_ROWS_CHOICES: tuple[int, ...] = (1, 2, 4)
DEFAULT_DECODE_STEPS_CHOICES: tuple[int, ...] = (2, 4, 8)


def _check_rate(qps: float, duration_s: float) -> None:
    if not qps > 0:
        raise ServeError(f"qps must be > 0, got {qps}")
    if not duration_s > 0:
        raise ServeError(f"duration_s must be > 0, got {duration_s}")


def poisson_arrivals(
    qps: float, duration_s: float, rng: np.random.Generator
) -> list[float]:
    """Homogeneous Poisson arrivals at ``qps`` over ``[0, duration_s)``
    (i.i.d. exponential gaps)."""
    _check_rate(qps, duration_s)
    times: list[float] = []
    t = float(rng.exponential(1.0 / qps))
    while t < duration_s:
        times.append(t)
        t += float(rng.exponential(1.0 / qps))
    return times


def bursty_arrivals(
    qps: float,
    duration_s: float,
    rng: np.random.Generator,
    *,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.25,
    cycle_s: float = 0.25,
) -> list[float]:
    """On/off-modulated Poisson arrivals with mean rate ``qps``.

    Each ``cycle_s`` window starts with a burst phase lasting
    ``burst_fraction`` of the cycle at ``burst_factor * qps``; the off
    phase rate is chosen so the long-run mean stays ``qps``.  Within
    each phase, arrival counts are Poisson and positions uniform (the
    standard conditional-uniformity construction), keeping the trace a
    pure function of the seed.
    """
    _check_rate(qps, duration_s)
    if burst_factor < 1:
        raise ServeError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0 < burst_fraction < 1:
        raise ServeError(
            f"burst_fraction must be in (0, 1), got {burst_fraction}"
        )
    if burst_factor * burst_fraction > 1:
        raise ServeError(
            f"burst_factor={burst_factor} with burst_fraction="
            f"{burst_fraction} would need a negative off-phase rate to "
            "keep the mean at qps; require burst_factor <= "
            f"{1.0 / burst_fraction:g}"
        )
    if not cycle_s > 0:
        raise ServeError(f"cycle_s must be > 0, got {cycle_s}")
    rate_on = qps * burst_factor
    rate_off = qps * (1.0 - burst_fraction * burst_factor) / (
        1.0 - burst_fraction
    )
    times: list[float] = []
    t0 = 0.0
    while t0 < duration_s:
        for rate, t_start, t_end in (
            (rate_on, t0, t0 + burst_fraction * cycle_s),
            (rate_off, t0 + burst_fraction * cycle_s, t0 + cycle_s),
        ):
            t_end = min(t_end, duration_s)
            span = t_end - t_start
            if span <= 0 or rate <= 0:
                continue
            count = int(rng.poisson(rate * span))
            if count:
                times.extend(
                    sorted(t_start + span * rng.random(count))
                )
        t0 += cycle_s
    return times


@dataclass(frozen=True)
class TrafficSource:
    """One stream of Llama-shaped requests against a registered model.

    Parameters
    ----------
    model:
        Registered model name the requests target.
    k:
        Activation width — must equal the registered handle's ``k``.
    rows_choices / rows_weights:
        Distribution of the per-request activation row count.
    share:
        Relative traffic share when several sources mix.
    priority:
        Priority tier tagged onto every request this source emits.
    slo_ms:
        Latency objective tagged onto every request this source emits
        (drives ``slo-edf`` scheduling and the attainment metric).
    decode_fraction:
        When set, this fraction of the source's requests is emitted
        decode-shaped — rows drawn from ``DECODE_ROWS_CHOICES`` and a
        multi-step sequence length from ``decode_steps_choices`` — and
        the rest prefill-shaped (``rows_choices``, a single step).
        ``None`` keeps the legacy single-distribution behaviour.
    decode_steps_choices:
        Sequence lengths (engine steps) of the decode-shaped requests.
    prompt_len_choices:
        When set, the source emits *model-mode* requests instead: one
        sequence per request (rows=1, metadata-only) with a prompt
        length drawn here and a generation length drawn from
        ``max_new_tokens_choices``.  The target model must be
        registered via ``register_executor``.
    max_new_tokens_choices:
        Generation lengths of model-mode requests (ignored unless
        ``prompt_len_choices`` is set).
    """

    model: str
    k: int
    rows_choices: tuple[int, ...] = DEFAULT_ROWS_CHOICES
    rows_weights: "tuple[float, ...] | None" = DEFAULT_ROWS_WEIGHTS
    share: float = 1.0
    priority: int = 0
    slo_ms: "float | None" = None
    decode_fraction: "float | None" = None
    decode_steps_choices: tuple[int, ...] = DEFAULT_DECODE_STEPS_CHOICES
    prompt_len_choices: "tuple[int, ...] | None" = None
    max_new_tokens_choices: tuple[int, ...] = (8, 16)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ServeError(f"k must be >= 1, got {self.k}")
        if not self.rows_choices or any(r < 1 for r in self.rows_choices):
            raise ServeError(f"bad rows_choices {self.rows_choices}")
        # The decode-heavy default weights only fit the default choices;
        # custom rows_choices fall back to uniform unless the caller
        # supplies matching weights explicitly.
        if (
            self.rows_weights is DEFAULT_ROWS_WEIGHTS
            and len(self.rows_choices) != len(DEFAULT_ROWS_WEIGHTS)
        ):
            object.__setattr__(self, "rows_weights", None)
        if self.rows_weights is not None and (
            len(self.rows_weights) != len(self.rows_choices)
            or any(w < 0 for w in self.rows_weights)
            or sum(self.rows_weights) <= 0
        ):
            raise ServeError(f"bad rows_weights {self.rows_weights}")
        if not self.share > 0:
            raise ServeError(f"share must be > 0, got {self.share}")
        if self.priority < 0:
            raise ServeError(f"priority must be >= 0, got {self.priority}")
        if self.slo_ms is not None and not self.slo_ms > 0:
            raise ServeError(f"slo_ms must be > 0, got {self.slo_ms}")
        if self.decode_fraction is not None and not (
            0 <= self.decode_fraction <= 1
        ):
            raise ServeError(
                f"decode_fraction must be in [0, 1], got "
                f"{self.decode_fraction}"
            )
        if not self.decode_steps_choices or any(
            s < 1 for s in self.decode_steps_choices
        ):
            raise ServeError(
                f"bad decode_steps_choices {self.decode_steps_choices}"
            )
        if self.prompt_len_choices is not None:
            if not self.prompt_len_choices or any(
                p < 1 for p in self.prompt_len_choices
            ):
                raise ServeError(
                    f"bad prompt_len_choices {self.prompt_len_choices}"
                )
            if self.decode_fraction is not None:
                raise ServeError(
                    "prompt_len_choices (model mode) and decode_fraction "
                    "(decode-shaped GEMM mode) are mutually exclusive"
                )
        if not self.max_new_tokens_choices or any(
            t < 1 for t in self.max_new_tokens_choices
        ):
            raise ServeError(
                f"bad max_new_tokens_choices {self.max_new_tokens_choices}"
            )


def generate_requests(
    sources: "list[TrafficSource] | tuple[TrafficSource, ...]",
    qps: float,
    duration_s: float,
    *,
    seed: int = 0,
    arrival: str = "poisson",
    integer_values: bool = False,
    synthesize_activations: bool = True,
    burst_factor: float = 4.0,
    burst_fraction: float = 0.25,
    cycle_s: float = 0.25,
) -> list[InferenceRequest]:
    """A full seeded request trace, sorted by arrival time.

    ``integer_values`` fills activations with small integers (exactly
    representable in float32), which makes batched-vs-individual
    execution *bitwise* comparable regardless of BLAS accumulation
    order — the correctness tests rely on it.

    ``synthesize_activations=False`` emits metadata-only requests
    (``a=None``, just ``(rows, k)``) for scheduling-only runs with
    numerics off — no point drawing and storing activation data the
    engine never reads.
    """
    if not sources:
        raise ServeError("generate_requests needs at least one TrafficSource")
    rng = np.random.default_rng(seed)
    if arrival == "poisson":
        times = poisson_arrivals(qps, duration_s, rng)
    elif arrival == "bursty":
        times = bursty_arrivals(
            qps,
            duration_s,
            rng,
            burst_factor=burst_factor,
            burst_fraction=burst_fraction,
            cycle_s=cycle_s,
        )
    else:
        raise ServeError(
            f"unknown arrival process {arrival!r}; use 'poisson' or 'bursty'"
        )

    shares = np.array([s.share for s in sources], dtype=np.float64)
    shares /= shares.sum()
    rows_weights_by_source: "list[np.ndarray | None]" = []
    for src in sources:
        if src.rows_weights is None:
            rows_weights_by_source.append(None)
        else:
            weights = np.array(src.rows_weights, dtype=np.float64)
            rows_weights_by_source.append(weights / weights.sum())
    requests: list[InferenceRequest] = []
    for i, t in enumerate(times):
        src_index = int(rng.choice(len(sources), p=shares))
        src = sources[src_index]
        if src.prompt_len_choices is not None:
            # Model mode: one sequence, metadata-only (the engine runs
            # modeled-time full-model walks, never the numerics).
            requests.append(
                InferenceRequest(
                    request_id=i,
                    model=src.model,
                    a=None,
                    arrival_s=float(t),
                    shape=(1, src.k),
                    priority=src.priority,
                    slo_ms=src.slo_ms,
                    prompt_len=int(rng.choice(src.prompt_len_choices)),
                    max_new_tokens=int(
                        rng.choice(src.max_new_tokens_choices)
                    ),
                )
            )
            continue
        steps = 1
        if src.decode_fraction is not None and (
            rng.random() < src.decode_fraction
        ):
            rows = int(rng.choice(DECODE_ROWS_CHOICES))
            steps = int(rng.choice(src.decode_steps_choices))
        else:
            rows = int(
                rng.choice(
                    src.rows_choices, p=rows_weights_by_source[src_index]
                )
            )
        tags = dict(priority=src.priority, slo_ms=src.slo_ms, steps=steps)
        if not synthesize_activations:
            requests.append(
                InferenceRequest(
                    request_id=i,
                    model=src.model,
                    a=None,
                    arrival_s=float(t),
                    shape=(rows, src.k),
                    **tags,
                )
            )
            continue
        if integer_values:
            a = rng.integers(-4, 5, size=(rows, src.k)).astype(np.float32)
        else:
            a = rng.standard_normal((rows, src.k)).astype(np.float32)
        requests.append(
            InferenceRequest(
                request_id=i, model=src.model, a=a, arrival_s=float(t), **tags
            )
        )
    return requests
