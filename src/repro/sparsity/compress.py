"""Compression of a pruned matrix B into the paper's ``(B', D)`` pair.

Fig. 1 of the paper: the N retained vectors of every pruning window are
stored contiguously in a compressed matrix ``B'[w][n]`` (``w = k*N/M``)
and the index matrix ``D[w][q]`` (``q = n/L``) records, for each
compressed row ``u`` and column window ``j``, which of the M slots the
vector came from.  The original row of compressed entry ``(u, j)`` is::

    row = (u // N) * M + D[u][j]

which is the ``u*M/N + D[u][j/L]`` indexing of Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import FP32_BYTES
from repro.errors import CompressionError, ShapeError
from repro.sparsity.config import NMPattern
from repro.sparsity.index_matrix import index_dtype_for, validate_index_matrix
from repro.sparsity.masks import (
    vector_mask_to_element_mask,
    window_indices_from_mask,
)
from repro.sparsity.pruning import magnitude_prune
from repro.utils.arrays import as_f32, pad_to_multiple
from repro.utils.validation import check_matrix

__all__ = ["NMCompressedMatrix", "compress", "decompress"]


@dataclass(frozen=True)
class NMCompressedMatrix:
    """A vector-wise N:M compressed weight matrix (``B'`` + ``D``).

    Attributes
    ----------
    pattern:
        The :class:`NMPattern` used for compression.
    values:
        ``B'`` of shape ``(w, n)`` float32 — retained vectors, window
        order preserved.
    indices:
        ``D`` of shape ``(w, q)`` in the narrowest unsigned dtype that
        holds values in ``[0, M)``.
    k:
        Row count of the original (padded) dense matrix.
    """

    pattern: NMPattern
    values: np.ndarray
    indices: np.ndarray
    k: int
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_matrix("values", self.values, dtype=np.float32)
        w, n = self.values.shape
        expected_w = self.pattern.compressed_rows(self.k)
        if w != expected_w:
            raise CompressionError(
                f"values has {w} rows but pattern expects w={expected_w} for k={self.k}"
            )
        q = self.pattern.window_count_n(n)
        if self.indices.shape != (w, q):
            raise CompressionError(
                f"indices shape {self.indices.shape} != expected (w={w}, q={q})"
            )
        validate_index_matrix(self.pattern, self.indices)

    # ------------------------------------------------------------------
    # Shape properties
    # ------------------------------------------------------------------
    @property
    def w(self) -> int:
        """Compressed row count ``k*N/M``."""
        return self.values.shape[0]

    @property
    def n(self) -> int:
        """Column count (shared with the dense original)."""
        return self.values.shape[1]

    @property
    def q(self) -> int:
        """Pruning windows per row, ``n/L``."""
        return self.indices.shape[1]

    @property
    def num_windows_k(self) -> int:
        """Pruning windows along the reduction dimension, ``k/M``."""
        return self.k // self.pattern.m

    @property
    def nnz(self) -> int:
        """Stored (retained) element count, ``w * n``."""
        return self.values.size

    # ------------------------------------------------------------------
    # Memory accounting (used by the traffic model and by Fig. 10's AI)
    # ------------------------------------------------------------------
    def values_bytes(self) -> int:
        """Bytes of B' (FP32)."""
        return self.nnz * FP32_BYTES

    def indices_bytes(self, packed: bool = False) -> int:
        """Bytes of D.  ``packed=True`` accounts at the theoretical
        ``ceil(log2 M)``-bit width of §III-B1 instead of the stored
        dtype width."""
        if packed:
            return -(-self.indices.size * self.pattern.index_bits // 8)
        return self.indices.size * self.indices.dtype.itemsize

    def total_bytes(self) -> int:
        """Total storage of the compressed representation."""
        return self.values_bytes() + self.indices_bytes()

    def compression_ratio(self) -> float:
        """Dense bytes divided by compressed bytes (> 1 is smaller)."""
        dense = self.k * self.n * FP32_BYTES
        return dense / self.total_bytes()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def window_indices(self) -> np.ndarray:
        """Indices reshaped to ``(g, N, q)``."""
        return self.indices.reshape(self.num_windows_k, self.pattern.n, self.q)

    def vector_mask(self) -> np.ndarray:
        """Recover the ``(g, M, q)`` vector mask."""
        if "vector_mask" not in self._cache:
            from repro.sparsity.masks import mask_from_indices

            self._cache["vector_mask"] = mask_from_indices(
                self.pattern, self.window_indices().astype(np.int64)
            )
        return self._cache["vector_mask"]

    def element_mask(self) -> np.ndarray:
        """Recover the ``(k, n)`` element mask."""
        return vector_mask_to_element_mask(self.pattern, self.vector_mask())

    def absolute_rows(self) -> np.ndarray:
        """``(w, q)`` original-row index of every compressed entry:
        ``(u // N) * M + D[u][j]`` (the gather rows of Eq. 1)."""
        if "absolute_rows" not in self._cache:
            u = np.arange(self.w, dtype=np.int64)[:, None]
            base = (u // self.pattern.n) * self.pattern.m
            self._cache["absolute_rows"] = base + self.indices.astype(np.int64)
        return self._cache["absolute_rows"]

    def to_dense(self) -> np.ndarray:
        """Decompress back to the pruned dense ``(k, n)`` matrix."""
        return decompress(self)

    def __repr__(self) -> str:
        return (
            f"NMCompressedMatrix(pattern={self.pattern.label()}, "
            f"w={self.w}, n={self.n}, k={self.k})"
        )


def compress(
    pattern: NMPattern,
    b: np.ndarray,
    vector_mask: np.ndarray | None = None,
    *,
    pad: bool = True,
) -> NMCompressedMatrix:
    """Compress a dense matrix ``b`` under ``pattern``.

    When ``vector_mask`` is None the mask is derived by vector-wise
    magnitude pruning (:func:`repro.sparsity.pruning.magnitude_prune`).
    Vectors *not* selected by the mask are discarded regardless of their
    values, so callers should prune (or accept pruning) first.
    """
    b = as_f32(check_matrix("b", b))
    if pad:
        b = pad_to_multiple(b, pattern.m, pattern.vector_length)
    k, n = b.shape
    if k % pattern.m != 0 or n % pattern.vector_length != 0:
        raise ShapeError(
            f"b shape {b.shape} not divisible by (M={pattern.m}, "
            f"L={pattern.vector_length}); pass pad=True"
        )
    if vector_mask is None:
        vector_mask = magnitude_prune(pattern, b)
    indices = window_indices_from_mask(pattern, vector_mask)  # (g, N, q)
    g, _, q = indices.shape
    windows = b.reshape(g, pattern.m, q, pattern.vector_length)
    gathered = np.take_along_axis(windows, indices[:, :, :, None], axis=1)
    values = np.ascontiguousarray(
        gathered.reshape(g * pattern.n, q * pattern.vector_length), dtype=np.float32
    )
    d = indices.reshape(g * pattern.n, q).astype(index_dtype_for(pattern.m))
    return NMCompressedMatrix(pattern=pattern, values=values, indices=d, k=k)


def decompress(compressed: NMCompressedMatrix) -> np.ndarray:
    """Expand ``(B', D)`` back to the pruned dense ``(k, n)`` matrix —
    the exact inverse of :func:`compress` on pruned input."""
    pattern = compressed.pattern
    g, q = compressed.num_windows_k, compressed.q
    values = compressed.values.reshape(g, pattern.n, q, pattern.vector_length)
    indices = compressed.window_indices().astype(np.int64)
    out = np.zeros(
        (g, pattern.m, q, pattern.vector_length), dtype=compressed.values.dtype
    )
    np.put_along_axis(out, indices[:, :, :, None], values, axis=1)
    return out.reshape(compressed.k, compressed.n)
