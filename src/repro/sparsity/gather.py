"""Precomputed gather layout for the fast execution backend.

Paper §III-B2: once the retained A columns of a column window are
gathered into ``Ar``, "the innermost computation for the thread
transforms into a general matrix multiplication".  The structural
executors re-derive the gather rows from ``D`` on every call; the fast
backend instead freezes them once, at :meth:`NMSpMM.prepare` time, into
a :class:`GatherLayout`:

* ``rows[jq]`` — the absolute A rows window ``jq`` gathers, laid out
  ``(q, w)`` so each window's index list is contiguous;
* ``values[jq]`` — the matching ``(w, L)`` slice of ``B'``, laid out
  ``(q, w, L)`` so the whole product is one batched GEMM over ``q``.

This is the same offline/online split VENOM-style libraries apply to
their sparse formats: pay the layout conversion once per weight matrix,
then execute every batch as dense-GEMM-shaped work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompressionError
from repro.sparsity.compress import NMCompressedMatrix
from repro.sparsity.config import NMPattern

__all__ = ["GatherLayout", "build_gather_layout"]


@dataclass(frozen=True)
class GatherLayout:
    """The fast backend's frozen view of a compressed matrix.

    Attributes
    ----------
    pattern:
        The :class:`NMPattern` the source matrix was compressed under.
    rows:
        ``(q, w)`` integer — absolute A-row index of every compressed
        entry, window-major (``rows[jq, u] == (u // N) * M + D[u, jq]``).
        Built int32 whenever ``k`` fits (every realistic problem),
        halving the layout's index memory versus int64.
    values:
        ``(q, w, L)`` float32 — ``B'`` resliced per column window so
        window ``jq``'s GEMM operand ``values[jq]`` is contiguous.
    k:
        Padded reduction dimension of the source matrix.
    """

    pattern: NMPattern
    rows: np.ndarray
    values: np.ndarray
    k: int

    def __post_init__(self) -> None:
        if self.values.ndim != 3:
            raise CompressionError(
                f"values must be (q, w, L), got shape {self.values.shape}"
            )
        if self.values.dtype != np.float32:
            raise CompressionError(
                f"values must be float32 (the kernels' only dtype), got "
                f"{self.values.dtype}"
            )
        if not np.issubdtype(self.rows.dtype, np.integer):
            raise CompressionError(
                f"rows must be an integer dtype, got {self.rows.dtype}"
            )
        q, w, ell = self.values.shape
        if ell != self.pattern.vector_length:
            raise CompressionError(
                f"values blocks are {ell} wide but the pattern's vector "
                f"length is {self.pattern.vector_length}"
            )
        if self.rows.shape != (q, w):
            raise CompressionError(
                f"rows shape {self.rows.shape} != expected (q={q}, w={w})"
            )
        if w != self.pattern.compressed_rows(self.k):
            raise CompressionError(
                f"layout has w={w} compressed rows but the pattern "
                f"expects {self.pattern.compressed_rows(self.k)} for "
                f"k={self.k}"
            )
        if self.rows.size and (
            int(self.rows.min()) < 0 or int(self.rows.max()) >= self.k
        ):
            raise CompressionError(
                f"gather rows must lie in [0, k={self.k})"
            )

    # ------------------------------------------------------------------
    @property
    def q(self) -> int:
        """Column windows, ``n / L``."""
        return self.values.shape[0]

    @property
    def w(self) -> int:
        """Compressed rows, ``k * N / M``."""
        return self.values.shape[1]

    @property
    def n(self) -> int:
        """Output columns the layout produces."""
        return self.q * self.pattern.vector_length

    def nbytes(self) -> int:
        """Resident bytes of the layout (values + gather indices)."""
        return self.values.nbytes + self.rows.nbytes

    def overhead_vs_compressed(self, compressed: NMCompressedMatrix) -> float:
        """Layout bytes relative to the ``(B', D)`` pair it was built
        from (the cost of caching it on a handle)."""
        return self.nbytes() / max(1, compressed.total_bytes())


def build_gather_layout(compressed: NMCompressedMatrix) -> GatherLayout:
    """Convert ``(B', D)`` into the fast backend's batched-GEMM layout.

    Runs once per prepared weight matrix; the result depends only on
    the compressed matrix, never on the activations.
    """
    pattern = compressed.pattern
    ell = pattern.vector_length
    # (w, q) absolute rows -> window-major (q, w), each window's gather
    # list contiguous for the fancy-index in the fast kernel.  Row
    # indices live in [0, k), so int32 suffices unless k overflows it;
    # the narrower dtype halves the layout's resident index bytes.
    rows_dtype = (
        np.int32 if compressed.k <= np.iinfo(np.int32).max else np.int64
    )
    rows = np.ascontiguousarray(
        compressed.absolute_rows().T, dtype=rows_dtype
    )
    # (w, n) values -> (w, q, L) window slices -> window-major (q, w, L)
    # so values[jq] is the dense GEMM operand of window jq.
    values = np.ascontiguousarray(
        compressed.values.reshape(compressed.w, compressed.q, ell)
        .transpose(1, 0, 2)
    )
    return GatherLayout(
        pattern=pattern, rows=rows, values=values, k=compressed.k
    )
