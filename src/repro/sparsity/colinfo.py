"""Offline pre-processing for the high-sparsity packing strategy.

Paper §III-C1 / Fig. 4 / Listing 3 ``PreProcessing``: before launching
the packed kernel we compute, per (k-block, n-block) tile of the
compressed matrix:

1. ``col_info`` — the sorted set of A-tile columns actually touched by
   the tile's pruning windows (``queryColInfo``);
2. a *reordered* index matrix whose entries address positions inside
   the packed A tile rather than slots of the pruning window
   (``reoderingIdx``);
3. an interleaved data layout for D to coalesce global memory
   transactions (``transformLayout``).

During online computation the kernel packs ``As`` through ``col_info``,
shrinking its shared-memory footprint from ``ms*ks`` towards
``ms*ws`` and raising arithmetic intensity (the V2 optimization).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FP32_BYTES
from repro.errors import CompressionError
from repro.sparsity.compress import NMCompressedMatrix
from repro.sparsity.config import NMPattern
from repro.utils.intmath import ceil_div

__all__ = [
    "ColumnInfo",
    "preprocess_offline",
    "query_col_info",
    "expected_packed_fraction",
    "packed_fraction_bounds",
]


def expected_packed_fraction(pattern: NMPattern, qs: int) -> float:
    """Expected fraction of A-tile columns needed after packing, under
    uniformly random independent window patterns.

    Each of the ``qs`` pruning windows in a tile row keeps ``N`` of the
    ``M`` slots, so a slot survives none of them with probability
    ``(1 - N/M)^qs``; the expected packed width is therefore
    ``M * (1 - (1 - N/M)^qs)`` per window, i.e. this fraction of ks.
    """
    if qs <= 0:
        raise ValueError(f"qs must be positive, got {qs}")
    return 1.0 - (1.0 - pattern.density) ** qs


def packed_fraction_bounds(pattern: NMPattern, qs: int) -> tuple[float, float]:
    """(best, worst) packed-column fraction.

    Best case — all ``qs`` windows share one pattern — needs only
    ``N/M`` of the columns (§III-C1: "When the pattern of each pruning
    window is identical, the memory access minimize to N/M").  Worst
    case — fully disjoint patterns — needs ``min(1, qs*N/M)``.
    """
    best = pattern.density
    worst = min(1.0, qs * pattern.density)
    return best, worst


def query_col_info(
    pattern: NMPattern, d_tile: np.ndarray, base_row: int
) -> tuple[np.ndarray, np.ndarray]:
    """Compute ``col_info`` and the reordered local indices for one
    tile of D.

    Parameters
    ----------
    d_tile:
        ``(ws_b, qs_b)`` slice of the index matrix (rows ``base_row``
        onward).
    base_row:
        First compressed row of the tile (must be window-aligned,
        i.e. a multiple of N).

    Returns
    -------
    cols:
        Sorted unique tile-relative A columns (int32), the packed
        column order.
    local:
        ``(ws_b, qs_b)`` int32 — each entry rewritten as its position
        in ``cols`` (the ``reoderingIdx`` output).
    """
    if base_row % pattern.n != 0:
        raise CompressionError(
            f"tile base row {base_row} is not aligned to N={pattern.n}"
        )
    ws_b = d_tile.shape[0]
    u = base_row + np.arange(ws_b, dtype=np.int64)[:, None]
    tile_k_origin = (base_row // pattern.n) * pattern.m
    rel_rows = (u // pattern.n) * pattern.m - tile_k_origin + d_tile.astype(np.int64)
    cols = np.unique(rel_rows)
    local = np.searchsorted(cols, rel_rows).astype(np.int32)
    return cols.astype(np.int32), local


@dataclass(frozen=True)
class ColumnInfo:
    """Per-tile packing metadata for a compressed matrix.

    ``cols[kb][jb]`` holds the packed column list for k-block ``kb`` and
    n-block ``jb``; ``local_d[kb][jb]`` the reordered index tile whose
    entries address rows of the *packed* A tile.
    """

    pattern: NMPattern
    ws: int
    ns: int
    cols: tuple[tuple[np.ndarray, ...], ...]
    local_d: tuple[tuple[np.ndarray, ...], ...]

    @property
    def num_k_blocks(self) -> int:
        return len(self.cols)

    @property
    def num_n_blocks(self) -> int:
        return len(self.cols[0]) if self.cols else 0

    def packed_width(self, kb: int, jb: int) -> int:
        """Packed A-tile column count for tile (kb, jb)."""
        return int(self.cols[kb][jb].size)

    def max_packed_width(self) -> int:
        """Worst packed width over all tiles (shared-memory sizing)."""
        return max(
            (int(c.size) for row in self.cols for c in row),
            default=0,
        )

    def mean_packed_fraction(self, ks: int) -> float:
        """Average packed width divided by the unpacked tile width."""
        widths = [int(c.size) for row in self.cols for c in row]
        if not widths or ks == 0:
            return 0.0
        return float(np.mean(widths)) / ks

    def col_info_bytes(self) -> int:
        """Extra global memory the packing metadata occupies — the
        paper bounds this at "1% to 10% GPU memory overhead"."""
        return sum(int(c.size) * FP32_BYTES for row in self.cols for c in row)

    def overhead_vs_values(self, compressed: NMCompressedMatrix) -> float:
        """col_info bytes relative to B' bytes (the paper's overhead
        metric)."""
        return self.col_info_bytes() / max(1, compressed.values_bytes())


def preprocess_offline(
    compressed: NMCompressedMatrix, ws: int, ns: int
) -> ColumnInfo:
    """Run the full offline pre-processing pass of Listing 3 for a
    ``(ws, ns)`` block decomposition of the compressed matrix."""
    pattern = compressed.pattern
    if ws % pattern.n != 0:
        raise CompressionError(
            f"ws={ws} must be a multiple of N={pattern.n} so pruning windows "
            "do not straddle block boundaries"
        )
    if ns % pattern.vector_length != 0:
        raise CompressionError(
            f"ns={ns} must be a multiple of L={pattern.vector_length}"
        )
    w, n = compressed.w, compressed.n
    qs = ns // pattern.vector_length
    num_kb = ceil_div(w, ws)
    num_jb = ceil_div(n, ns)
    cols_rows: list[tuple[np.ndarray, ...]] = []
    local_rows: list[tuple[np.ndarray, ...]] = []
    for kb in range(num_kb):
        u0 = kb * ws
        u1 = min(u0 + ws, w)
        cols_row: list[np.ndarray] = []
        local_row: list[np.ndarray] = []
        for jb in range(num_jb):
            j0 = jb * qs
            j1 = min(j0 + qs, compressed.q)
            d_tile = compressed.indices[u0:u1, j0:j1]
            cols, local = query_col_info(pattern, d_tile, u0)
            cols_row.append(cols)
            local_row.append(local)
        cols_rows.append(tuple(cols_row))
        local_rows.append(tuple(local_row))
    return ColumnInfo(
        pattern=pattern,
        ws=ws,
        ns=ns,
        cols=tuple(cols_rows),
        local_d=tuple(local_rows),
    )
