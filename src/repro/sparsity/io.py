"""Persistence for compressed weights (deployment format).

A pruned model ships as its ``(B', D)`` pairs; this module stores an
:class:`NMCompressedMatrix` (plus its pattern) in a single ``.npz``
archive and restores it losslessly — the artifact an inference server
would load at startup, skipping the offline pruning pass.

Format (npz keys):

* ``values``   — ``B'`` float32 ``(w, n)``;
* ``indices``  — ``D`` unsigned ``(w, q)``;
* ``meta``     — int64 ``[n, m, vector_length, k, format_version]``.
"""

from __future__ import annotations

import io as _io
import pathlib

import numpy as np

from repro.errors import CompressionError
from repro.sparsity.compress import NMCompressedMatrix
from repro.sparsity.config import NMPattern

__all__ = ["save_compressed", "load_compressed", "FORMAT_VERSION"]

#: Bumped on any incompatible layout change.
FORMAT_VERSION = 1


def save_compressed(
    path: "str | pathlib.Path | _io.IOBase",
    compressed: NMCompressedMatrix,
) -> None:
    """Write a compressed matrix to ``path`` (``.npz``)."""
    meta = np.array(
        [
            compressed.pattern.n,
            compressed.pattern.m,
            compressed.pattern.vector_length,
            compressed.k,
            FORMAT_VERSION,
        ],
        dtype=np.int64,
    )
    np.savez_compressed(
        path,
        values=compressed.values,
        indices=compressed.indices,
        meta=meta,
    )


def load_compressed(
    path: "str | pathlib.Path | _io.IOBase",
) -> NMCompressedMatrix:
    """Read a compressed matrix written by :func:`save_compressed`.

    Validates the format version and every structural invariant (the
    constructor re-checks shapes and index ranges), so a corrupted or
    tampered archive fails loudly instead of producing wrong numerics.
    """
    with np.load(path) as archive:
        try:
            values = archive["values"]
            indices = archive["indices"]
            meta = archive["meta"]
        except KeyError as exc:
            raise CompressionError(f"archive is missing key {exc}") from exc
    if meta.shape != (5,):
        raise CompressionError(f"malformed meta block: shape {meta.shape}")
    n, m, ell, k, version = (int(v) for v in meta)
    if version != FORMAT_VERSION:
        raise CompressionError(
            f"unsupported format version {version} (expected {FORMAT_VERSION})"
        )
    pattern = NMPattern(n, m, vector_length=ell)
    return NMCompressedMatrix(
        pattern=pattern,
        values=np.ascontiguousarray(values, dtype=np.float32),
        indices=np.ascontiguousarray(indices),
        k=k,
    )
