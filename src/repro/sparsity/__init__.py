"""Vector-wise N:M sparsity format substrate.

This subpackage implements the paper's sparse representation end to
end: the ``(N, M, L)`` pattern definition (Fig. 1), vector-wise
magnitude pruning, compression of a dense weight matrix ``B`` into the
``(B', D)`` pair of Eq. 1, the offline pre-processing of Fig. 4
(``col_info`` extraction, index reordering, layout transform), the
online packing of A tiles, and the Eq. 2 quality metrics.
"""

from repro.sparsity.config import NMPattern, sparsity_ratio
from repro.sparsity.masks import (
    is_valid_nm_mask,
    mask_from_indices,
    random_nm_mask,
    vector_mask_to_element_mask,
    window_indices_from_mask,
)
from repro.sparsity.pruning import magnitude_prune, prune_dense
from repro.sparsity.compress import NMCompressedMatrix, compress, decompress
from repro.sparsity.index_matrix import (
    absolute_rows,
    index_bits,
    index_dtype_for,
    validate_index_matrix,
)
from repro.sparsity.colinfo import ColumnInfo, preprocess_offline, query_col_info
from repro.sparsity.gather import GatherLayout, build_gather_layout
from repro.sparsity.packing import pack_a_tile, packed_footprint_columns
from repro.sparsity.quality import (
    confusion_matrix,
    mean_abs_error,
    pruning_energy_kept,
    relative_frobenius_error,
)
from repro.sparsity.permutation import (
    PermutationResult,
    apply_permutation,
    greedy_channel_permutation,
    retained_energy,
)
from repro.sparsity.transposable import is_transposable_mask, transposable_mask

__all__ = [
    "NMPattern",
    "sparsity_ratio",
    "random_nm_mask",
    "mask_from_indices",
    "vector_mask_to_element_mask",
    "is_valid_nm_mask",
    "window_indices_from_mask",
    "magnitude_prune",
    "prune_dense",
    "NMCompressedMatrix",
    "compress",
    "decompress",
    "index_dtype_for",
    "index_bits",
    "validate_index_matrix",
    "absolute_rows",
    "ColumnInfo",
    "preprocess_offline",
    "query_col_info",
    "GatherLayout",
    "build_gather_layout",
    "pack_a_tile",
    "packed_footprint_columns",
    "confusion_matrix",
    "mean_abs_error",
    "relative_frobenius_error",
    "pruning_energy_kept",
    "PermutationResult",
    "greedy_channel_permutation",
    "apply_permutation",
    "retained_energy",
    "transposable_mask",
    "is_transposable_mask",
]
