"""Vector-wise N:M mask construction and validation.

Masks come in two granularities:

* **vector masks** of shape ``(g, M, q)`` — one boolean per vector slot,
  where ``g = k/M`` windows along the reduction dimension and
  ``q = n/L`` pruning windows along the row direction;
* **element masks** of shape ``(k, n)`` — the expansion to B's layout.

``window_indices`` of shape ``(g, N, q)`` hold, per window, the sorted
positions (in ``[0, M)``) of the retained vectors; stacking them along
``g`` yields exactly the paper's index matrix ``D[w][q]`` with
``w = g*N`` (Fig. 1).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PatternError, ShapeError
from repro.sparsity.config import NMPattern
from repro.utils.validation import check_matrix

__all__ = [
    "random_nm_mask",
    "mask_from_indices",
    "vector_mask_to_element_mask",
    "is_valid_nm_mask",
    "window_indices_from_mask",
]


def _window_geometry(pattern: NMPattern, k: int, n: int) -> tuple[int, int]:
    """Return ``(g, q)`` window counts, requiring exact divisibility."""
    if k % pattern.m != 0:
        raise ShapeError(f"k={k} must be a multiple of M={pattern.m} (pad first)")
    if n % pattern.vector_length != 0:
        raise ShapeError(
            f"n={n} must be a multiple of L={pattern.vector_length} (pad first)"
        )
    return k // pattern.m, n // pattern.vector_length


def random_nm_mask(
    pattern: NMPattern,
    k: int,
    n: int,
    rng: np.random.Generator | None = None,
    *,
    seed: int = 0,
) -> np.ndarray:
    """Draw a uniformly random valid vector mask of shape ``(g, M, q)``.

    Each window independently keeps a uniformly random subset of N of
    its M vector slots — the distribution the paper's benchmarks use
    for synthetic weights.  With no ``rng``, draws come from
    ``default_rng(seed)`` (seed 0, like :mod:`repro.workloads.synthetic`)
    so mask generation is reproducible by default; it used to fall back
    to an *unseeded* generator, which repro-lint DET001 now forbids.
    """
    g, q = _window_geometry(pattern, k, n)
    rng = rng if rng is not None else np.random.default_rng(seed)
    # Argsort of random keys picks N distinct slots per (window, column
    # window) pair without a Python loop.
    keys = rng.random((g, pattern.m, q))
    order = np.argsort(keys, axis=1)
    ranks = np.argsort(order, axis=1)
    return ranks < pattern.n


def mask_from_indices(pattern: NMPattern, indices: np.ndarray) -> np.ndarray:
    """Build a ``(g, M, q)`` vector mask from ``(g, N, q)`` window
    indices (inverse of :func:`window_indices_from_mask`)."""
    indices = np.asarray(indices)
    if indices.ndim != 3 or indices.shape[1] != pattern.n:
        raise ShapeError(
            f"indices must have shape (g, N={pattern.n}, q), got {indices.shape}"
        )
    if indices.size and (indices.min() < 0 or indices.max() >= pattern.m):
        raise PatternError(
            f"window indices must lie in [0, M={pattern.m}), "
            f"got range [{indices.min()}, {indices.max()}]"
        )
    g, _, q = indices.shape
    mask = np.zeros((g, pattern.m, q), dtype=bool)
    gi = np.arange(g)[:, None, None]
    qi = np.arange(q)[None, None, :]
    mask[gi, indices, qi] = True
    # Duplicate indices within a window would silently drop a vector.
    if mask.sum() != indices.size:
        raise PatternError("window indices contain duplicates within a window")
    return mask


def vector_mask_to_element_mask(pattern: NMPattern, vector_mask: np.ndarray) -> np.ndarray:
    """Expand a ``(g, M, q)`` vector mask to a ``(k, n)`` element mask."""
    vector_mask = np.asarray(vector_mask, dtype=bool)
    if vector_mask.ndim != 3 or vector_mask.shape[1] != pattern.m:
        raise ShapeError(
            f"vector_mask must have shape (g, M={pattern.m}, q), got {vector_mask.shape}"
        )
    g, _, q = vector_mask.shape
    k, n = g * pattern.m, q * pattern.vector_length
    # (g, M, q) -> (g*M, q) -> repeat each column-window L times -> (k, n)
    flat = vector_mask.reshape(k, q)
    return np.repeat(flat, pattern.vector_length, axis=1).reshape(k, n)


def window_indices_from_mask(pattern: NMPattern, vector_mask: np.ndarray) -> np.ndarray:
    """Extract sorted ``(g, N, q)`` window indices from a vector mask.

    Raises :class:`PatternError` if any window does not keep exactly N
    vectors.
    """
    vector_mask = np.asarray(vector_mask, dtype=bool)
    if vector_mask.ndim != 3 or vector_mask.shape[1] != pattern.m:
        raise ShapeError(
            f"vector_mask must have shape (g, M={pattern.m}, q), got {vector_mask.shape}"
        )
    counts = vector_mask.sum(axis=1)
    if not np.all(counts == pattern.n):
        bad = np.argwhere(counts != pattern.n)
        gi, qi = bad[0]
        raise PatternError(
            f"window (g={gi}, q={qi}) keeps {counts[gi, qi]} vectors, "
            f"expected N={pattern.n}"
        )
    g, m, q = vector_mask.shape
    # argsort(~mask) is stable, so kept slots (False keys) come first in
    # ascending position order.
    order = np.argsort(~vector_mask, axis=1, kind="stable")
    return order[:, : pattern.n, :].astype(np.int64)


def is_valid_nm_mask(pattern: NMPattern, element_mask: np.ndarray) -> bool:
    """Check whether a ``(k, n)`` element mask obeys the vector-wise
    N:M constraint of ``pattern``.

    Validity requires (a) each L-wide vector is kept or dropped as a
    unit and (b) every (M-vector, L-column) window keeps exactly N.
    """
    element_mask = check_matrix("element_mask", np.asarray(element_mask, dtype=bool))
    k, n = element_mask.shape
    if k % pattern.m != 0 or n % pattern.vector_length != 0:
        return False
    g = k // pattern.m
    q = n // pattern.vector_length
    windows = element_mask.reshape(g, pattern.m, q, pattern.vector_length)
    # (a) constant within each vector
    if not np.all(windows.all(axis=3) == windows.any(axis=3)):
        return False
    # (b) exactly N kept per window
    vector_mask = windows.any(axis=3)
    return bool(np.all(vector_mask.sum(axis=1) == pattern.n))
