"""Online packing of A tiles (the high-sparsity load path).

Listing 3 ``LoadTileByColInfo``: instead of staging the full
``ms x ks`` slice of A into shared memory, the packed kernel gathers
only the columns named by ``col_info``, shrinking the footprint toward
``ms x ws`` and eliminating redundant global reads of A (§III-C1).
"""

from __future__ import annotations

import numpy as np

from repro.sparsity.colinfo import expected_packed_fraction
from repro.sparsity.config import NMPattern
from repro.utils.validation import check_matrix

__all__ = ["pack_a_tile", "packed_footprint_columns", "packed_tile_bytes"]


def pack_a_tile(a_tile: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Gather the ``cols`` columns of an A tile.

    ``a_tile`` is the ``(ms, ks)`` slice of A for the current block and
    ``cols`` the sorted tile-relative column list from
    :func:`repro.sparsity.colinfo.query_col_info`.
    """
    check_matrix("a_tile", a_tile)
    cols = np.asarray(cols)
    if cols.ndim != 1:
        raise ValueError(f"cols must be 1-D, got shape {cols.shape}")
    if cols.size and (cols.min() < 0 or cols.max() >= a_tile.shape[1]):
        raise ValueError(
            f"cols out of range [0, {a_tile.shape[1]}): "
            f"[{cols.min()}, {cols.max()}]"
        )
    return np.ascontiguousarray(a_tile[:, cols])


def packed_footprint_columns(pattern: NMPattern, ks: int, qs: int) -> int:
    """Expected packed column count for a ``(ks, qs)`` tile under
    random window patterns — the performance model's estimate of the
    packed A footprint (measured widths come from
    :class:`~repro.sparsity.colinfo.ColumnInfo`)."""
    if ks % pattern.m != 0:
        raise ValueError(f"ks={ks} must be a multiple of M={pattern.m}")
    frac = expected_packed_fraction(pattern, qs)
    return max(1, round(ks * frac))


def packed_tile_bytes(
    pattern: NMPattern, ms: int, ks: int, qs: int, *, dtype_bytes: int = 4
) -> int:
    """Expected bytes of a packed A tile in shared memory."""
    return ms * packed_footprint_columns(pattern, ks, qs) * dtype_bytes
