"""Transposable N:M masks (Hubara et al., NeurIPS'21 — paper ref [36]).

A transposable mask satisfies the N:M constraint along *both* the
rows and the columns of every ``M x M`` tile, so the same mask
accelerates the forward pass (``W``) and the backward pass (``W^T``).
The paper cites this line of work as directly composable with its
kernels ("we can combine it with these works", §II-B); this module
provides the mask search at element granularity (``vector_length=1``)
so a training loop built on :mod:`repro.nn` could adopt it.

The search is the standard greedy-with-repair scheme: greedily take
the largest-magnitude entries subject to row/column budgets, then
repair short rows/columns from the remaining capacity.  The result is
always a valid doubly-constrained mask (property-tested); optimality
is not guaranteed (the exact problem is an assignment LP).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PatternError, ShapeError
from repro.sparsity.config import NMPattern
from repro.utils.validation import check_matrix

__all__ = [
    "transposable_mask",
    "is_transposable_mask",
    "transposable_pattern_check",
]


def transposable_pattern_check(pattern: NMPattern) -> None:
    """Transposable masks are defined for element-granular patterns."""
    if pattern.vector_length != 1:
        raise PatternError(
            "transposable masks require vector_length == 1 "
            f"(got L={pattern.vector_length})"
        )


def _tile_mask(tile: np.ndarray, n: int, m: int) -> np.ndarray:
    """Greedy + repair transposable mask for one ``m x m`` tile."""
    mag = np.abs(tile)
    mask = np.zeros((m, m), dtype=bool)
    row_left = np.full(m, n)
    col_left = np.full(m, n)
    # Greedy phase: largest magnitudes first, respecting both budgets.
    order = np.argsort(-mag, axis=None)
    for flat in order:
        r, c = divmod(int(flat), m)
        if row_left[r] > 0 and col_left[c] > 0:
            mask[r, c] = True
            row_left[r] -= 1
            col_left[c] -= 1
    # Repair phase: some rows/columns may still be short because the
    # greedy choices exhausted their partners.  Fill deficits by
    # augmenting along rows with remaining capacity.
    for r in range(m):
        while row_left[r] > 0:
            # pick the available column with capacity and the largest
            # magnitude in this row
            candidates = np.where(~mask[r] & (col_left > 0))[0]
            if candidates.size == 0:
                # swap: find a column c where this row is unset, and a
                # row r2 that over-serves c... guaranteed to exist by a
                # counting argument; fall back to any unset column and
                # rebalance.
                c = int(np.where(~mask[r])[0][0])
                donors = np.where(mask[:, c] & (mask.sum(axis=1) > n - row_left[r]))[0]
                # pick a donor row that can give up c and take another
                donor = None
                for r2 in donors:
                    alt = np.where(~mask[r2] & (col_left > 0))[0]
                    if alt.size:
                        donor = (int(r2), int(alt[np.argmax(mag[r2, alt])]))
                        break
                if donor is None:
                    raise PatternError(
                        "transposable repair failed; tile is degenerate"
                    )
                r2, c2 = donor
                mask[r2, c] = False
                mask[r2, c2] = True
                col_left[c2] -= 1
                col_left[c] += 1
                candidates = np.array([c])
            c = int(candidates[np.argmax(mag[r, candidates])])
            mask[r, c] = True
            row_left[r] -= 1
            col_left[c] -= 1
    return mask


def transposable_mask(pattern: NMPattern, b: np.ndarray) -> np.ndarray:
    """Build a transposable element mask for ``b``.

    Returns a ``(k, n)`` boolean mask where every ``M x M`` tile keeps
    exactly ``N`` entries per row *and* per column.
    """
    transposable_pattern_check(pattern)
    b = check_matrix("b", b)
    k, n_cols = b.shape
    m = pattern.m
    if k % m != 0 or n_cols % m != 0:
        raise ShapeError(
            f"b shape {b.shape} must tile into {m}x{m} blocks; pad first"
        )
    mask = np.zeros_like(b, dtype=bool)
    for r0 in range(0, k, m):
        for c0 in range(0, n_cols, m):
            mask[r0 : r0 + m, c0 : c0 + m] = _tile_mask(
                b[r0 : r0 + m, c0 : c0 + m], pattern.n, m
            )
    return mask


def is_transposable_mask(pattern: NMPattern, mask: np.ndarray) -> bool:
    """Check the double N:M constraint on every ``M x M`` tile."""
    transposable_pattern_check(pattern)
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        return False
    k, n_cols = mask.shape
    m = pattern.m
    if k % m != 0 or n_cols % m != 0:
        return False
    tiles = mask.reshape(k // m, m, n_cols // m, m)
    rows_ok = np.all(tiles.sum(axis=3) == pattern.n)
    cols_ok = np.all(tiles.sum(axis=1) == pattern.n)
    return bool(rows_ok and cols_ok)
