"""Index-matrix (D) handling: dtype sizing, validation, layouts.

§III-B1: "the index matrix D only needs to provide the position of
each retained vector within the pruning window, each element requires
only ``log2 M`` bits".  We store D in the narrowest NumPy unsigned
dtype that fits and account the theoretical bit-packed size separately
for the memory model.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError
from repro.sparsity.config import NMPattern
from repro.utils.intmath import bits_required

__all__ = [
    "index_dtype_for",
    "index_bits",
    "validate_index_matrix",
    "absolute_rows",
    "interleave_layout",
    "deinterleave_layout",
]


def index_bits(m: int) -> int:
    """Theoretical bits per D entry for window size ``m``."""
    return bits_required(m)


def index_dtype_for(m: int) -> np.dtype:
    """Narrowest unsigned dtype holding indices in ``[0, m)``.

    >>> index_dtype_for(32)
    dtype('uint8')
    """
    bits = index_bits(m)
    if bits <= 8:
        return np.dtype(np.uint8)
    if bits <= 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def validate_index_matrix(pattern: NMPattern, d: np.ndarray) -> None:
    """Validate shape-independent invariants of an index matrix D:

    * entries lie in ``[0, M)``;
    * within each window (each group of N consecutive rows), the
      indices of every column window are strictly increasing — the
      canonical order produced by compression, which the packed kernel
      relies on for monotone gathers.
    """
    if d.ndim != 2:
        raise CompressionError(f"D must be 2-D, got shape {d.shape}")
    w = d.shape[0]
    if w % pattern.n != 0:
        raise CompressionError(
            f"D has {w} rows which is not a multiple of N={pattern.n}"
        )
    if d.size == 0:
        return
    if int(d.min()) < 0 or int(d.max()) >= pattern.m:
        raise CompressionError(
            f"D entries must lie in [0, M={pattern.m}), got range "
            f"[{int(d.min())}, {int(d.max())}]"
        )
    if pattern.n > 1:
        grouped = d.reshape(w // pattern.n, pattern.n, d.shape[1]).astype(np.int64)
        if not np.all(np.diff(grouped, axis=1) > 0):
            raise CompressionError(
                "D window indices must be strictly increasing within each window"
            )


def absolute_rows(pattern: NMPattern, d: np.ndarray) -> np.ndarray:
    """``(w, q)`` original-row indices: ``(u // N) * M + D[u][j]``."""
    u = np.arange(d.shape[0], dtype=np.int64)[:, None]
    return (u // pattern.n) * pattern.m + d.astype(np.int64)


def interleave_layout(pattern: NMPattern, d: np.ndarray, group: int = 4) -> np.ndarray:
    """Layout transform of §III-C1 / Fig. 4 ("transform the data layout
    of matrix D to reduce the number of global memory transactions").

    Rows of D are re-ordered so that the ``group`` rows a warp fetches
    together become contiguous: rows are taken in round-robin order
    across ``group`` interleaved strips.  The transform is a pure
    permutation; :func:`deinterleave_layout` inverts it.
    """
    w = d.shape[0]
    if group <= 1 or w % group != 0:
        return d.copy()
    perm = interleave_permutation(w, group)
    return d[perm]


def deinterleave_layout(pattern: NMPattern, d: np.ndarray, group: int = 4) -> np.ndarray:
    """Inverse of :func:`interleave_layout`."""
    w = d.shape[0]
    if group <= 1 or w % group != 0:
        return d.copy()
    perm = interleave_permutation(w, group)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(w)
    return d[inverse]


def interleave_permutation(w: int, group: int) -> np.ndarray:
    """Row permutation used by :func:`interleave_layout`: element ``i``
    of the result names the source row placed at position ``i``."""
    strip = w // group
    return (np.arange(w) % group) * strip + (np.arange(w) // group)
