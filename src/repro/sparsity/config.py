"""The N:M sparsity pattern definition.

The paper adopts a *vector-wise* N:M pattern (Fig. 1): matrix
``B[k][n]`` is cut along the ``k`` dimension into *pruning windows* of
``M`` consecutive vectors, each vector being ``L`` contiguous elements
of a row (so a window spans ``M`` rows by ``L`` columns).  ``N`` of the
``M`` vectors in every window are retained.

``NMPattern`` carries ``(n, m, vector_length)`` plus the derived
quantities the kernels and the performance model need:

* ``sparsity = 1 - N/M``       (fraction of B removed)
* ``density  = N/M``           (fraction of B kept, the compute ratio)
* ``w(k)     = k*N/M``         (compressed row count of B')
* ``q(n)     = n/L``           (pruning windows per row block)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import HIGH_SPARSITY_THRESHOLD
from repro.errors import PatternError
from repro.utils.intmath import bits_required, ceil_div
from repro.utils.validation import check_positive_int

__all__ = ["NMPattern", "sparsity_ratio"]


def sparsity_ratio(n: int, m: int) -> float:
    """Sparsity of an N:M pattern, ``1 - N/M`` (paper §III-A).

    >>> sparsity_ratio(2, 4)
    0.5
    """
    n = check_positive_int("n", n)
    m = check_positive_int("m", m)
    if n > m:
        raise PatternError(f"N ({n}) cannot exceed M ({m})")
    return 1.0 - n / m


@dataclass(frozen=True, slots=True)
class NMPattern:
    """A vector-wise N:M sparsity pattern.

    Parameters
    ----------
    n:
        Vectors retained per pruning window.
    m:
        Window size in vectors along the ``k`` dimension.
    vector_length:
        Elements per vector (``L`` in the paper).  Smaller ``L`` gives
        finer-grained pruning (better accuracy); larger ``L`` gives
        better load distribution in a warp (§III-A).

    Examples
    --------
    >>> p = NMPattern(2, 4, vector_length=4)
    >>> p.sparsity
    0.5
    >>> p.compressed_rows(16)
    8
    """

    n: int
    m: int
    vector_length: int = 32

    def __post_init__(self) -> None:
        check_positive_int("n", self.n)
        check_positive_int("m", self.m)
        check_positive_int("vector_length", self.vector_length)
        if self.n > self.m:
            raise PatternError(
                f"N:M pattern requires N <= M, got N={self.n}, M={self.m}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def sparsity(self) -> float:
        """Fraction of B pruned away, ``1 - N/M``."""
        return 1.0 - self.n / self.m

    @property
    def density(self) -> float:
        """Fraction of B retained, ``N/M`` — also the compute ratio."""
        return self.n / self.m

    @property
    def is_dense(self) -> bool:
        """True when N == M (the 0%-sparsity configuration of Fig. 7,
        where the paper sets ``M = N = 32``)."""
        return self.n == self.m

    @property
    def is_high_sparsity(self) -> bool:
        """True when sparsity exceeds the 70% moderate/high threshold
        (paper §III-A); high sparsity enables the packing strategy."""
        return self.sparsity > HIGH_SPARSITY_THRESHOLD

    @property
    def index_bits(self) -> int:
        """Bits per index-matrix entry: positions within an M-slot
        window need only ``ceil(log2 M)`` bits (§III-B1)."""
        return bits_required(self.m)

    @property
    def ideal_speedup(self) -> float:
        """Theoretical speedup over dense from compute reduction alone,
        ``M/N`` (the green dashed line in Fig. 9)."""
        return self.m / self.n

    # ------------------------------------------------------------------
    # Shape arithmetic
    # ------------------------------------------------------------------
    def window_rows(self) -> int:
        """Rows of B covered by one pruning window (== M)."""
        return self.m

    def compressed_rows(self, k: int) -> int:
        """``w = ceil(k*N/M)``: row count of the compressed matrix B'.

        ``k`` values that are not multiples of M are padded up, exactly
        as §II-A prescribes.
        """
        check_positive_int("k", k)
        return ceil_div(k, self.m) * self.n

    def window_count_k(self, k: int) -> int:
        """Number of pruning windows along the ``k`` dimension."""
        check_positive_int("k", k)
        return ceil_div(k, self.m)

    def window_count_n(self, n: int) -> int:
        """``q = ceil(n/L)``: pruning windows along the row direction."""
        check_positive_int("n", n)
        return ceil_div(n, self.vector_length)

    def padded_k(self, k: int) -> int:
        """``k`` rounded up to a multiple of M."""
        return self.window_count_k(k) * self.m

    def padded_n(self, n: int) -> int:
        """``n`` rounded up to a multiple of L."""
        return self.window_count_n(n) * self.vector_length

    # ------------------------------------------------------------------
    # Naming / construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_sparsity(
        cls, sparsity: float, m: int = 32, vector_length: int = 32
    ) -> "NMPattern":
        """Build the pattern with window size ``m`` whose sparsity is
        exactly ``sparsity`` (must yield an integer N).

        >>> NMPattern.from_sparsity(0.875, m=32).n
        4
        """
        check_positive_int("m", m)
        n_exact = (1.0 - sparsity) * m
        n = round(n_exact)
        if n < 1 or abs(n_exact - n) > 1e-9:
            raise PatternError(
                f"sparsity {sparsity} is not representable with M={m} "
                f"(requires N={n_exact})"
            )
        return cls(n, m, vector_length)

    def label(self) -> str:
        """Short human-readable label, e.g. ``'2:4xL4'``."""
        return f"{self.n}:{self.m}xL{self.vector_length}"

    def __str__(self) -> str:
        return (
            f"NMPattern({self.n}:{self.m}, L={self.vector_length}, "
            f"sparsity={self.sparsity:.1%})"
        )
