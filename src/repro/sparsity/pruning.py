"""Vector-wise magnitude pruning.

Given a dense weight matrix ``B[k][n]`` and an :class:`NMPattern`, keep
in every pruning window the N vectors with the largest importance and
zero the rest.  This is the standard one-shot magnitude criterion the
N:M literature uses (Mishra et al. 2021; paper §II-B) lifted to the
vector granularity of Fig. 1: a vector's importance is the sum of the
squared magnitudes of its L elements.
"""

from __future__ import annotations

import numpy as np

from repro.sparsity.config import NMPattern
from repro.sparsity.masks import vector_mask_to_element_mask
from repro.utils.arrays import as_f32, pad_to_multiple
from repro.utils.validation import check_matrix

__all__ = ["magnitude_prune", "prune_dense", "vector_importance"]


def vector_importance(pattern: NMPattern, b: np.ndarray) -> np.ndarray:
    """Per-vector importance scores of shape ``(g, M, q)``.

    Importance is the L2 energy of each L-element vector; ties are
    broken towards the lower slot index (stable top-N), matching a
    deterministic pruning pass.
    """
    b = check_matrix("b", b)
    k, n = b.shape
    g = k // pattern.m
    q = n // pattern.vector_length
    if g * pattern.m != k or q * pattern.vector_length != n:
        raise ValueError(
            f"b shape {b.shape} not divisible by (M={pattern.m}, L={pattern.vector_length})"
        )
    windows = b.reshape(g, pattern.m, q, pattern.vector_length)
    return np.square(windows.astype(np.float64)).sum(axis=3)


def magnitude_prune(pattern: NMPattern, b: np.ndarray) -> np.ndarray:
    """Return the ``(g, M, q)`` vector mask keeping the N highest-energy
    vectors in every pruning window of ``b``."""
    scores = vector_importance(pattern, b)
    if pattern.n == pattern.m:
        return np.ones_like(scores, dtype=bool)
    # Stable selection: sort by (-score, slot) so equal scores keep the
    # earliest slots, then mark the first N of each window.
    order = np.argsort(-scores, axis=1, kind="stable")
    ranks = np.argsort(order, axis=1, kind="stable")
    return ranks < pattern.n


def prune_dense(
    pattern: NMPattern, b: np.ndarray, *, pad: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot magnitude pruning of a dense matrix.

    Returns ``(pruned, vector_mask)`` where ``pruned`` is ``b`` (padded
    to window multiples when ``pad=True``) with dropped vectors zeroed,
    and ``vector_mask`` is the ``(g, M, q)`` boolean mask.
    """
    b = as_f32(check_matrix("b", b))
    if pad:
        b = pad_to_multiple(b, pattern.m, pattern.vector_length)
    mask = magnitude_prune(pattern, b)
    element_mask = vector_mask_to_element_mask(pattern, mask)
    return b * element_mask.astype(b.dtype), mask
