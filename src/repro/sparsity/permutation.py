"""Channel permutation for N:M pruning quality (Pool & Yu, NeurIPS'21).

The paper's related work (§II-B, ref [32]) notes that permuting input
channels before applying the N:M mask "enhances accuracy": magnitude
pruning discards the weakest vectors *per pruning window*, so grouping
strong channels into different windows lets more of them survive.

For the vector-wise format this means permuting the rows of ``B`` (the
``k`` dimension) before windowing.  The product is preserved by
gathering the columns of ``A`` with the same permutation::

    A @ B == A[:, perm] @ B[perm, :]

``greedy_channel_permutation`` implements the standard
escape-the-window heuristic: repeatedly swap a retained-energy-poor
channel pairing until no swap improves the retained energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.sparsity.config import NMPattern
from repro.sparsity.pruning import vector_importance
from repro.utils.validation import check_matrix

__all__ = [
    "PermutationResult",
    "greedy_channel_permutation",
    "apply_permutation",
    "retained_energy",
]


def retained_energy(pattern: NMPattern, b: np.ndarray) -> float:
    """Total vector energy magnitude pruning retains on ``b``.

    The objective channel permutation maximises: the sum over pruning
    windows of the top-N vector energies.
    """
    scores = vector_importance(pattern, b)  # (g, M, q)
    top = np.sort(scores, axis=1)[:, -pattern.n :, :]
    return float(top.sum())


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of the permutation search."""

    permutation: np.ndarray
    energy_before: float
    energy_after: float
    swaps: int

    @property
    def improvement(self) -> float:
        """Relative retained-energy gain (>= 0)."""
        if self.energy_before == 0:
            return 0.0
        return self.energy_after / self.energy_before - 1.0


def apply_permutation(
    a: np.ndarray | None, b: np.ndarray, permutation: np.ndarray
) -> tuple[np.ndarray | None, np.ndarray]:
    """Apply a channel permutation consistently to ``(A, B)``.

    Returns ``(A[:, perm], B[perm, :])``; ``A`` may be None when only
    the weights are being prepared offline.
    """
    b = check_matrix("b", b)
    permutation = np.asarray(permutation)
    if sorted(permutation.tolist()) != list(range(b.shape[0])):
        raise ShapeError("permutation must be a permutation of range(k)")
    b_p = b[permutation, :]
    a_p = None if a is None else check_matrix("a", a)[:, permutation]
    return a_p, b_p


def greedy_channel_permutation(
    pattern: NMPattern,
    b: np.ndarray,
    *,
    max_rounds: int = 4,
    seed: int = 0,
) -> PermutationResult:
    """Search for a row permutation of ``b`` that increases the energy
    magnitude pruning retains.

    Strategy: for each round, walk candidate channel pairs (drawn from
    distinct windows, shuffled deterministically by ``seed``) and apply
    any swap that strictly increases the retained energy.  Terminates
    when a round finds no improving swap or after ``max_rounds``.

    The search is O(rounds * k^2 / M) with incremental window
    re-scoring — practical for the layer sizes the paper evaluates.
    """
    b = check_matrix("b", b)
    k = b.shape[0]
    if k % pattern.m != 0:
        raise ShapeError(f"k={k} must be a multiple of M={pattern.m}")
    g = k // pattern.m
    rng = np.random.default_rng(seed)

    perm = np.arange(k)
    current = b.copy()
    energy_before = retained_energy(pattern, b)

    def window_energy(rows: np.ndarray) -> float:
        """Retained energy of one window given its M rows."""
        scores = vector_importance(
            pattern, np.ascontiguousarray(rows)
        )  # (1, M, q)
        top = np.sort(scores, axis=1)[:, -pattern.n :, :]
        return float(top.sum())

    swaps = 0
    for _ in range(max_rounds):
        improved = False
        windows = list(range(g))
        rng.shuffle(windows)
        for wi_pos in range(len(windows)):
            wi = windows[wi_pos]
            for wj in windows[wi_pos + 1 :]:
                rows_i = slice(wi * pattern.m, (wi + 1) * pattern.m)
                rows_j = slice(wj * pattern.m, (wj + 1) * pattern.m)
                base = window_energy(current[rows_i]) + window_energy(
                    current[rows_j]
                )
                # Try swapping each cross-window row pair; keep the best.
                best_gain = 0.0
                best_pair: tuple[int, int] | None = None
                for ri in range(pattern.m):
                    for rj in range(pattern.m):
                        gi = wi * pattern.m + ri
                        gj = wj * pattern.m + rj
                        current[[gi, gj]] = current[[gj, gi]]
                        cand = window_energy(current[rows_i]) + window_energy(
                            current[rows_j]
                        )
                        current[[gi, gj]] = current[[gj, gi]]  # undo
                        gain = cand - base
                        if gain > best_gain + 1e-9:
                            best_gain = gain
                            best_pair = (gi, gj)
                if best_pair is not None:
                    gi, gj = best_pair
                    current[[gi, gj]] = current[[gj, gi]]
                    perm[[gi, gj]] = perm[[gj, gi]]
                    swaps += 1
                    improved = True
        if not improved:
            break

    return PermutationResult(
        permutation=perm,
        energy_before=energy_before,
        energy_after=retained_energy(pattern, current),
        swaps=swaps,
    )
