"""Pruning quality metrics (paper Eq. 2 and standard companions).

Eq. 2 defines the *confusion matrix* ``W[i][j] = |C'[i][j] - C[i][j]|
/ (m*n)`` measuring how far the sparse product drifts from the dense
one.  The library also reports the standard relative-error and
energy-retention summaries used when choosing ``L`` (the paper notes
smaller ``L`` improves N:M network accuracy, §III-A).
"""

from __future__ import annotations

import numpy as np

from repro.sparsity.config import NMPattern
from repro.sparsity.masks import vector_mask_to_element_mask
from repro.utils.validation import check_matrix

__all__ = [
    "confusion_matrix",
    "mean_abs_error",
    "relative_frobenius_error",
    "pruning_energy_kept",
]


def confusion_matrix(c_sparse: np.ndarray, c_dense: np.ndarray) -> np.ndarray:
    """Eq. 2: elementwise ``|C' - C| / (m*n)``."""
    check_matrix("c_sparse", c_sparse)
    check_matrix("c_dense", c_dense)
    if c_sparse.shape != c_dense.shape:
        raise ValueError(
            f"shape mismatch: {c_sparse.shape} vs {c_dense.shape}"
        )
    m, n = c_dense.shape
    return np.abs(c_sparse.astype(np.float64) - c_dense.astype(np.float64)) / (m * n)


def mean_abs_error(c_sparse: np.ndarray, c_dense: np.ndarray) -> float:
    """Mean absolute deviation between sparse and dense products."""
    check_matrix("c_sparse", c_sparse)
    return float(
        np.abs(c_sparse.astype(np.float64) - c_dense.astype(np.float64)).mean()
    )


def relative_frobenius_error(c_sparse: np.ndarray, c_dense: np.ndarray) -> float:
    """``||C' - C||_F / ||C||_F`` (0 when the products agree)."""
    num = np.linalg.norm(
        c_sparse.astype(np.float64) - c_dense.astype(np.float64)
    )
    den = np.linalg.norm(c_dense.astype(np.float64))
    if den == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return float(num / den)


def pruning_energy_kept(
    pattern: NMPattern, b: np.ndarray, vector_mask: np.ndarray
) -> float:
    """Fraction of ``||B||_F^2`` retained by a vector mask — the
    quantity magnitude pruning maximises per window."""
    check_matrix("b", b)
    element_mask = vector_mask_to_element_mask(pattern, vector_mask)
    b64 = b.astype(np.float64)
    total = float(np.square(b64).sum())
    if total == 0.0:
        return 1.0
    kept = float(np.square(b64 * element_mask).sum())
    return kept / total
