"""Distributed execution: tensor-parallel NM-SpMM across simulated
multi-GPU topologies.

The subsystem has three pieces, mirroring Kreutzer et al.'s recipe for
scaling sparse kernels across devices (sparse format + explicit
communication model):

* :mod:`repro.distributed.topology` — :class:`DeviceGroup` /
  :class:`Link` built from the Table III GPU catalog, with ring-cost
  modeled collectives (:meth:`~DeviceGroup.all_gather`,
  :meth:`~DeviceGroup.all_reduce`, :meth:`~DeviceGroup.reduce_scatter`);
* :mod:`repro.distributed.shard` — column-parallel (shard ``n``,
  all-gather outputs) and row-parallel (shard ``k``, all-reduce
  partials) partitioners that slice the compressed ``(B', D)`` pair at
  window boundaries so every shard stays a legal N:M layout;
* :mod:`repro.distributed.sharded` — :func:`sharded_execute` (real
  per-device numerics via the fast gather-GEMM kernel),
  :func:`modeled_step` (per-device plan simulation + collective on the
  simulated clock) and :class:`ShardedBackend`, registered in the
  backend registry as ``"sharded"`` (importing :mod:`repro.backends`
  registers it, so it is selectable — and auto-raced via its
  ``estimated_cost`` hook — everywhere the registry is consumed).

Serving integration lives in :class:`repro.serve.InferenceServer`
(``devices=``/``shard=``/``link=``) and ``python -m repro serve-sim
--devices N --shard {column,row}``.
"""

from repro.distributed.shard import (
    SHARD_MODES,
    DeviceShard,
    ShardedHandle,
    shard_column,
    shard_extents,
    shard_handle,
    shard_row,
    shard_shapes,
)
from repro.distributed.sharded import (
    DEFAULT_DEVICES,
    DistributedStep,
    ShardedBackend,
    modeled_shape_step,
    modeled_step,
    sharded_execute,
)
from repro.distributed.topology import (
    LINKS,
    CommEvent,
    DeviceGroup,
    Link,
    get_link,
)

__all__ = [
    "Link",
    "LINKS",
    "get_link",
    "CommEvent",
    "DeviceGroup",
    "SHARD_MODES",
    "DeviceShard",
    "ShardedHandle",
    "shard_column",
    "shard_row",
    "shard_handle",
    "shard_extents",
    "shard_shapes",
    "DistributedStep",
    "sharded_execute",
    "modeled_step",
    "modeled_shape_step",
    "ShardedBackend",
    "DEFAULT_DEVICES",
]
