"""Simulated multi-GPU topologies and modeled collectives.

The distributed layer follows Kreutzer et al. (arXiv:1112.5588): a
sparse format scales across devices only when it is paired with an
*explicit communication model*.  Ours is deliberately small — a
:class:`DeviceGroup` is ``devices`` copies of one catalogued
:class:`~repro.gpu.spec.GPUSpec` joined by a :class:`Link`, and every
collective a tensor-parallel NM-SpMM needs (all-gather, all-reduce,
reduce-scatter) is priced with the standard ring-algorithm cost
formula::

    T(steps, payload) = steps * (payload / devices / bandwidth
                                 + latency)

where a ring all-gather and reduce-scatter take ``devices - 1`` steps
and a ring all-reduce composes both (``2 * (devices - 1)`` steps).
``payload`` is the *full* tensor's bytes: each ring step moves a
``1/devices`` slice per device, so total per-device traffic is
``(devices - 1) / devices * payload`` — the bandwidth-optimal bound.

Everything is modeled time on the simulated clock, exactly like
``plan.simulate()`` on the compute side; composing the two is what the
:mod:`repro.distributed.sharded` execution layer does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec

__all__ = [
    "Link",
    "LINKS",
    "get_link",
    "CommEvent",
    "DeviceGroup",
]


@dataclass(frozen=True)
class Link:
    """One inter-device interconnect: per-direction bandwidth plus a
    fixed per-message latency (the alpha-beta model's alpha)."""

    name: str
    bandwidth_gb_s: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s <= 0:
            raise ConfigurationError(
                f"link bandwidth must be positive, got {self.bandwidth_gb_s}"
            )
        if self.latency_s < 0:
            raise ConfigurationError(
                f"link latency must be >= 0, got {self.latency_s}"
            )

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_gb_s * 1e9

    def transfer_seconds(self, payload_bytes: int) -> float:
        """One point-to-point message of ``payload_bytes``."""
        return payload_bytes / self.bytes_per_s + self.latency_s


#: Catalogued interconnects (per-direction, per-device-pair figures).
#: ``nvlink`` matches A100 NVLink3 (600 GB/s bidirectional -> 300
#: per direction); ``pcie4`` is a x16 Gen4 slot; ``ethernet`` a
#: 100 GbE RoCE fabric (the cross-node regime of the GPGPU-cluster
#: SpMV literature).
LINKS: dict[str, Link] = {
    "nvlink": Link("nvlink", bandwidth_gb_s=300.0, latency_s=1.5e-6),
    "pcie4": Link("pcie4", bandwidth_gb_s=32.0, latency_s=5e-6),
    "ethernet": Link("ethernet", bandwidth_gb_s=12.5, latency_s=1e-5),
}


def get_link(link: "str | Link") -> Link:
    """Accept either a catalogued link name or an explicit :class:`Link`."""
    if isinstance(link, Link):
        return link
    if isinstance(link, str):
        key = link.strip().lower()
        if key in LINKS:
            return LINKS[key]
        raise ConfigurationError(
            f"unknown link {link!r}; known: {sorted(LINKS)}"
        )
    raise ConfigurationError(f"cannot interpret {link!r} as a link")


@dataclass(frozen=True)
class CommEvent:
    """One modeled collective: what moved and how long it took.

    ``wire_bytes`` is the per-device traffic the ring actually ships
    (``steps`` slices of ``payload_bytes / devices`` each), as opposed
    to ``payload_bytes``, the logical tensor size.
    """

    collective: str
    payload_bytes: int
    seconds: float
    steps: int
    wire_bytes: int = 0

    def trace_attrs(self) -> dict:
        """The attributes a ``comm.<collective>`` trace span carries
        (consumed by the serving engine's tracer and by
        :meth:`~repro.kernels.blocked.KernelTrace.add_comm` callers)."""
        return {
            "collective": self.collective,
            "payload_bytes": self.payload_bytes,
            "wire_bytes": self.wire_bytes,
            "ring_steps": self.steps,
        }


@dataclass(frozen=True)
class DeviceGroup:
    """``devices`` identical simulated GPUs joined by one link.

    Examples
    --------
    >>> group = DeviceGroup.build("A100", devices=4, link="nvlink")
    >>> group.devices
    4
    >>> group.all_reduce(1024).steps
    6
    """

    gpu: GPUSpec
    devices: int
    link: Link

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError(
                f"a device group needs >= 1 device, got {self.devices}"
            )

    @classmethod
    def build(
        cls,
        gpu: "str | GPUSpec" = "A100",
        *,
        devices: int = 2,
        link: "str | Link | None" = "nvlink",
    ) -> "DeviceGroup":
        """Resolve the GPU from the Table III catalog and the link from
        :data:`LINKS`; ``link=None`` uses the part's native
        interconnect (``extras["native_link"]``: NVLink on A100, PCIe
        on the GeForce parts)."""
        spec = resolve_gpu(gpu)
        if link is None:
            link = spec.extras.get("native_link", "pcie4")
        return cls(gpu=spec, devices=devices, link=get_link(link))

    # ------------------------------------------------------------------
    # Ring collectives
    # ------------------------------------------------------------------
    def _ring(self, collective: str, payload_bytes: int, steps: int) -> CommEvent:
        if payload_bytes < 0:
            raise ConfigurationError(
                f"collective payload must be >= 0, got {payload_bytes}"
            )
        if self.devices == 1 or payload_bytes == 0:
            return CommEvent(
                collective=collective, payload_bytes=payload_bytes,
                seconds=0.0, steps=0,
            )
        slice_bytes = payload_bytes // self.devices
        seconds = steps * self.link.transfer_seconds(slice_bytes)
        return CommEvent(
            collective=collective,
            payload_bytes=payload_bytes,
            seconds=seconds,
            steps=steps,
            wire_bytes=steps * slice_bytes,
        )

    def all_gather(self, payload_bytes: int) -> CommEvent:
        """Every device ends with the full ``payload_bytes`` tensor of
        which it held a ``1/devices`` shard (column-parallel epilogue)."""
        return self._ring("all-gather", payload_bytes, self.devices - 1)

    def reduce_scatter(self, payload_bytes: int) -> CommEvent:
        """Every device ends with its ``1/devices`` shard of the
        element-wise sum of all devices' ``payload_bytes`` tensors."""
        return self._ring("reduce-scatter", payload_bytes, self.devices - 1)

    def all_reduce(self, payload_bytes: int) -> CommEvent:
        """Every device ends with the full element-wise sum
        (row-parallel epilogue): ring reduce-scatter + ring all-gather."""
        return self._ring("all-reduce", payload_bytes, 2 * (self.devices - 1))

    def describe(self) -> str:
        return (
            f"{self.devices}x {self.gpu.name} over {self.link.name} "
            f"({self.link.bandwidth_gb_s:g} GB/s, "
            f"{self.link.latency_s * 1e6:g} us)"
        )
