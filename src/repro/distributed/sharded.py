"""Tensor-parallel NM-SpMM execution over a simulated device group.

Three layers, mirroring how the single-device stack splits numerics
from modeled time:

* :func:`sharded_execute` — the numerics: one gather-GEMM
  (:func:`~repro.kernels.fast.nm_spmm_fast`) per device shard over the
  shard's own precomputed gather layout, composed by the mode's rule
  (column slabs concatenated, row partials summed).  Bit-for-bit the
  same per-window products as the single-device fast path.
* :func:`modeled_step` / :func:`modeled_shape_step` — the simulated
  clock: each device's launch is priced by the existing perf model on
  its shard's shape, the group's collective is priced by the ring
  formulas, and one :class:`DistributedStep` composes them (devices
  run concurrently, the collective follows the slowest device).
* :class:`ShardedBackend` — the registry face: ``execute(a, handle,
  backend="sharded")`` runs the whole thing through the PR-3 backend
  protocol, composes per-device analytic traces into the request's
  trace, and enters the auto-selector's race through
  ``estimated_cost`` with *both* terms — per-device compute (the
  gather-GEMM cost model divided by the device count) and the modeled
  collective converted to MAC-equivalents at the group GPU's locked
  peak — so ``backend="auto"`` sees its communication bill, not an
  ideal-scaling fantasy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.backends.auto import GATHER_FULL_EFFICIENCY_L
from repro.backends.base import ExecutionRequest, ExecutionResult
from repro.core.plan import ExecutionPlan, build_plan
from repro.distributed.shard import (
    SHARD_MODES,
    ShardedHandle,
    mode_collective,
    shard_handle,
    shard_shapes,
)
from repro.distributed.topology import CommEvent, DeviceGroup
from repro.errors import ShardError
from repro.kernels.fast import nm_spmm_fast

__all__ = [
    "DistributedStep",
    "sharded_execute",
    "modeled_step",
    "modeled_shape_step",
    "ShardedBackend",
    "DEFAULT_DEVICES",
]

#: Device count of the default-registered ``sharded`` backend (the
#: smallest group that actually communicates).
DEFAULT_DEVICES = 2


@dataclass(frozen=True)
class DistributedStep:
    """One tensor-parallel launch on the simulated clock: per-device
    compute plus the composing collective."""

    per_device_seconds: tuple[float, ...]
    comm: CommEvent

    @property
    def devices(self) -> int:
        return len(self.per_device_seconds)

    @property
    def compute_seconds(self) -> float:
        """The step's compute critical path: devices run concurrently,
        so the slowest shard gates the collective."""
        return max(self.per_device_seconds)

    @property
    def seconds(self) -> float:
        return self.compute_seconds + self.comm.seconds

    @property
    def comm_fraction(self) -> float:
        """Share of the step spent in the collective."""
        total = self.seconds
        return self.comm.seconds / total if total > 0 else 0.0


def sharded_execute(a: np.ndarray, sharded: ShardedHandle) -> np.ndarray:
    """Run the tensor-parallel product's numerics: one fast
    gather-GEMM per device shard, composed per the shard mode.
    Returns the padded ``(m, n)`` product (callers trim logical n,
    exactly as with the single-device backends)."""
    outputs = [
        nm_spmm_fast(
            sharded.device_input(a, shard.device),
            shard.handle.gather_layout(),
        )
        for shard in sharded.shards
    ]
    return sharded.combine(outputs)


def _per_device_plans(
    sharded: ShardedHandle,
    group: DeviceGroup,
    m: int,
    *,
    version: str = "V3",
) -> list[ExecutionPlan]:
    return [
        build_plan(
            m,
            shard.handle.n,
            shard.handle.k,
            sharded.pattern,
            group.gpu,
            version=version,
        )
        for shard in sharded.shards
    ]


def modeled_step(
    sharded: ShardedHandle,
    group: DeviceGroup,
    m: int,
    *,
    version: str = "V3",
) -> DistributedStep:
    """Model one ``m``-row tensor-parallel launch of already-sharded
    weights: per-shard plan simulation + the mode's collective."""
    if group.devices != sharded.devices:
        raise ShardError(
            f"device group has {group.devices} devices but the handle "
            f"is sharded {sharded.devices} ways"
        )
    plans = _per_device_plans(sharded, group, m, version=version)
    return DistributedStep(
        per_device_seconds=tuple(p.simulate().seconds for p in plans),
        comm=sharded.collective(group, m),
    )


def modeled_shape_step(
    m: int,
    n: int,
    k: int,
    pattern,
    group: DeviceGroup,
    mode: str,
    *,
    version: str = "V3",
) -> DistributedStep:
    """Shape-only variant of :func:`modeled_step` (no weights are ever
    materialized — the benchmark models true Llama sizes this way).
    Uses :func:`~repro.distributed.shard.shard_extents` geometry, so
    modeled curves and executed shards agree exactly."""
    per_device = tuple(
        build_plan(m, n_d, k_d, pattern, group.gpu, version=version)
        .simulate()
        .seconds
        for n_d, k_d in shard_shapes(pattern, n, k, group.devices, mode)
    )
    comm = mode_collective(group, mode, m, pattern.padded_n(n))
    return DistributedStep(per_device_seconds=per_device, comm=comm)


class ShardedBackend:
    """Tensor-parallel execution as a registered backend.

    Parameters
    ----------
    group:
        The simulated device group; defaults to
        ``DeviceGroup.build("A100", devices=2, link="nvlink")``.
    shard:
        Partition mode, ``"column"`` (all-gather outputs) or ``"row"``
        (all-reduce partials).
    """

    name = "sharded"

    def __init__(
        self,
        group: "DeviceGroup | None" = None,
        shard: str = "column",
    ):
        if shard not in SHARD_MODES:
            raise ShardError(
                f"unknown shard mode {shard!r}; expected one of {SHARD_MODES}"
            )
        self.group = group if group is not None else DeviceGroup.build(
            "A100", devices=DEFAULT_DEVICES, link="nvlink"
        )
        self.shard = shard

    def capabilities(self) -> dict:
        return {
            "description": (
                f"{self.shard}-parallel gather-GEMM across "
                f"{self.group.describe()}; composes per-device plans "
                "with ring-modeled collectives"
            ),
            "traces": "analytic (composed per device) + wire-bytes "
            "comm events",
            "needs_plan": False,
            "trace_vocabulary": (
                "device.compute",
                "comm.all-gather",
                "comm.all-reduce",
            ),
        }

    # ------------------------------------------------------------------
    def supports(self, request: ExecutionRequest) -> "bool | str":
        comp = request.handle.compressed
        devices = self.group.devices
        if self.shard == "column":
            if comp.q < devices:
                return (
                    f"column-parallel needs one output window per device "
                    f"(q={comp.q} < devices={devices})"
                )
        elif comp.num_windows_k < devices:
            return (
                f"row-parallel needs one pruning window per device "
                f"(k windows={comp.num_windows_k} < devices={devices})"
            )
        return True

    def _sharded_for(self, request: ExecutionRequest) -> ShardedHandle:
        return shard_handle(request.handle, self.group.devices, self.shard)

    # ------------------------------------------------------------------
    def estimated_cost(self, request: ExecutionRequest) -> float:
        """Modeled MAC-equivalents per output element: the per-device
        gather-GEMM compute (the fast path's cost model over
        ``devices`` concurrent shards) plus the collective's time
        converted at the group GPU's locked peak — so the auto race
        sees this backend's communication bill, not ideal scaling.

        The conversion rate is the *group's own* GPU (the hardware
        this backend simulates), which is also the only self-consistent
        unit for its compute term.  Requests carry no GPU, so an
        operator targeting a different part races this backend across a
        unit seam — the same seam any simulated-device entrant has
        against the host-calibrated builtins (see ROADMAP).
        """
        handle = request.handle
        ell = handle.pattern.vector_length
        ratio = ell / GATHER_FULL_EFFICIENCY_L
        efficiency = min(1.0, ratio * ratio)
        compute = handle.compressed.w / efficiency / self.group.devices
        comm = mode_collective(self.group, self.shard, request.m, handle.n)
        comm_macs = comm.seconds * self.group.gpu.locked_peak_flops / 2.0
        return compute + comm_macs / (request.m * handle.n)

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        sharded = self._sharded_for(request)
        start = time.perf_counter()
        out = sharded_execute(request.a, sharded)
        seconds = time.perf_counter() - start
        plan = request.plan
        if request.wants_trace:
            plan = self._fill_trace(request, sharded)
        return ExecutionResult(
            output=out,
            backend=self.name,
            plan=plan,
            seconds=seconds,
            trace_filled=request.wants_trace,
        )

    def _fill_trace(
        self, request: ExecutionRequest, sharded: ShardedHandle
    ) -> "ExecutionPlan | None":
        """Compose per-device analytic traces into the request's trace:
        each shard contributes the trace its own launch geometry
        implies, so the total FMA count still equals ``m * n * w`` and
        the byte counts reflect the sharded tiles.  The mode's
        collective is accounted as a comm event carrying the modeled
        *wire* bytes (the ring traffic actually shipped), so a sharded
        trace exposes its communication bill alongside its memory
        hierarchy — the per-backend vocabulary ``capabilities()``
        declares.

        The per-device plans take their optimization version from an
        *explicitly passed* plan; otherwise V3 (the default).  The
        request's lazy planner is deliberately not resolved — it would
        build a full-size single-device plan (never executed here)
        just to read its version field.
        """
        plan = request.plan
        version = plan.version.value if plan is not None else "V3"
        for device_plan, shard in zip(
            _per_device_plans(
                sharded, self.group, request.m, version=version
            ),
            sharded.shards,
            strict=True,
        ):
            col_info = None
            if device_plan.uses_packing:
                ws = min(device_plan.ws, shard.handle.compressed.w)
                col_info = shard.handle.col_info(ws, device_plan.params.ns)
            request.trace.merge(
                device_plan.analytic_trace(
                    col_info,
                    index_itemsize=(
                        shard.handle.compressed.indices.dtype.itemsize
                    ),
                )
            )
        comm = sharded.collective(self.group, request.m)
        request.trace.add_comm(
            comm.collective, comm.payload_bytes, comm.wire_bytes,
            comm.seconds,
        )
        request.trace.tag_backend(self.name)
        return plan
