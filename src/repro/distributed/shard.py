"""Tensor-parallel partitioners for compressed N:M weights.

Two Megatron-style sharding modes, both operating directly on the
compressed ``(B', D)`` pair so no shard ever round-trips through a
dense matrix:

* **column-parallel** — shard the output dimension ``n``.  Cuts must
  land on vector (``L``) boundaries, i.e. whole column windows of the
  index matrix, so every shard keeps the exact vector-wise layout of
  Fig. 1: device ``d`` takes ``values[:, j0*L:j1*L]`` and
  ``indices[:, j0:j1]``.  Each device computes its own output column
  slab from the *full* activation block; composing the result is an
  all-gather.
* **row-parallel** — shard the reduction dimension ``k``.  Cuts must
  land on pruning-window (``M``-row) boundaries so windows never
  straddle devices: device ``d`` takes the compressed rows
  ``values[g0*N:g1*N, :]`` (and the same rows of ``D``) of windows
  ``[g0, g1)``, consumes only the matching ``M * (g1 - g0)`` activation
  columns, and produces a full-width *partial* product; composing is an
  all-reduce.

Every shard is rebuilt as a real :class:`NMCompressedMatrix`, whose
constructor re-validates the N:M invariants (compressed row count
``w = k*N/M``, index-matrix range and dtype), so an illegal shard can
not be constructed silently — the partitioners cut only where the
format stays closed under slicing.  Uneven divisions are supported:
windows are dealt round-robin-free (first ``remainder`` devices take
one extra window), and a device count exceeding the available windows
is a :class:`~repro.errors.ShardError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.constants import FP32_BYTES
from repro.errors import ShardError
from repro.sparsity.compress import NMCompressedMatrix
from repro.sparsity.config import NMPattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import SparseHandle
    from repro.distributed.topology import CommEvent, DeviceGroup

__all__ = [
    "SHARD_MODES",
    "DeviceShard",
    "ShardedHandle",
    "shard_column",
    "shard_row",
    "shard_handle",
    "shard_extents",
    "shard_shapes",
    "mode_collective",
]

#: The supported tensor-parallel modes.
SHARD_MODES: tuple[str, ...] = ("column", "row")


def mode_collective(
    group: "DeviceGroup", mode: str, m: int, n: int
) -> "CommEvent":
    """The collective one ``m``-row step of an ``n``-wide (padded)
    output pays under ``mode``: all-gather of the ``(m, n)`` fp32
    output slabs for column parallelism, all-reduce of the full-width
    partials for row parallelism.  The single source of the
    payload/collective mapping — the serving clock, the auto-race
    estimate, and the benchmark all price communication through it."""
    _check_mode(mode)
    payload = m * n * FP32_BYTES
    if mode == "column":
        return group.all_gather(payload)
    return group.all_reduce(payload)


def _check_mode(mode: str) -> str:
    if mode not in SHARD_MODES:
        raise ShardError(
            f"unknown shard mode {mode!r}; expected one of {SHARD_MODES}"
        )
    return mode


def shard_extents(windows: int, devices: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` window ranges dealing ``windows``
    as evenly as possible across ``devices`` (first ``windows %
    devices`` devices take one extra).

    >>> shard_extents(7, 3)
    [(0, 3), (3, 5), (5, 7)]
    """
    if devices < 1:
        raise ShardError(f"devices must be >= 1, got {devices}")
    if windows < devices:
        raise ShardError(
            f"cannot shard {windows} window(s) across {devices} devices; "
            "every device needs at least one"
        )
    base, extra = divmod(windows, devices)
    extents: list[tuple[int, int]] = []
    start = 0
    for d in range(devices):
        end = start + base + (1 if d < extra else 0)
        extents.append((start, end))
        start = end
    return extents


def shard_shapes(
    pattern: NMPattern, n: int, k: int, devices: int, mode: str
) -> list[tuple[int, int]]:
    """The per-device ``(n_d, k_d)`` padded problem shapes a
    ``devices``-way shard of an ``(n, k)`` weight matrix produces —
    pure shape arithmetic, shared with the benchmark so modeled
    strong-scaling curves use exactly the geometry the partitioners
    cut."""
    _check_mode(mode)
    if mode == "column":
        q = pattern.window_count_n(n)
        ell = pattern.vector_length
        return [
            ((j1 - j0) * ell, pattern.padded_k(k))
            for j0, j1 in shard_extents(q, devices)
        ]
    g = pattern.window_count_k(k)
    n_pad = pattern.padded_n(n)
    return [
        (n_pad, (g1 - g0) * pattern.m)
        for g0, g1 in shard_extents(g, devices)
    ]


@dataclass(frozen=True)
class DeviceShard:
    """One device's slice of a sharded weight matrix.

    ``start``/``stop`` are in the sharded dimension's *padded* units:
    output columns for column-parallel, activation (k) columns for
    row-parallel.
    """

    device: int
    handle: "SparseHandle"
    start: int
    stop: int

    @property
    def extent(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardedHandle:
    """A weight matrix partitioned across a simulated device group.

    Wraps the per-device :class:`~repro.core.api.SparseHandle` shards
    (each a fully valid compressed matrix with its own cached
    :class:`~repro.sparsity.gather.GatherLayout` and plan cache) plus
    the composition rule the mode implies.
    """

    mode: str
    pattern: NMPattern
    shards: tuple[DeviceShard, ...]
    k: int  # padded reduction dim of the unsharded matrix
    n: int  # padded output dim of the unsharded matrix

    def __post_init__(self) -> None:
        _check_mode(self.mode)
        if not self.shards:
            raise ShardError("a sharded handle needs at least one shard")

    @property
    def devices(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------------
    # Per-device execution pieces
    # ------------------------------------------------------------------
    def device_input(self, a: np.ndarray, device: int) -> np.ndarray:
        """The activation slice device ``device`` consumes: the full
        block under column parallelism, its k-slab under row
        parallelism."""
        shard = self.shards[device]
        if self.mode == "column":
            return a
        return a[:, shard.start : shard.stop]

    def combine(self, outputs: "list[np.ndarray]") -> np.ndarray:
        """Compose per-device outputs into the full ``(m, n)`` product:
        concatenation of column slabs (what the all-gather materializes)
        or the sum of full-width partials (what the all-reduce
        materializes)."""
        if len(outputs) != self.devices:
            raise ShardError(
                f"expected {self.devices} per-device outputs, got "
                f"{len(outputs)}"
            )
        if self.mode == "column":
            return np.hstack(outputs)
        total = outputs[0].copy()
        for partial in outputs[1:]:
            total += partial
        return total

    def collective(self, group: "DeviceGroup", m: int) -> "CommEvent":
        """The modeled collective one ``m``-row step pays (see
        :func:`mode_collective`)."""
        return mode_collective(group, self.mode, m, self.n)

    def describe(self) -> str:
        extents = ", ".join(
            f"dev{s.device}[{s.start}:{s.stop}]" for s in self.shards
        )
        return (
            f"{self.mode}-parallel x{self.devices} "
            f"{self.pattern.label()} (n={self.n}, k={self.k}): {extents}"
        )


def _handles(compressed_shards: "Iterable[NMCompressedMatrix]"):
    from repro.core.api import SparseHandle  # deferred: core imports backends

    return [SparseHandle(compressed=c) for c in compressed_shards]


def shard_column(handle: "SparseHandle", devices: int) -> ShardedHandle:
    """Column-parallel partition: shard the output dimension ``n`` at
    vector-window boundaries; every device keeps the full ``k``."""
    comp = handle.compressed
    pattern = comp.pattern
    ell = pattern.vector_length
    try:
        extents = shard_extents(comp.q, devices)
    except ShardError as exc:
        raise ShardError(
            f"column-parallel: {exc} (n={comp.n} has q={comp.q} "
            f"L={ell}-wide output windows)"
        ) from None
    shards = []
    for device, (j0, j1) in enumerate(extents):
        piece = NMCompressedMatrix(
            pattern=pattern,
            values=np.ascontiguousarray(comp.values[:, j0 * ell : j1 * ell]),
            indices=np.ascontiguousarray(comp.indices[:, j0:j1]),
            k=comp.k,
        )
        shards.append((device, piece, j0 * ell, j1 * ell))
    handles = _handles(piece for _, piece, _, _ in shards)
    return ShardedHandle(
        mode="column",
        pattern=pattern,
        shards=tuple(
            DeviceShard(device=d, handle=h, start=start, stop=stop)
            for (d, _, start, stop), h in zip(shards, handles, strict=True)
        ),
        k=comp.k,
        n=comp.n,
    )


def shard_row(handle: "SparseHandle", devices: int) -> ShardedHandle:
    """Row-parallel partition: shard the reduction dimension ``k`` at
    pruning-window (``M``-row) boundaries; every device keeps the full
    ``n`` and produces a partial product."""
    comp = handle.compressed
    pattern = comp.pattern
    try:
        extents = shard_extents(comp.num_windows_k, devices)
    except ShardError as exc:
        raise ShardError(
            f"row-parallel: {exc} (k={comp.k} has "
            f"{comp.num_windows_k} M={pattern.m}-row pruning windows)"
        ) from None
    shards = []
    for device, (g0, g1) in enumerate(extents):
        piece = NMCompressedMatrix(
            pattern=pattern,
            values=np.ascontiguousarray(
                comp.values[g0 * pattern.n : g1 * pattern.n]
            ),
            indices=np.ascontiguousarray(
                comp.indices[g0 * pattern.n : g1 * pattern.n]
            ),
            k=(g1 - g0) * pattern.m,
        )
        shards.append((device, piece, g0 * pattern.m, g1 * pattern.m))
    handles = _handles(piece for _, piece, _, _ in shards)
    return ShardedHandle(
        mode="row",
        pattern=pattern,
        shards=tuple(
            DeviceShard(device=d, handle=h, start=start, stop=stop)
            for (d, _, start, stop), h in zip(shards, handles, strict=True)
        ),
        k=comp.k,
        n=comp.n,
    )


def shard_handle(
    handle: "SparseHandle", devices: int, mode: str = "column"
) -> ShardedHandle:
    """Partition prepared weights across ``devices``, memoized on the
    handle (sharding slices arrays and builds per-shard gather layouts;
    serving must not re-pay that per step)."""
    _check_mode(mode)
    cache = getattr(handle, "_shard_cache", None)
    if cache is None:
        cache = {}
        handle._shard_cache = cache  # plain attribute; SparseHandle has no slots
    key = (mode, devices)
    if key not in cache:
        builder = shard_column if mode == "column" else shard_row
        cache[key] = builder(handle, devices)
    return cache[key]
