"""The kernel performance simulator.

One engine serves every kernel family in the paper (NM-SpMM V1/V2/V3,
cuBLAS, nmSPARSE); an :class:`ExecutionProfile` selects the schedule
and load path.  The model composes:

1. **Traffic** (:mod:`repro.model.traffic`) — per-block staged bytes,
   DRAM vs L2 residency;
2. **Inner kernel** (:mod:`repro.model.inner_kernel`) — warp FMA/LDS/
   issue contention per iteration (Eq. 6 CMAR + bank conflicts);
3. **Occupancy** (:mod:`repro.gpu.occupancy`) — resident blocks/SM
   from registers and shared memory (Eq. 4 footprint);
4. **Schedule** — steady state is ``max(compute, memory)`` because
   de-synchronised blocks across SMs overlap naturally; the schedule
   discipline determines the *serialized residue*: the per-iteration
   barrier exposure of the synchronous Listing-1 path (V1/V2) or the
   small residual of the Listing-4 double-buffered pipeline (V3);
5. Wave quantization, pipeline fill, and launch overhead.

Times are cycles at the locked clock, converted to seconds at the end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.isa import issue_model_for
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import TileParams, params_for
from repro.model.calibration import Calibration, calibration_for
from repro.model.inner_kernel import evaluate_inner_kernel
from repro.model.profiles import (
    ExecutionProfile,
    OverlapMode,
    profile_for_version,
)
from repro.model.timing import KernelReport, StageBreakdown
from repro.model.traffic import compute_traffic
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern
from repro.utils.intmath import ceil_div

__all__ = ["KernelSimulator", "simulate_nm_spmm"]

#: Registers per thread beyond the accumulator/fragment set: address
#: arithmetic, loop counters, the idx[] prefetch buffer of Listing 4.
ADDRESSING_REGISTERS = 28


@dataclass(frozen=True)
class KernelSimulator:
    """Reusable simulator bound to one GPU (and calibration)."""

    spec: GPUSpec
    calib: Calibration

    @classmethod
    def for_gpu(cls, gpu: "str | GPUSpec") -> "KernelSimulator":
        spec = resolve_gpu(gpu)
        return cls(spec=spec, calib=calibration_for(spec))

    # ------------------------------------------------------------------
    # Core entry point
    # ------------------------------------------------------------------
    def run(
        self,
        problem: SparseProblem,
        params: TileParams,
        profile: ExecutionProfile,
    ) -> KernelReport:
        """Model one kernel launch and return its report."""
        spec, calib = self.spec, self.calib
        pattern = problem.pattern
        shape = problem.shape
        if params.ks <= 0:
            raise SimulationError("TileParams.ks must be resolved before simulation")
        ws = params.ws(pattern)
        if ws <= 0:
            raise SimulationError(f"ks={params.ks} yields ws=0 for {pattern.label()}")

        traffic, geom = compute_traffic(problem, params, spec, calib, profile)
        total_blocks = geom.total_blocks
        active_sms = min(spec.num_sms, total_blocks)

        # --- occupancy -------------------------------------------------
        double_buffered = profile.overlap is OverlapMode.DOUBLE_BUFFER
        from repro.gpu.memory import smem_footprint_bytes

        smem_block = smem_footprint_bytes(
            pattern,
            params,
            packed=profile.is_packed,
            double_buffered=double_buffered,
        )
        smem_block = min(smem_block, spec.smem_bytes_per_block_limit)
        regs = params.accumulator_registers + ADDRESSING_REGISTERS
        occ = self._occupancy(params, regs, smem_block)

        concurrent = occ.blocks_per_sm * active_sms
        waves = max(1, ceil_div(total_blocks, concurrent))

        # --- compute stage --------------------------------------------
        issue = issue_model_for(spec)
        inner = evaluate_inner_kernel(
            params, ws, issue, profile.aux_instr_per_step
        )
        # Inflation >= 1 when LDS bandwidth or issue slots (not raw FMA
        # throughput) bind the inner kernel.
        inflation = inner.cycles / inner.fma_cycles if inner.fma_cycles else 1.0
        useful_warp_fma = problem.useful_flops / 2.0 / 32.0
        compute_cycles = (
            useful_warp_fma
            / issue.warp_fma_per_cycle
            * inflation
            / profile.issue_efficiency
            / active_sms
        )
        # Tile quantization: partial edge tiles still run full tiles.
        pad_factor = (
            (geom.blocks_m * params.ms)
            * (geom.blocks_n * params.ns)
            / (shape.m * shape.n)
        )
        compute_cycles *= pad_factor
        # Block-count quantization: the makespan follows the busiest
        # SM, which runs ceil(blocks/active_sms) blocks while the
        # average runs blocks/active_sms.  This is what makes an
        # oversized tile lose on a small matrix (Fig. 8).
        avg_blocks_per_sm = total_blocks / active_sms
        compute_cycles *= ceil_div(total_blocks, active_sms) / avg_blocks_per_sm
        # Latency hiding needs enough resident warps; below ~4 per SM
        # the scheduler cannot cover LDS/FFMA latencies and the inner
        # kernel stalls (§III-B2's occupancy argument).
        starved_warps = max(0.0, 4.0 - occ.warps_per_sm)
        compute_cycles *= 1.0 + 0.03 * starved_warps

        # --- memory stage ----------------------------------------------
        clock = spec.effective_clock_hz
        dram_bpc = profile.load_bw_factor * min(
            spec.dram_bytes_per_s * calib.dram_efficiency / clock,
            active_sms * calib.per_sm_ldg_bytes_per_cycle,
        )
        l2_bpc = profile.load_bw_factor * min(
            spec.dram_bytes_per_s * calib.l2_bw_multiple / clock,
            active_sms * calib.per_sm_l2_bytes_per_cycle,
        )
        dram_cycles = traffic.dram_total / dram_bpc
        l2_cycles = traffic.staged_total / l2_bpc
        memory_cycles = max(dram_cycles, l2_cycles)

        # --- schedule composition ---------------------------------------
        steady = max(compute_cycles, memory_cycles)
        if profile.overlap is OverlapMode.SYNC:
            # Barrier + exposed LDG latency per iteration; co-resident
            # blocks on the same SM hide a proportional share.  The
            # packed path adds the col_info -> As load-load dependency
            # (§III-C2) that only the V3 pipeline hides.
            scale = profile.sync_exposure_scale
            if profile.is_packed:
                scale *= calib.packed_sync_exposure_scale
            exposure = (
                calib.sync_exposure_cycles
                * scale
                * geom.iterations
                * waves
                / occ.blocks_per_sm
            )
        else:
            exposure = calib.v3_residual_exposure * min(
                compute_cycles, memory_cycles
            )
        fill = calib.fill_latency_cycles * waves

        total_cycles = steady + exposure + fill
        seconds = total_cycles / clock + calib.launch_overhead_s

        stages = StageBreakdown(
            compute_s=compute_cycles / clock,
            dram_s=dram_cycles / clock,
            l2_s=l2_cycles / clock,
            exposure_s=exposure / clock,
            fill_s=fill / clock,
            launch_s=calib.launch_overhead_s,
        )
        return KernelReport(
            kernel=profile.name,
            gpu=spec.name,
            problem=problem.label(),
            seconds=seconds,
            useful_flops=float(problem.useful_flops),
            traffic=traffic,
            stages=stages,
            occupancy=occ.occupancy,
            blocks_per_sm=occ.blocks_per_sm,
            total_blocks=total_blocks,
            iterations=geom.iterations,
            waves=waves,
            params_label=params.label(),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _occupancy(
        self, params: TileParams, regs: int, smem_block: int
    ) -> OccupancyResult:
        threads = params.threads_per_block
        if threads > self.spec.max_threads_per_block:
            raise SimulationError(
                f"block of {threads} threads exceeds the "
                f"{self.spec.max_threads_per_block} hardware limit"
            )
        try:
            return compute_occupancy(self.spec, threads, regs, smem_block)
        except SimulationError:
            # Register or thread overflows are genuine launch failures;
            # only a footprint slightly above the SM budget (our Eq. 4
            # accounting is conservative) degrades to one resident
            # block instead of failing.
            compute_occupancy(self.spec, threads, regs, 0)  # re-raises if not smem
            return OccupancyResult(
                blocks_per_sm=1,
                warps_per_sm=threads // 32,
                occupancy=threads / 32 / self.spec.max_warps_per_sm,
                limiter="shared memory",
                registers_per_thread=regs,
                smem_bytes_per_block=smem_block,
            )


def simulate_nm_spmm(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern,
    gpu: "str | GPUSpec" = "A100",
    *,
    params: TileParams | None = None,
    version: str = "V3",
    calib: Calibration | None = None,
) -> KernelReport:
    """Model an NM-SpMM launch for ``C[m][n] = A[m][k] (*) (B', D)``.

    Parameters mirror the CUDA kernel: blocking ``params`` default to
    the Table I recommendation with ``ks`` from Eq. 5, and ``version``
    selects the step-wise optimization level (V1/V2/V3, §IV-B).
    """
    sim = KernelSimulator.for_gpu(gpu)
    if calib is not None:
        sim = KernelSimulator(spec=sim.spec, calib=calib)
    problem = SparseProblem(ProblemShape(m, n, k), pattern)
    if params is None:
        params = params_for(m, n, k, pattern, sim.spec.smem_bytes_per_sm)
    elif params.ks <= 0:
        params = params.with_ks(pattern, sim.spec.smem_bytes_per_sm, k)
    profile = profile_for_version(
        version, sim.calib, high_sparsity=pattern.is_high_sparsity
    )
    return sim.run(problem, params, profile)
