"""Baseline cost models: cuBLAS, nmSPARSE, Sputnik, and the ideal
sparse speedup (the four comparison series of Fig. 9)."""

from repro.model.baselines.cublas import simulate_cublas
from repro.model.baselines.nmsparse import simulate_nmsparse
from repro.model.baselines.sputnik import simulate_sputnik
from repro.model.baselines.ideal import ideal_seconds, ideal_speedup

__all__ = [
    "simulate_cublas",
    "simulate_nmsparse",
    "simulate_sputnik",
    "ideal_speedup",
    "ideal_seconds",
]
