"""cuBLAS dense GEMM cost model.

cuBLAS is modelled through the same engine as NM-SpMM with a *dense*
execution profile: no index matrix, no auxiliary index instructions, a
vendor-tuned issue efficiency, the double-buffered schedule (vendor
SGEMM kernels pipeline global loads), and dense-tuned tile sizes.
The 0%-sparsity configuration of Fig. 7 (``M = N = 32``) then lands
within a few percent of this model on the A100, as the paper reports.
"""

from __future__ import annotations

from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import TileParams
from repro.model.calibration import Calibration, calibration_for
from repro.model.engine import KernelSimulator
from repro.model.profiles import ALoadMode, ExecutionProfile, OverlapMode
from repro.model.timing import KernelReport
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern

__all__ = ["simulate_cublas", "cublas_tile_params", "dense_profile", "DENSE_TILE_MENU"]

#: The dense kernel menu: vendor libraries ship many SGEMM variants
#: (skinny, square, macro-tile) and their heuristics pick the fastest
#: for each shape; the model does the same by simulating the whole
#: menu and keeping the winner.
DENSE_TILE_MENU: tuple[TileParams, ...] = (
    TileParams(ms=32, ns=32, mr=16, nr=32, mt=4, nt=4),
    TileParams(ms=32, ns=64, mr=32, nr=32, mt=8, nt=4),
    TileParams(ms=64, ns=32, mr=32, nr=32, mt=4, nt=8),
    TileParams(ms=64, ns=64, mr=16, nr=64, mt=4, nt=8),
    TileParams(ms=64, ns=128, mr=32, nr=64, mt=8, nt=8),
    TileParams(ms=128, ns=64, mr=64, nr=32, mt=8, nt=8),
    TileParams(ms=128, ns=128, mr=32, nr=64, mt=8, nt=8),
)


def cublas_tile_params(m: int, n: int, k: int, gpu: "str | GPUSpec" = "A100") -> TileParams:
    """The dense tile configuration cuBLAS's heuristics would pick —
    the menu winner for this shape."""
    return _best_dense(m, n, k, resolve_gpu(gpu), None)[1]


def dense_profile(calib: Calibration) -> ExecutionProfile:
    """The cuBLAS execution profile (see module docstring)."""
    return ExecutionProfile(
        name="cuBLAS",
        overlap=OverlapMode.DOUBLE_BUFFER,
        a_load=ALoadMode.FULL,
        aux_instr_per_step=0.0,
        issue_efficiency=calib.cublas_issue_efficiency,
        uses_index_matrix=False,
    )


def _best_dense(
    m: int,
    n: int,
    k: int,
    spec: GPUSpec,
    calib: Calibration | None,
) -> tuple[KernelReport, TileParams]:
    """Simulate the dense menu and return the winning (report, tile)."""
    calib = calib or calibration_for(spec)
    sim = KernelSimulator(spec=spec, calib=calib)
    # Dense == the degenerate N:M pattern with N == M (w == k).
    dense_pattern = NMPattern(32, 32, vector_length=32)
    problem = SparseProblem(ProblemShape(m, n, k), dense_pattern)
    profile = dense_profile(calib)
    best: tuple[KernelReport, TileParams] | None = None
    for tile in DENSE_TILE_MENU:
        params = tile.with_ks(dense_pattern, spec.smem_bytes_per_sm, k)
        report = sim.run(problem, params, profile)
        if best is None or report.seconds < best[0].seconds:
            best = (report, params)
    assert best is not None
    return best


def simulate_cublas(
    m: int,
    n: int,
    k: int,
    gpu: "str | GPUSpec" = "A100",
    *,
    calib: Calibration | None = None,
) -> KernelReport:
    """Model a cuBLAS SGEMM launch for ``C[m][n] = A[m][k] B[k][n]``."""
    spec = resolve_gpu(gpu)
    return _best_dense(m, n, k, spec, calib)[0]
