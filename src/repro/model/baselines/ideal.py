"""The ideal sparse speedup (the green dashed line of Fig. 9).

With computation reduced to ``N/M`` of dense, the best possible
speedup over an ideal dense kernel is ``M/N`` — e.g. 4x at 75%
sparsity ("computation reduces to a quarter of the original, yielding
an expected speedup of 4", §IV-D).
"""

from __future__ import annotations

from repro.model.timing import KernelReport
from repro.sparsity.config import NMPattern

__all__ = ["ideal_speedup", "ideal_seconds"]


def ideal_speedup(pattern: NMPattern) -> float:
    """``M/N`` — the compute-reduction bound."""
    return pattern.ideal_speedup


def ideal_seconds(cublas_report: KernelReport, pattern: NMPattern) -> float:
    """The wall-clock an ideal sparse kernel would take: the dense
    baseline divided by the compute-reduction bound."""
    return cublas_report.seconds / ideal_speedup(pattern)
