"""nmSPARSE (Lin et al.) cost model.

nmSPARSE is the state-of-the-art general N:M library the paper
improves on.  Its kernels (the VW/BW variants) gather only the A
vectors each pruning window needs — so, like the packed path, its A
traffic scales with the needed-column fraction — but the paper
identifies three deficits, each of which maps to a profile knob here:

* *"does not fully exploit the locality introduced by N:M sparsity"*:
  smaller thread-block tiles and no hierarchical A reuse, modelled as
  fixed medium tiles plus the ``nmsparse_a_traffic_factor`` inflation;
* *no sparsity-aware memory optimization*: the gathers are not packed
  into shared memory, so there is no footprint reduction beyond the
  gather itself and no col_info reuse;
* *no sparsity-aware pipeline*: the synchronous schedule with a larger
  exposed barrier cost (``nmsparse_sync_exposure_scale``) and a weaker
  inner kernel (``nmsparse_issue_efficiency``; their thread tiles are
  4x4, CMAR 2 vs NM-SpMM's 4-8).
"""

from __future__ import annotations

from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import TileParams
from repro.model.calibration import Calibration, calibration_for
from repro.model.engine import KernelSimulator
from repro.model.profiles import ALoadMode, ExecutionProfile, OverlapMode
from repro.model.timing import KernelReport
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern

__all__ = ["simulate_nmsparse", "nmsparse_profile", "NMSPARSE_TILE"]

#: nmSPARSE's fixed block configuration (VW kernels use one moderate
#: tile shape regardless of the input size — the locality deficit the
#: paper's Fig. 8 experiment highlights).
NMSPARSE_TILE = TileParams(ms=32, ns=64, mr=16, nr=32, mt=4, nt=4)


def nmsparse_profile(calib: Calibration) -> ExecutionProfile:
    """The nmSPARSE execution profile (see module docstring)."""
    return ExecutionProfile(
        name="nmSPARSE",
        overlap=OverlapMode.SYNC,
        a_load=ALoadMode.GATHERED,
        aux_instr_per_step=calib.aux_instr_per_step_v1v2,
        issue_efficiency=calib.nmsparse_issue_efficiency,
        a_traffic_factor=calib.nmsparse_a_traffic_factor,
        sync_exposure_scale=calib.nmsparse_sync_exposure_scale,
        load_bw_factor=calib.nmsparse_load_bw_factor,
    )


def simulate_nmsparse(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern,
    gpu: "str | GPUSpec" = "A100",
    *,
    calib: Calibration | None = None,
) -> KernelReport:
    """Model an nmSPARSE launch for the same problem NM-SpMM solves."""
    from dataclasses import replace

    spec = resolve_gpu(gpu)
    calib = calib or calibration_for(spec)
    sim = KernelSimulator(spec=spec, calib=calib)
    problem = SparseProblem(ProblemShape(m, n, k), pattern)
    # nmSPARSE keeps a shallow fixed depth instead of growing ks with
    # the Eq. 5 budget — one of the locality deficits the paper names.
    ks = min(
        pattern.padded_k(k),
        max(pattern.m, (calib.nmsparse_fixed_ks // pattern.m) * pattern.m),
    )
    params = replace(NMSPARSE_TILE, ks=ks)
    return sim.run(problem, params, nmsparse_profile(calib))
