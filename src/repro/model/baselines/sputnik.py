"""Sputnik (Gale et al.) cost model.

Sputnik treats the pruned weights as *unstructured* CSR: 1-wide
vectors, row-wise load balancing, gathered A accesses.  The paper's
Fig. 9 shows it well below cuBLAS at moderate sparsity ("poorer
performance due to its direct handling of unstructured sparse
patterns, leading to irregular memory access and imbalanced workload
overhead") and only approaching break-even at 87.5%.

Published Sputnik SpMM numbers sustain a roughly constant, low
fraction of FP32 peak across DNN sparsities; we model it as a
compute-rate cap (``sputnik_issue_efficiency`` of the locked peak)
plus a sector-inflated gather-traffic term — whichever binds.
"""

from __future__ import annotations

from repro.constants import FP32_BYTES
from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.model.calibration import Calibration, calibration_for
from repro.model.events import TrafficBreakdown
from repro.model.timing import KernelReport, StageBreakdown
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern
from repro.utils.intmath import ceil_div

__all__ = ["simulate_sputnik"]


def simulate_sputnik(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern,
    gpu: "str | GPUSpec" = "A100",
    *,
    calib: Calibration | None = None,
) -> KernelReport:
    """Model a Sputnik SpMM launch on the N:M-pruned weights (which it
    sees as an unstructured sparse matrix)."""
    spec = resolve_gpu(gpu)
    calib = calib or calibration_for(spec)
    problem = SparseProblem(ProblemShape(m, n, k), pattern)
    useful = float(problem.useful_flops)

    # Compute-rate bound: 1-wide vectors, no register blocking to
    # speak of -> a low, flat fraction of FP32 peak, additionally
    # capped by gather bandwidth (the kernels stream gathered operands,
    # so the achievable FLOP rate is tied to DRAM bandwidth).
    dram_bps = spec.dram_bytes_per_s * calib.dram_efficiency
    flops_cap = min(
        spec.locked_peak_flops * calib.sputnik_issue_efficiency,
        dram_bps * calib.sputnik_ai_cap_flop_per_byte,
    )
    compute_s = useful / flops_cap

    # Gather-traffic bound: every stored nonzero induces a gathered A
    # access per output row tile; uncoalesced gathers waste sector
    # bytes.
    nnz = problem.w * n
    gather_bytes = nnz * FP32_BYTES * calib.sputnik_gather_inflation
    stream_bytes = (problem.w * n + m * n) * FP32_BYTES  # B values + C
    a_rows_bytes = m * k * FP32_BYTES
    dram_total = gather_bytes * m / max(1, 512) + stream_bytes + a_rows_bytes
    memory_s = dram_total / dram_bps

    seconds = max(compute_s, memory_s) + calib.launch_overhead_s
    traffic = TrafficBreakdown(
        a_staged=gather_bytes,
        b_staged=float(problem.w * n * FP32_BYTES),
        d_staged=0.0,
        colinfo_staged=0.0,
        c_written=float(m * n * FP32_BYTES),
        a_dram=gather_bytes,
        b_dram=float(problem.w * n * FP32_BYTES),
        d_dram=0.0,
        colinfo_dram=0.0,
    )
    stages = StageBreakdown(
        compute_s=compute_s,
        dram_s=memory_s,
        l2_s=0.0,
        exposure_s=0.0,
        fill_s=0.0,
        launch_s=calib.launch_overhead_s,
    )
    return KernelReport(
        kernel="Sputnik",
        gpu=spec.name,
        problem=problem.label(),
        seconds=seconds,
        useful_flops=useful,
        traffic=traffic,
        stages=stages,
        occupancy=0.5,
        blocks_per_sm=1,
        total_blocks=ceil_div(m, 32) * ceil_div(n, 32),
        iterations=1,
        waves=1,
        params_label="csr",
        notes="analytic unstructured-CSR model",
    )
