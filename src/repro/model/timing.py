"""Timing outputs: stage breakdowns and the kernel report.

A :class:`KernelReport` is what every benchmark consumes: modelled
time, useful TFLOPS, efficiency against the locked peak (the paper's
Figs. 7/8 metric), roofline placement (Fig. 10), and the stage
decomposition behind the number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.roofline import BoundKind, Roofline
from repro.gpu.spec import GPUSpec
from repro.model.events import TrafficBreakdown

__all__ = ["StageBreakdown", "KernelReport"]


@dataclass(frozen=True)
class StageBreakdown:
    """Seconds attributed to each modelled mechanism.

    ``compute`` and ``memory`` are the two pipelined stages (only the
    max of the two binds in a fully overlapped schedule); ``exposure``
    is the serialized residue (sync barriers for V1/V2, residual gaps
    for V3); ``fill`` the pipeline warm-up per wave; ``launch`` the
    fixed API overhead.
    """

    compute_s: float
    dram_s: float
    l2_s: float
    exposure_s: float
    fill_s: float
    launch_s: float

    @property
    def memory_s(self) -> float:
        """The binding memory-path time."""
        return max(self.dram_s, self.l2_s)

    @property
    def overlapped_s(self) -> float:
        """Steady-state pipelined time."""
        return max(self.compute_s, self.memory_s)

    @property
    def total_s(self) -> float:
        return self.overlapped_s + self.exposure_s + self.fill_s + self.launch_s

    @property
    def limiter(self) -> str:
        """Which stage binds the steady state."""
        return "compute" if self.compute_s >= self.memory_s else "memory"


@dataclass(frozen=True)
class KernelReport:
    """Full modelled outcome of one kernel launch."""

    kernel: str
    gpu: str
    problem: str
    seconds: float
    useful_flops: float
    traffic: TrafficBreakdown
    stages: StageBreakdown
    occupancy: float
    blocks_per_sm: int
    total_blocks: int
    iterations: int
    waves: int
    params_label: str
    notes: str = ""

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------
    @property
    def tflops(self) -> float:
        """Useful (non-pruned) TFLOP/s."""
        return self.useful_flops / self.seconds / 1e12

    def efficiency_vs(self, spec: GPUSpec) -> float:
        """Fraction of the locked FP32 peak sustained — the paper's
        efficiency axis (Figs. 7/8)."""
        return self.useful_flops / self.seconds / spec.locked_peak_flops

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per staged byte (x4 gives Eq. 3's element AI)."""
        return self.traffic.arithmetic_intensity(self.useful_flops)

    @property
    def arithmetic_intensity_elements(self) -> float:
        """Eq. 3-style AI in FLOPs per *element* moved."""
        return self.arithmetic_intensity * 4.0

    def roofline_point(self, spec: GPUSpec) -> tuple[float, float]:
        """(AI FLOP/byte, achieved FLOP/s) for Fig. 10."""
        return self.arithmetic_intensity, self.useful_flops / self.seconds

    def bound_kind(self, spec: GPUSpec) -> BoundKind:
        roof = Roofline.for_gpu(spec)
        return roof.bound_kind(self.arithmetic_intensity)

    def efficiency_vs_roofline(self, spec: GPUSpec) -> float:
        """Achieved FLOPs over the roofline attainable at this AI
        (the §IV-E percentages)."""
        roof = Roofline.for_gpu(spec)
        attainable = roof.attainable(self.arithmetic_intensity)
        return self.useful_flops / self.seconds / attainable if attainable else 0.0

    def speedup_over(self, other: "KernelReport") -> float:
        """Wall-clock speedup of *this* kernel over ``other``."""
        return other.seconds / self.seconds

    def summary(self) -> str:
        return (
            f"{self.kernel} on {self.gpu} [{self.problem}]: "
            f"{self.seconds * 1e3:.3f} ms, {self.tflops:.2f} TFLOPS "
            f"(limited by {self.stages.limiter})"
        )
