"""Aggregated event quantities the engine computes per kernel launch."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TrafficBreakdown", "InstructionBudget"]


@dataclass(frozen=True)
class TrafficBreakdown:
    """Per-operand memory traffic for one launch (bytes).

    ``*_staged`` is the global->shared staging volume summed over all
    blocks and iterations — the Eq. 3 per-block accounting.  ``*_dram``
    is the portion the model charges to DRAM after L2 residency (only
    B'/D qualify for cross-block persistence; see
    :mod:`repro.model.traffic`).
    """

    a_staged: float
    b_staged: float
    d_staged: float
    colinfo_staged: float
    c_written: float
    a_dram: float
    b_dram: float
    d_dram: float
    colinfo_dram: float

    @property
    def staged_total(self) -> float:
        """All bytes that cross the L2->SM boundary (loads + C stores)."""
        return (
            self.a_staged
            + self.b_staged
            + self.d_staged
            + self.colinfo_staged
            + self.c_written
        )

    @property
    def dram_total(self) -> float:
        """Bytes charged against DRAM bandwidth."""
        return (
            self.a_dram
            + self.b_dram
            + self.d_dram
            + self.colinfo_dram
            + self.c_written
        )

    def arithmetic_intensity(self, flops: float) -> float:
        """FLOPs per staged byte — comparable with Eq. 3 (x4, which
        counts elements)."""
        return flops / self.staged_total if self.staged_total else 0.0


@dataclass(frozen=True)
class InstructionBudget:
    """Warp-level instruction counts per main-loop iteration of one
    block (inner-kernel issue accounting, §III-B2)."""

    warp_fma: float
    warp_lds: float
    warp_aux: float
    lds_bytes: float
    sts_bytes: float
    extras: dict = field(default_factory=dict)

    @property
    def warp_total(self) -> float:
        """All warp instructions competing for issue slots."""
        return self.warp_fma + self.warp_lds + self.warp_aux
