"""Memory-traffic model.

The model charges each thread block the bytes it *stages* into shared
memory — exactly the accounting of the paper's Eq. 3 — so blocked
reuse (bigger ``ks``/``ns``) and the V2 packing show up as traffic
reductions, precisely the effects §III identifies:

* ``A`` staged per block and iteration: ``ms * ks`` words unpacked, or
  the expected packed/gathered width (``expected_packed_fraction`` of
  ``ks``) when only the needed columns are touched;
* ``B'`` staged: ``ws * ns`` words; ``D``: ``ws * qs`` entries;
* ``col_info``: ``ks`` words per iteration when packing (Listing 3);
* ``C``: written once.

DRAM vs L2: every operand's staging traffic crosses the L2->SM
boundary; the DRAM side is reduced only when an operand's *whole*
footprint fits in the usable L2 fraction and is therefore re-served
from L2 after the first pass (typically B' + D at high sparsity, or A
for small problems).  This conservative rule reproduces the paper's
measured AI placement in Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FP32_BYTES
from repro.errors import SimulationError
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import TileParams
from repro.model.calibration import Calibration
from repro.model.events import TrafficBreakdown
from repro.model.profiles import ALoadMode, ExecutionProfile
from repro.model.workload import SparseProblem
from repro.sparsity.colinfo import expected_packed_fraction
from repro.utils.intmath import ceil_div

__all__ = ["GridGeometry", "grid_geometry", "compute_traffic"]


@dataclass(frozen=True)
class GridGeometry:
    """Launch geometry for a blocked kernel."""

    blocks_m: int
    blocks_n: int
    iterations: int

    @property
    def total_blocks(self) -> int:
        return self.blocks_m * self.blocks_n


def grid_geometry(problem: SparseProblem, params: TileParams) -> GridGeometry:
    """Launch grid and main-loop trip count for a plan."""
    shape = problem.shape
    ws = params.ws(problem.pattern)
    if ws <= 0:
        raise SimulationError("plan has ws == 0; ks must be >= M")
    return GridGeometry(
        blocks_m=ceil_div(shape.m, params.ms),
        blocks_n=ceil_div(shape.n, params.ns),
        iterations=max(1, ceil_div(problem.w, ws)),
    )


def compute_traffic(
    problem: SparseProblem,
    params: TileParams,
    spec: GPUSpec,
    calib: Calibration,
    profile: ExecutionProfile,
    *,
    index_bytes: int = 1,
) -> tuple[TrafficBreakdown, GridGeometry]:
    """Compute the launch's :class:`TrafficBreakdown` under a profile."""
    pattern = problem.pattern
    shape = problem.shape
    geom = grid_geometry(problem, params)
    ws = params.ws(pattern)
    qs = params.qs(pattern)

    # Per-block, per-iteration staged volumes (bytes).
    if profile.a_load is ALoadMode.FULL:
        a_frac = 1.0
    else:  # PACKED or GATHERED: only the needed columns are touched
        a_frac = expected_packed_fraction(pattern, qs)
    a_iter = params.ms * params.ks * a_frac * FP32_BYTES
    b_iter = ws * params.ns * FP32_BYTES
    d_iter = ws * qs * index_bytes if profile.uses_index_matrix else 0.0
    col_iter = params.ks * FP32_BYTES if profile.reads_colinfo else 0.0

    launches = geom.total_blocks * geom.iterations
    a_staged = a_iter * launches * profile.a_traffic_factor
    b_staged = b_iter * launches
    d_staged = d_iter * launches
    col_staged = col_iter * launches
    c_written = float(shape.m * shape.n * FP32_BYTES)

    # L2 residency: operands whose whole footprint fits in the usable
    # L2 fraction are read from DRAM once, then re-served from L2.
    usable_l2 = spec.l2_bytes * calib.l2_usable_fraction
    q = pattern.window_count_n(shape.n)
    b_total = float(problem.w * shape.n * FP32_BYTES)
    d_total = float(problem.w * q * index_bytes) if profile.uses_index_matrix else 0.0
    a_total = float(shape.m * shape.k * FP32_BYTES)
    col_total = col_staged / max(1, geom.iterations)  # one copy per (kb, jb)

    def dram_portion(
        criterion_bytes: float, own_bytes: float, staged: float
    ) -> float:
        """DRAM charge for one operand: when the residency set
        (``criterion_bytes``, e.g. B' together with D) fits in usable
        L2, DRAM supplies the operand once (``own_bytes``); otherwise
        every staged byte misses to DRAM."""
        if staged <= 0.0:
            return 0.0
        if criterion_bytes <= usable_l2:
            return min(staged, own_bytes)
        return staged

    return (
        TrafficBreakdown(
            a_staged=a_staged,
            b_staged=b_staged,
            d_staged=d_staged,
            colinfo_staged=col_staged,
            c_written=c_written,
            a_dram=dram_portion(a_total, a_total, a_staged),
            b_dram=dram_portion(b_total + d_total, b_total, b_staged),
            d_dram=dram_portion(b_total + d_total, d_total, d_staged),
            colinfo_dram=dram_portion(col_total, col_total, col_staged),
        ),
        geom,
    )
