"""Calibration constants for the performance model.

Every constant that is *not* derived from first principles lives here,
with the observation that anchors it.  Nothing is per-figure: the same
constants serve all experiments, so a change here shifts every figure
consistently (as real hardware behaviour would).

Anchors from the paper:

* A100 efficiency at 0% sparsity ~ cuBLAS (Fig. 7);
* V3 roofline efficiencies 96/93/95/88% at 50/62.5/75/87.5% (§IV-E);
* nmSPARSE roofline efficiencies 64/63/49/73% (§IV-E);
* headline A100 speedups over cuBLAS 1.8/2.4/3.5/6.3x (§IV-D) and
  over nmSPARSE 1.5/1.8/1.5/1.2x;
* smaller sparse gains on 3090/4090 (§IV-B, §IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import CalibrationError
from repro.gpu.spec import GPUSpec

__all__ = ["Calibration", "calibration_for", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class Calibration:
    """Tunable model constants (see module docstring for anchors)."""

    #: Sustained fraction of peak DRAM bandwidth for streaming tile
    #: loads (STREAM-like; NVIDIA parts sustain 80-90% of peak).
    dram_efficiency: float = 0.85

    #: Fraction of L2 usable for cross-block residency of the
    #: compressed operand (the rest holds A tiles in flight, C
    #: write-back, metadata).
    l2_usable_fraction: float = 0.75

    #: L2-to-SM bandwidth as a multiple of peak DRAM bandwidth
    #: (Ampere/Ada sustain roughly 2-3x DRAM out of L2).
    l2_bw_multiple: float = 2.5

    #: Peak global-load bytes one SM can pull per core cycle (LSU/miss
    #: path); limits small launches that cannot saturate DRAM.
    per_sm_ldg_bytes_per_cycle: float = 64.0

    #: Peak L2->SM staging bytes per SM per cycle.
    per_sm_l2_bytes_per_cycle: float = 128.0

    #: Cycles of exposed latency per main-loop iteration in the
    #: synchronous (V1/V2, Listing 1) schedule: the LDG->STS->__sync
    #: barrier sequence that double buffering (V3, Listing 4) removes.
    sync_exposure_cycles: float = 1600.0

    #: Fraction of streaming bandwidth the synchronous schedule
    #: sustains: without async copies the barrier drains the memory
    #: pipeline every iteration (the latency-hiding deficit V3 fixes).
    sync_load_bw_factor: float = 0.65

    #: Extra exposure multiplier when the packed path runs under the
    #: synchronous schedule (V2): the col_info -> As load-load
    #: dependency of §III-C2 is serialized until V3's pipeline hides it.
    packed_sync_exposure_scale: float = 1.6

    #: Residual non-overlapped fraction of the shorter stage under the
    #: V3 double-buffered pipeline (sync + issue gaps).
    v3_residual_exposure: float = 0.06

    #: Extra warp instructions per inner-kernel step per warp spent on
    #: index handling (Ds reads + address arithmetic) without (V1/V2)
    #: and with (V3) register prefetching of indices.
    aux_instr_per_step_v1v2: float = 2.0
    aux_instr_per_step_v3: float = 0.75

    #: Kernel launch + epilogue overhead per launch, seconds.
    launch_overhead_s: float = 4.0e-6

    #: Pipeline fill: global-load latency paid once per block wave
    #: (cycles).
    fill_latency_cycles: float = 1200.0

    #: Issue efficiency of a well-tuned from-scratch inner kernel
    #: (Listing 2/4) and of vendor cuBLAS kernels.
    nm_issue_efficiency: float = 0.95
    cublas_issue_efficiency: float = 0.97

    #: nmSPARSE modelling: its kernels gather only the needed A vectors
    #: (their VW format) but with smaller tiles, a shallow fixed ``ks``
    #: and none of the hierarchical reuse of §III-B, so their gathered
    #: traffic is inflated by this locality factor; they also run a
    #: weaker inner kernel (4x4 thread tiles, CMAR 2) under a partially
    #: pipelined schedule.
    nmsparse_a_traffic_factor: float = 2.0
    nmsparse_issue_efficiency: float = 0.65
    nmsparse_sync_exposure_scale: float = 1.0
    nmsparse_load_bw_factor: float = 0.8
    nmsparse_fixed_ks: int = 128

    #: Sputnik modelling: unstructured CSR, 1-wide vectors — sustains a
    #: low fraction of FP32 peak (its published SpMM numbers) plus
    #: sector-inflated gather traffic.  Because its row-product kernels
    #: are gather-bandwidth bound, the sustainable FLOP rate is also
    #: capped at ``sputnik_ai_cap`` FLOPs per DRAM byte — this is what
    #: keeps it slow on the bandwidth-starved consumer parts.
    sputnik_issue_efficiency: float = 0.19
    sputnik_gather_inflation: float = 2.0
    sputnik_ai_cap_flop_per_byte: float = 2.5

    def __post_init__(self) -> None:
        for name, low, high in [
            ("dram_efficiency", 0.3, 1.0),
            ("l2_usable_fraction", 0.1, 1.0),
            ("l2_bw_multiple", 1.0, 6.0),
            ("per_sm_ldg_bytes_per_cycle", 16.0, 256.0),
            ("per_sm_l2_bytes_per_cycle", 32.0, 512.0),
            ("v3_residual_exposure", 0.0, 0.5),
            ("cublas_issue_efficiency", 0.5, 1.0),
            ("nm_issue_efficiency", 0.5, 1.0),
            ("nmsparse_issue_efficiency", 0.2, 1.0),
            ("sputnik_issue_efficiency", 0.05, 1.0),
        ]:
            value = getattr(self, name)
            if not (low <= value <= high):
                raise CalibrationError(
                    f"{name}={value} outside its documented range [{low}, {high}]"
                )
        if self.sync_exposure_cycles < 0 or self.fill_latency_cycles < 0:
            raise CalibrationError("latency cycle constants must be non-negative")
        if not (0.2 <= self.sync_load_bw_factor <= 1.0):
            raise CalibrationError(
                f"sync_load_bw_factor={self.sync_load_bw_factor} outside [0.2, 1.0]"
            )
        if not (0.2 <= self.nmsparse_load_bw_factor <= 1.0):
            raise CalibrationError(
                f"nmsparse_load_bw_factor={self.nmsparse_load_bw_factor} "
                "outside [0.2, 1.0]"
            )

    def with_overrides(self, **kwargs: float) -> "Calibration":
        """Return a copy with selected constants replaced (used by the
        ablation benchmarks)."""
        return replace(self, **kwargs)


DEFAULT_CALIBRATION = Calibration()

#: Per-GPU overrides.  The consumer parts sustain a slightly lower
#: fraction of their paper bandwidth under mixed read/write streams.
_PER_GPU: dict[str, Calibration] = {
    "A100 80G": DEFAULT_CALIBRATION,
    "RTX 3090": DEFAULT_CALIBRATION.with_overrides(dram_efficiency=0.82),
    "RTX 4090": DEFAULT_CALIBRATION.with_overrides(dram_efficiency=0.82),
}


def calibration_for(spec: GPUSpec) -> Calibration:
    """Calibration constants for a GPU (falls back to defaults)."""
    return _PER_GPU.get(spec.name, DEFAULT_CALIBRATION)
