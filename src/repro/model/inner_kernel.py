"""Inner-kernel issue model (paper §III-B2).

Per main-loop iteration a block runs ``ws`` inner steps; in each step
every warp issues

* ``mt*nt`` warp-FMA instructions (one per accumulator element),
* ``(mt + nt)/lds_width`` warp-LDS instructions for the At/Bt
  fragments (the alpha of Eq. 6),
* a few auxiliary instructions for index handling (fewer when V3
  prefetches indices into registers, Listing 4 line 12).

The step's cost on one SM is the max of three resources: FMA
throughput, shared-memory bandwidth (inflated by measured bank
conflicts), and instruction issue slots.  The FMA term dominating is
what "close-to-theoretical peak" requires; on 128-core SMs (3090/4090)
the issue term bites, reproducing the paper's §IV-B observation that
those parts cannot fully hide the indirect-access overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FP32_BYTES
from repro.gpu.banks import conflict_multiplier
from repro.gpu.isa import IssueModel
from repro.kernels.thread_grid import ThreadGrid
from repro.kernels.tiling import TileParams
from repro.model.events import InstructionBudget

__all__ = ["InnerKernelModel", "build_instruction_budget"]


def build_instruction_budget(
    params: TileParams,
    ws: int,
    aux_instr_per_step: float,
    *,
    lds_width_floats: int = 4,
) -> InstructionBudget:
    """Instruction counts for one main-loop iteration of one block.

    Fragment loads are issued in up-to-``lds_width_floats`` chunks
    (LDS.128 by default), so a thread needs ``ceil(mt/4) + ceil(nt/4)``
    LDS instructions per step — Eq. 6's alpha at instruction
    granularity (a 2-float fragment still costs a whole instruction).
    """
    warps = params.warps_per_block
    steps = ws
    fma = warps * params.mt * params.nt * steps
    lds_instr_per_step = (
        -(-params.mt // lds_width_floats) + -(-params.nt // lds_width_floats)
    )
    # Each wide LDS occupies the shared-memory pipe for one beat per
    # 128 served bytes: LDS.128 = 4 beats, LDS.64 = 2, LDS.32 = 1.
    beats_m = -(-params.mt // lds_width_floats) * min(params.mt, lds_width_floats)
    beats_n = -(-params.nt // lds_width_floats) * min(params.nt, lds_width_floats)
    lds_beats_per_step = beats_m + beats_n
    lds = warps * lds_instr_per_step * steps
    aux = warps * aux_instr_per_step * steps
    # Shared-memory bytes with broadcast de-duplication: per step each
    # warp touches its mr distinct As words and nr distinct Bs words.
    lds_bytes = warps * (params.mr + params.nr) * FP32_BYTES * steps
    sts_bytes = 0.0  # staging stores are charged to the load stage
    return InstructionBudget(
        warp_fma=fma,
        warp_lds=lds,
        warp_aux=aux,
        lds_bytes=lds_bytes,
        sts_bytes=sts_bytes,
        extras={"lds_beats": warps * lds_beats_per_step * steps},
    )


@dataclass(frozen=True)
class InnerKernelModel:
    """Per-iteration compute-stage cost for one block on one SM."""

    fma_cycles: float
    lds_cycles: float
    issue_cycles: float
    lsu_cycles: float
    conflict_mult: float

    @property
    def cycles(self) -> float:
        """The binding resource's cycle count."""
        return max(
            self.fma_cycles, self.lds_cycles, self.issue_cycles, self.lsu_cycles
        )

    @property
    def limiter(self) -> str:
        costs = {
            "fma": self.fma_cycles,
            "shared-memory": self.lds_cycles,
            "issue": self.issue_cycles,
            "lsu": self.lsu_cycles,
        }
        return max(costs, key=lambda key: costs[key])

    @property
    def issue_efficiency(self) -> float:
        """FMA cycles over the bound — the fraction of peak math the
        inner kernel can sustain."""
        return self.fma_cycles / self.cycles if self.cycles else 1.0


def evaluate_inner_kernel(
    params: TileParams,
    ws: int,
    issue: IssueModel,
    aux_instr_per_step: float,
    *,
    lds_width_floats: int = 4,
    measure_conflicts: bool = True,
) -> InnerKernelModel:
    """Evaluate the inner-kernel cost of one iteration of one block
    running alone on an SM (the engine scales for co-residency)."""
    budget = build_instruction_budget(
        params, ws, aux_instr_per_step, lds_width_floats=lds_width_floats
    )
    fma_cycles = budget.warp_fma / issue.warp_fma_per_cycle
    conflict = 1.0
    if measure_conflicts:
        # With ms and ns multiples of 32, production kernels reach a
        # conflict-free vectorized layout by splitting each thread's
        # fragment into 4-float pieces that tile 128-byte rows (the
        # §III-B1 rule).  Shapes violating the rule pay the naive
        # pattern's measured conflict degree.
        if params.ms % 32 == 0 and params.ns % 32 == 0:
            conflict = 1.0
        else:  # pragma: no cover - TileParams enforces the rule today
            grid = ThreadGrid(params)
            addrs = grid.warp_row_addresses(0)
            mults = [
                conflict_multiplier(a, words_per_thread=lds_width_floats)
                for a in addrs
            ]
            conflict = max(mults) if mults else 1.0
    lds_cycles = issue.lds_cycles(budget.lds_bytes, conflict)
    issue_cycles = budget.warp_total / issue.issue_slots_per_cycle
    # The shared-memory pipe serves one 128-byte beat per cycle; wide
    # fragment loads occupy it for several beats, so fragment-heavy
    # (low-CMAR) thread tiles saturate it before FMA throughput — the
    # mechanism behind Eq. 6's preference for large mt x nt.
    lsu_cycles = budget.extras.get("lds_beats", budget.warp_lds) * conflict
    return InnerKernelModel(
        fma_cycles=fma_cycles,
        lds_cycles=lds_cycles,
        issue_cycles=issue_cycles,
        lsu_cycles=lsu_cycles,
        conflict_mult=conflict,
    )
