"""Analytic GPU performance simulator.

Implements the paper's top-down performance analysis as an executable
model: per-block staged traffic (the Eq. 3 accounting), inner-kernel
issue rates (Eq. 6 CMAR plus bank conflicts), occupancy-aware overlap,
software-pipeline scheduling for the V1/V2/V3 step-wise optimizations,
and cost models for the cuBLAS / nmSPARSE / Sputnik baselines.
"""

from repro.model.workload import ProblemShape, SparseProblem
from repro.model.events import InstructionBudget, TrafficBreakdown
from repro.model.timing import KernelReport, StageBreakdown
from repro.model.engine import KernelSimulator, simulate_nm_spmm
from repro.model.calibration import Calibration, calibration_for
from repro.model.pipeline import (
    PipelineStage,
    SoftwarePipeline,
    steady_state_cycles,
)

__all__ = [
    "ProblemShape",
    "SparseProblem",
    "TrafficBreakdown",
    "InstructionBudget",
    "KernelReport",
    "StageBreakdown",
    "simulate_nm_spmm",
    "KernelSimulator",
    "Calibration",
    "calibration_for",
    "PipelineStage",
    "SoftwarePipeline",
    "steady_state_cycles",
]
