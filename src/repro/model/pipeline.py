"""Software-pipeline scheduling model (paper §III-C2, Figs. 5/6).

Two views of the same mechanism:

* :func:`steady_state_cycles` — closed form used by the engine: per
  iteration the load stage (Lg2s) and the compute stage overlap by a
  factor ``overlap`` (1.0 = the fully double-buffered V3 pipeline,
  0.0 = strict serialization);
* :class:`SoftwarePipeline` — a discrete scheduler that walks the
  iteration DAG explicitly (double-buffered or serial) and reports the
  per-iteration timeline; used by the pipeline ablation benchmark and
  by property tests that check the closed form against the schedule.

The direction of covering — "computation instructions mask load
latency" (moderate sparsity, Fig. 5) versus "loads mask computation"
(high sparsity, Fig. 6) — is emergent: whichever stage is longer
covers the other once ``overlap`` is high.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.utils.intmath import clamp

__all__ = ["PipelineStage", "SoftwarePipeline", "steady_state_cycles"]


@dataclass(frozen=True)
class PipelineStage:
    """One stage instance in the discrete schedule."""

    name: str
    iteration: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def steady_state_cycles(
    load_cycles: float,
    compute_cycles: float,
    iterations: int,
    overlap: float,
    *,
    fill_cycles: float = 0.0,
    drain_cycles: float = 0.0,
) -> float:
    """Total cycles of a two-stage pipeline over ``iterations``.

    ``overlap`` in [0, 1] linearly interpolates between serial
    execution (``load + compute`` per iteration) and perfect double
    buffering (``max(load, compute)`` per iteration, plus one load fill
    and one compute drain).
    """
    if iterations <= 0:
        raise SimulationError(f"iterations must be positive, got {iterations}")
    if load_cycles < 0 or compute_cycles < 0:
        raise SimulationError("stage costs must be non-negative")
    overlap = clamp(overlap, 0.0, 1.0)
    serial = load_cycles + compute_cycles
    pipelined = max(load_cycles, compute_cycles)
    per_iter = overlap * pipelined + (1.0 - overlap) * serial
    total = per_iter * iterations
    # The pipelined fraction pays fill (first load exposed) and drain
    # (last compute exposed) once per block.
    total += overlap * (min(load_cycles, compute_cycles))
    return total + fill_cycles + drain_cycles


class SoftwarePipeline:
    """Discrete double-buffered pipeline scheduler.

    Models the Listing 4 structure: with ``buffers = 2`` the load of
    iteration ``i`` may start as soon as (a) the load unit is free and
    (b) buffer ``i % 2`` has been released by compute ``i - 2``;
    compute ``i`` starts when load ``i`` is done and the compute unit
    is free.  ``buffers = 1`` degenerates to the serial V1 schedule.
    """

    def __init__(self, buffers: int = 2):
        if buffers < 1:
            raise SimulationError(f"buffers must be >= 1, got {buffers}")
        self.buffers = buffers

    def schedule(
        self,
        load_cycles: "list[float] | tuple[float, ...]",
        compute_cycles: "list[float] | tuple[float, ...]",
    ) -> list[PipelineStage]:
        """Produce the stage timeline for per-iteration costs."""
        if len(load_cycles) != len(compute_cycles):
            raise SimulationError(
                "load and compute sequences must have equal length"
            )
        if any(c < 0 for c in load_cycles) or any(c < 0 for c in compute_cycles):
            raise SimulationError("stage costs must be non-negative")
        stages: list[PipelineStage] = []
        load_free = 0.0
        comp_free = 0.0
        comp_end: list[float] = []
        for i, (lc, cc) in enumerate(zip(load_cycles, compute_cycles, strict=True)):
            # Buffer reuse: wait until the compute that last used this
            # buffer slot has finished.
            buffer_ready = 0.0
            prev = i - self.buffers
            if prev >= 0:
                buffer_ready = comp_end[prev]
            load_start = max(load_free, buffer_ready)
            load_end = load_start + lc
            stages.append(PipelineStage("load", i, load_start, load_end))
            load_free = load_end
            comp_start = max(comp_free, load_end)
            end = comp_start + cc
            stages.append(PipelineStage("compute", i, comp_start, end))
            comp_free = end
            comp_end.append(end)
        return stages

    def total_cycles(
        self,
        load_cycles: "list[float] | tuple[float, ...]",
        compute_cycles: "list[float] | tuple[float, ...]",
    ) -> float:
        """Makespan of the schedule."""
        stages = self.schedule(load_cycles, compute_cycles)
        return max((s.end for s in stages), default=0.0)

    def uniform_total(
        self, load_cycles: float, compute_cycles: float, iterations: int
    ) -> float:
        """Makespan for identical per-iteration costs."""
        return self.total_cycles(
            [load_cycles] * iterations, [compute_cycles] * iterations
        )
