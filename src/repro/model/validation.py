"""Model self-validation: analytic traffic vs executable trace.

The performance model's credibility rests on its event counts matching
what the kernels actually do.  This module runs the *functional*
blocked/packed executors on a downscaled instance of a problem while
recording a :class:`~repro.kernels.blocked.KernelTrace`, computes the
analytic :class:`~repro.model.events.TrafficBreakdown` for the same
plan, and reports the relative deviation per operand — a
consistency check a user can run on their own shapes
(``python -m repro validate``) and the test suite pins down.

FMA counts and the full/blocked A/B staging volumes must agree exactly;
the packed A volume is a random-pattern *expectation*, so it is only
required to agree within a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.kernels.blocked import KernelTrace, nm_spmm_blocked
from repro.kernels.packed import nm_spmm_packed
from repro.kernels.tiling import TileParams
from repro.model.calibration import calibration_for
from repro.model.profiles import ALoadMode, ExecutionProfile, OverlapMode
from repro.model.traffic import compute_traffic
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.compress import compress
from repro.sparsity.config import NMPattern
from repro.sparsity.pruning import prune_dense
from repro.utils.tables import TextTable
from repro.workloads.synthetic import random_dense

__all__ = ["ValidationRow", "ValidationReport", "validate_model"]


@dataclass(frozen=True)
class ValidationRow:
    """One compared quantity."""

    quantity: str
    analytic: float
    measured: float

    @property
    def rel_error(self) -> float:
        if self.measured == 0:
            return 0.0 if self.analytic == 0 else float("inf")
        return abs(self.analytic - self.measured) / abs(self.measured)


@dataclass(frozen=True)
class ValidationReport:
    """All compared quantities for one (pattern, tiling) pair."""

    pattern: NMPattern
    params: TileParams
    rows: tuple[ValidationRow, ...]

    def max_rel_error(self, *, exclude_expected: bool = True) -> float:
        """Largest deviation; packed-A is an expectation and can be
        excluded (its own tolerance is checked separately)."""
        worst = 0.0
        for row in self.rows:
            if exclude_expected and row.quantity.startswith("packed"):
                continue
            worst = max(worst, row.rel_error)
        return worst

    def row(self, quantity: str) -> ValidationRow:
        for r in self.rows:
            if r.quantity == quantity:
                return r
        raise KeyError(quantity)

    def render(self) -> str:
        table = TextTable(
            ["quantity", "analytic", "executed", "rel. error"],
            title=(
                f"Model validation — {self.pattern.label()}, "
                f"{self.params.label()}"
            ),
        )
        for r in self.rows:
            table.add_row(
                [
                    r.quantity,
                    f"{r.analytic:,.0f}",
                    f"{r.measured:,.0f}",
                    f"{r.rel_error * 100:.2f}%",
                ]
            )
        return table.render()


def validate_model(
    pattern: NMPattern | None = None,
    *,
    m: int = 96,
    n: int = 64,
    k: int = 64,
    params: TileParams | None = None,
    gpu: "str | GPUSpec" = "A100",
    seed: int = 0,
) -> ValidationReport:
    """Cross-check the analytic traffic/instruction model against the
    executable kernels on a small instance."""
    pattern = pattern or NMPattern(2, 8, vector_length=4)
    spec = resolve_gpu(gpu)
    calib = calibration_for(spec)
    if params is None:
        params = TileParams(
            ms=32, ns=32, mr=16, nr=32, mt=4, nt=4, ks=2 * pattern.m
        )
    problem = SparseProblem(ProblemShape(m, n, k), pattern)

    rng = np.random.default_rng(seed)
    a = random_dense(m, pattern.padded_k(k), rng)
    b = random_dense(pattern.padded_k(k), pattern.padded_n(n), rng)
    comp = compress(pattern, *prune_dense(pattern, b))

    def profile(mode: ALoadMode) -> ExecutionProfile:
        return ExecutionProfile(
            name="validation",
            overlap=OverlapMode.DOUBLE_BUFFER,
            a_load=mode,
            aux_instr_per_step=0.0,
            issue_efficiency=1.0,
        )

    full_traffic, geom = compute_traffic(
        problem, params, spec, calib, profile(ALoadMode.FULL)
    )
    packed_traffic, _ = compute_traffic(
        problem, params, spec, calib, profile(ALoadMode.PACKED)
    )

    blocked_trace = KernelTrace()
    nm_spmm_blocked(a, comp, params, trace=blocked_trace)
    packed_trace = KernelTrace()
    nm_spmm_packed(a, comp, params, trace=packed_trace)

    useful_fma = problem.useful_flops / 2
    rows = (
        ValidationRow("blocks", geom.total_blocks, blocked_trace.blocks),
        ValidationRow(
            "iterations x blocks",
            geom.total_blocks * geom.iterations,
            blocked_trace.main_loop_iterations,
        ),
        ValidationRow("fma ops", useful_fma, blocked_trace.fma_ops),
        ValidationRow("A staged bytes", full_traffic.a_staged, blocked_trace.ldg_a_bytes),
        ValidationRow("B staged bytes", full_traffic.b_staged, blocked_trace.ldg_b_bytes),
        ValidationRow("D staged bytes", full_traffic.d_staged, blocked_trace.ldg_d_bytes),
        ValidationRow("C written bytes", full_traffic.c_written, blocked_trace.stg_bytes),
        ValidationRow(
            "packed A staged bytes (expected vs one draw)",
            packed_traffic.a_staged,
            packed_trace.ldg_a_bytes,
        ),
    )
    return ValidationReport(pattern=pattern, params=params, rows=rows)
