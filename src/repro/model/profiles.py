"""Execution profiles: how a kernel family schedules and loads.

One engine (:mod:`repro.model.engine`) simulates every kernel in the
paper; what differs between NM-SpMM V1/V2/V3, cuBLAS and nmSPARSE is
captured by an :class:`ExecutionProfile`:

* ``overlap``     — synchronous Listing-1 schedule vs the Listing-4
  double-buffered pipeline;
* ``a_load``      — how A tiles are staged: the full ``ms x ks`` slice,
  the packed subset (Listing 3), or per-window gathers (nmSPARSE's VW
  kernels);
* instruction-level knobs (aux index instructions, issue efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.model.calibration import Calibration

__all__ = ["OverlapMode", "ALoadMode", "ExecutionProfile", "profile_for_version"]


class OverlapMode(str, Enum):
    """Main-loop scheduling discipline."""

    SYNC = "sync"  # Listing 1: load, __syncthreads, compute
    DOUBLE_BUFFER = "double-buffer"  # Listing 4: async load overlaps compute


class ALoadMode(str, Enum):
    """How the A operand is staged."""

    FULL = "full"  # entire ms x ks slice (non-packing)
    PACKED = "packed"  # col_info-packed subset (Listing 3)
    GATHERED = "gathered"  # per-window gathers without smem packing


@dataclass(frozen=True)
class ExecutionProfile:
    """Scheduling/loading profile of one kernel family.

    ``load_bw_factor`` scales the achievable load bandwidth: the
    synchronous Listing-1 schedule keeps too few loads in flight to
    saturate the memory system (no async copies, a barrier after every
    tile), so V1/V2 sustain a lower fraction than the pipelined V3.
    """

    name: str
    overlap: OverlapMode
    a_load: ALoadMode
    aux_instr_per_step: float
    issue_efficiency: float
    a_traffic_factor: float = 1.0
    sync_exposure_scale: float = 1.0
    load_bw_factor: float = 1.0
    uses_index_matrix: bool = True

    @property
    def is_packed(self) -> bool:
        return self.a_load is ALoadMode.PACKED

    @property
    def reads_colinfo(self) -> bool:
        """Only the packed path loads col_info (Listing 3 line 15)."""
        return self.a_load is ALoadMode.PACKED


def profile_for_version(
    version: str, calib: Calibration, *, high_sparsity: bool
) -> ExecutionProfile:
    """The NM-SpMM step-wise optimization levels of §IV-B.

    * **V1** — hierarchical blocking only (Listings 1/2): synchronous
      schedule, full A tiles, on-demand index reads.
    * **V2** — V1 + footprint minimization (Listing 3): packs A when
      the sparsity is high; identical to V1 at moderate sparsity.
    * **V3** — V2 + pipeline latency hiding (Listing 4): double
      buffering and register index prefetch.
    """
    v = version.upper()
    if v == "V1":
        return ExecutionProfile(
            name="NM-SpMM V1",
            overlap=OverlapMode.SYNC,
            a_load=ALoadMode.FULL,
            aux_instr_per_step=calib.aux_instr_per_step_v1v2,
            issue_efficiency=calib.nm_issue_efficiency,
            load_bw_factor=calib.sync_load_bw_factor,
        )
    if v == "V2":
        return ExecutionProfile(
            name="NM-SpMM V2",
            overlap=OverlapMode.SYNC,
            a_load=ALoadMode.PACKED if high_sparsity else ALoadMode.FULL,
            aux_instr_per_step=calib.aux_instr_per_step_v1v2,
            issue_efficiency=calib.nm_issue_efficiency,
            load_bw_factor=calib.sync_load_bw_factor,
        )
    if v == "V3":
        return ExecutionProfile(
            name="NM-SpMM V3",
            overlap=OverlapMode.DOUBLE_BUFFER,
            a_load=ALoadMode.PACKED if high_sparsity else ALoadMode.FULL,
            aux_instr_per_step=calib.aux_instr_per_step_v3,
            issue_efficiency=calib.nm_issue_efficiency,
        )
    raise ValueError(f"unknown NM-SpMM version {version!r}; expected V1/V2/V3")
