"""Problem descriptors for the performance model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.dense import gemm_flops
from repro.sparsity.config import NMPattern
from repro.utils.validation import check_positive_int

__all__ = ["ProblemShape", "SparseProblem"]


@dataclass(frozen=True, slots=True)
class ProblemShape:
    """An ``(m, n, k)`` matrix-multiplication problem:
    ``C[m][n] = A[m][k] @ B[k][n]``."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        check_positive_int("m", self.m)
        check_positive_int("n", self.n)
        check_positive_int("k", self.k)

    @property
    def dense_flops(self) -> int:
        """FLOPs of the dense product, ``2*m*n*k``."""
        return gemm_flops(self.m, self.n, self.k)

    @property
    def dense_bytes(self) -> int:
        """Compulsory FP32 bytes (A + B + C, each touched once)."""
        return 4 * (self.m * self.k + self.k * self.n + self.m * self.n)

    def label(self) -> str:
        return f"{self.m}x{self.n}x{self.k}"


@dataclass(frozen=True, slots=True)
class SparseProblem:
    """A :class:`ProblemShape` pruned with an :class:`NMPattern`."""

    shape: ProblemShape
    pattern: NMPattern

    @property
    def w(self) -> int:
        """Compressed depth ``k*N/M`` (padded)."""
        return self.pattern.compressed_rows(self.shape.k)

    @property
    def useful_flops(self) -> int:
        """FLOPs the sparse kernel must execute: ``2*m*n*w``."""
        return 2 * self.shape.m * self.shape.n * self.w

    @property
    def sparsity(self) -> float:
        return self.pattern.sparsity

    @property
    def ideal_speedup(self) -> float:
        """Compute-reduction bound, ``M/N`` (Fig. 9's green line)."""
        return self.pattern.ideal_speedup

    def label(self) -> str:
        return f"{self.shape.label()}@{self.pattern.label()}"
