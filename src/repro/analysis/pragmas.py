"""Per-line pragma suppression: ``# repro-lint: disable=CODE[,CODE]``.

A pragma suppresses the named rule codes *on its own line only* —
blanket file- or block-level waivers are deliberately unsupported, so
every suppression sits next to the code it excuses and carries its
justification in the same comment::

    start = time.perf_counter()  # repro-lint: disable=DET002 -- measured host span

``disable=all`` silences every rule on the line (for generated code).
A malformed pragma (no codes, or a token that is neither ``all`` nor a
plausible rule code) raises :class:`~repro.errors.LintError` rather
than silently suppressing nothing.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.errors import LintError

__all__ = ["PRAGMA_ALL", "collect_suppressions", "is_suppressed"]

#: The ``disable=`` token that silences every rule on the line.
PRAGMA_ALL = "all"

_PRAGMA_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>[^#]*)")
_DISABLE_RE = re.compile(r"disable=(?P<codes>[A-Za-z0-9_,\s]*)")
_CODE_RE = re.compile(r"^[A-Z]+[0-9]+$")


def _parse_pragma(body: str, line: int) -> set[str]:
    match = _DISABLE_RE.search(body)
    if match is None:
        raise LintError(
            f"line {line}: repro-lint pragma without a disable= clause: "
            f"{body.strip()!r}"
        )
    codes: set[str] = set()
    raw = match.group("codes")
    # Codes end at the first token that stops looking like a code list;
    # anything after (e.g. a ``-- justification`` tail) is free text.
    for token in raw.replace(",", " ").split():
        if token == PRAGMA_ALL:
            codes.add(PRAGMA_ALL)
        elif _CODE_RE.match(token):
            codes.add(token)
        else:
            break
    if not codes:
        raise LintError(
            f"line {line}: repro-lint disable= names no rule codes: "
            f"{body.strip()!r}"
        )
    return codes


def collect_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule codes suppressed on that line.

    Pragmas are read from real comment tokens (via :mod:`tokenize`),
    so the pattern appearing inside a string literal is not a pragma.
    """
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        # Unparseable files surface as LINT999 findings from the
        # engine; there is nothing to suppress.
        return suppressions
    for tok in comments:
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        codes = _parse_pragma(match.group("body"), line)
        suppressions.setdefault(line, set()).update(codes)
    return suppressions


def is_suppressed(
    suppressions: dict[int, set[str]], line: int, code: str
) -> bool:
    """Whether ``code`` is pragma-suppressed on ``line``."""
    active = suppressions.get(line)
    if not active:
        return False
    return code in active or PRAGMA_ALL in active
