"""Grandfathered findings: the JSON baseline file.

A baseline freezes the set of *known* findings so the CI gate can land
at zero new findings while legacy debt is paid down incrementally.
Matching is by :meth:`Finding.identity` — ``(file, code, message)``,
line numbers excluded — with multiset semantics: a baseline entry
absorbs at most one live finding, so duplicating a violation on a new
line still fails the gate.

The file is plain JSON (schema ``repro-lint-baseline/v1``) and is
meant to be reviewed in diffs: regenerate it with
``repro lint --update-baseline`` and justify any growth in the PR.
This repository ships an **empty** baseline — every pre-existing
finding was fixed or pragma'd at the source line.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.finding import Finding
from repro.errors import LintError

__all__ = ["BASELINE_SCHEMA", "Baseline", "load_baseline", "save_baseline"]

BASELINE_SCHEMA = "repro-lint-baseline/v1"

_Identity = tuple[str, str, str]


@dataclass
class Baseline:
    """A multiset of grandfathered finding identities."""

    entries: Counter[_Identity]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries=Counter())

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries=Counter(f.identity() for f in findings))

    def __len__(self) -> int:
        return sum(self.entries.values())

    def partition(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], int]:
        """Split ``findings`` into ``(new, grandfathered, stale)``.

        ``stale`` counts baseline entries no live finding matched —
        debt that was paid down; ``--update-baseline`` prunes them.
        """
        remaining = Counter(self.entries)
        new: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            key = finding.identity()
            if remaining[key] > 0:
                remaining[key] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale = sum(remaining.values())
        return new, grandfathered, stale

    def to_json(self) -> dict[str, object]:
        rows = [
            {"file": file, "code": code, "message": message, "count": count}
            for (file, code, message), count in sorted(self.entries.items())
        ]
        return {"schema": BASELINE_SCHEMA, "findings": rows}


def load_baseline(path: str) -> Baseline:
    """Read a baseline file, validating its schema."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise LintError(f"cannot read baseline {path!r}: {exc}") from exc
    except ValueError as exc:
        raise LintError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise LintError(
            f"baseline {path!r} lacks schema {BASELINE_SCHEMA!r} "
            f"(got {data.get('schema') if isinstance(data, dict) else data!r})"
        )
    rows = data.get("findings")
    if not isinstance(rows, list):
        raise LintError(f"baseline {path!r}: 'findings' must be a list")
    entries: Counter[_Identity] = Counter()
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            raise LintError(f"baseline {path!r}: findings[{i}] is not an object")
        try:
            key = (str(row["file"]), str(row["code"]), str(row["message"]))
        except KeyError as exc:
            raise LintError(
                f"baseline {path!r}: findings[{i}] lacks key {exc}"
            ) from None
        count = row.get("count", 1)
        if not isinstance(count, int) or count < 1:
            raise LintError(
                f"baseline {path!r}: findings[{i}].count must be a "
                f"positive int, got {count!r}"
            )
        entries[key] += count
    return Baseline(entries=entries)


def save_baseline(baseline: Baseline, path: str) -> None:
    """Write ``baseline`` as reviewable, sorted JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(baseline.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")
