"""Report rendering for ``repro lint``: text rows and machine JSON.

Text output is the ruff-style ``path:line:col: CODE message`` rows
(clickable in editors/CI logs) plus a one-line summary.  JSON carries
the full report under schema ``repro-lint-report/v1`` for tooling;
grandfathered findings are included with a flag rather than dropped,
so the report is a complete picture of the debt.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport
from repro.analysis.registry import available_rules

__all__ = ["REPORT_SCHEMA", "format_text", "format_json", "format_rule_list"]

REPORT_SCHEMA = "repro-lint-report/v1"


def _summary_line(report: LintReport) -> str:
    gating = len(report.gating_findings)
    parts = [
        f"{gating} finding{'s' if gating != 1 else ''}",
        f"{report.files_scanned} file{'s' if report.files_scanned != 1 else ''}",
    ]
    if report.grandfathered:
        parts.insert(1, f"{len(report.grandfathered)} grandfathered")
    if report.suppressed:
        parts.insert(1, f"{report.suppressed} pragma-suppressed")
    if report.stale_baseline:
        parts.append(
            f"{report.stale_baseline} stale baseline "
            f"entr{'ies' if report.stale_baseline != 1 else 'y'} "
            "(run --update-baseline)"
        )
    head = "clean: " if report.clean else ""
    return head + ", ".join(parts)


def format_text(report: LintReport) -> str:
    """The human gate output: one row per gating finding + summary."""
    lines = [finding.render() for finding in report.gating_findings]
    if lines:
        counts = ", ".join(
            f"{code}: {count}"
            for code, count in sorted(
                {
                    f.code: sum(
                        1 for g in report.gating_findings if g.code == f.code
                    )
                    for f in report.gating_findings
                }.items()
            )
        )
        lines.append("")
        lines.append(f"by code: {counts}")
    lines.append(_summary_line(report))
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    """The machine output: the full report as sorted, indented JSON."""
    grandfathered_ids = {id(f) for f in report.grandfathered}
    payload = {
        "schema": REPORT_SCHEMA,
        "summary": {
            "files_scanned": report.files_scanned,
            "findings": len(report.findings),
            "gating": len(report.gating_findings),
            "grandfathered": len(report.grandfathered),
            "suppressed": report.suppressed,
            "stale_baseline": report.stale_baseline,
            "by_code": report.counts_by_code(),
            "clean": report.clean,
        },
        "findings": [
            dict(f.to_json(), grandfathered=id(f) in grandfathered_ids)
            for f in report.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_list() -> str:
    """``repro lint --list-rules``: the registered rule pack."""
    from repro.utils.tables import TextTable

    table = TextTable(
        ["code", "description"],
        title="repro-lint rules (repro.analysis registry)",
    )
    for rule in available_rules():
        table.add_row([rule.code, rule.description])
    return table.render()
