"""The lint engine: walk files, parse, run rules, apply pragmas.

:func:`lint_paths` is the one entry point — the CLI, the CI gate and
the tier-1 "src is clean" test all call it.  Unparseable files are not
crashes: they surface as ``LINT999`` findings so the gate still fails
loudly and locatably.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.finding import Finding
from repro.analysis.pragmas import collect_suppressions, is_suppressed
from repro.analysis.registry import Rule, RuleContext, iter_rules
from repro.errors import LintError

__all__ = ["PARSE_FAILURE_CODE", "LintReport", "lint_paths", "lint_source"]

#: Code attached to files the engine cannot parse or read.
PARSE_FAILURE_CODE = "LINT999"


@dataclass
class LintReport:
    """The outcome of one lint run.

    ``findings`` is every live (non-suppressed) finding, sorted by
    location.  After :meth:`apply_baseline`, ``new_findings`` is the
    subset the gate fails on and ``stale_baseline`` counts paid-down
    baseline entries.
    """

    findings: list[Finding]
    files_scanned: int
    suppressed: int
    new_findings: "list[Finding] | None" = None
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: int = 0

    @property
    def gating_findings(self) -> list[Finding]:
        """What fails the gate: post-baseline news, or everything."""
        if self.new_findings is not None:
            return self.new_findings
        return self.findings

    @property
    def clean(self) -> bool:
        return not self.gating_findings

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def apply_baseline(self, baseline: Baseline) -> None:
        new, grandfathered, stale = baseline.partition(self.findings)
        self.new_findings = new
        self.grandfathered = grandfathered
        self.stale_baseline = stale


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, depth-first, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if not any(part.startswith(".") for part in p.parts)
            )
        elif path.is_file():
            yield path
        else:
            raise LintError(f"lint target {raw!r} is neither a file nor a directory")


def _display_path(path: Path, root: "Path | None") -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    rules: "Iterable[Rule] | None" = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text.

    Returns ``(findings, suppressed_count)``; used by the engine per
    file and by rule unit tests directly.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        finding = Finding(
            file=path,
            line=int(exc.lineno or 1),
            col=int(exc.offset or 0),
            code=PARSE_FAILURE_CODE,
            message=f"file does not parse: {exc.msg}",
        )
        return [finding], 0
    suppressions = collect_suppressions(source)
    context = RuleContext(
        path=path, tree=tree, source_lines=source.splitlines()
    )
    findings: list[Finding] = []
    suppressed = 0
    rule_list = list(rules) if rules is not None else list(iter_rules())
    for rule in rule_list:
        for finding in rule.check(context):
            if is_suppressed(suppressions, finding.line, finding.code):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort()
    return findings, suppressed


def lint_paths(
    paths: Sequence[str],
    *,
    rules: "Iterable[Rule] | None" = None,
    root: "str | None" = None,
    exclude: Sequence[str] = (),
) -> LintReport:
    """Lint every ``.py`` file under ``paths`` with the registered
    rule pack (or an explicit ``rules`` subset).

    ``root`` anchors display paths (defaults to the current working
    directory), which is also what DET002's sanctioned-path suffixes
    and baseline entries match against.  ``exclude`` drops files whose
    display path starts with any given posix prefix — how the CI gate
    skips ``tests/fixtures/lint/`` (deliberately broken seed files).
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rule_list = list(rules) if rules is not None else list(iter_rules())
    prefixes = tuple(p.rstrip("/") for p in exclude)
    all_findings: list[Finding] = []
    suppressed_total = 0
    files_scanned = 0
    for file_path in iter_python_files(paths):
        display = _display_path(file_path, root_path)
        if any(
            display == p or display.startswith(p + "/") for p in prefixes
        ):
            continue
        files_scanned += 1
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            all_findings.append(
                Finding(
                    file=display,
                    line=1,
                    col=0,
                    code=PARSE_FAILURE_CODE,
                    message=f"file cannot be read: {exc}",
                )
            )
            continue
        findings, suppressed = lint_source(source, path=display, rules=rule_list)
        all_findings.extend(findings)
        suppressed_total += suppressed
    all_findings.sort()
    return LintReport(
        findings=all_findings,
        files_scanned=files_scanned,
        suppressed=suppressed_total,
    )
