"""The :class:`Rule` protocol and the process-wide rule registry.

Mirrors the execution-backend registry
(:mod:`repro.backends.registry`): rules are *registered*, not
enumerated in an ``if/elif``, so a new invariant is a
:func:`register_rule` call.  The shipped rule pack
(:mod:`repro.analysis.rules`) registers itself on import; third-party
rules join the same way and are immediately picked up by the engine,
the CLI listing and the JSON report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.analysis.finding import Finding, Severity
from repro.errors import LintError

__all__ = [
    "RuleContext",
    "Rule",
    "register_rule",
    "unregister_rule",
    "get_rule",
    "available_rules",
    "rule_codes",
]


@dataclass
class RuleContext:
    """Everything a rule may inspect about one source file.

    ``path`` is the display path (posix separators, relative to the
    lint root when the file lies under it) — rules that sanction
    specific files (DET002's measured-host-span sites) match on its
    suffix.  ``tree`` is the parsed module; ``source_lines`` the raw
    text for message excerpts.
    """

    path: str
    tree: ast.Module
    source_lines: list[str] = field(default_factory=list)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""

    def finding(
        self,
        node: ast.AST,
        code: str,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            file=self.path,
            line=int(getattr(node, "lineno", 1)),
            col=int(getattr(node, "col_offset", 0)),
            code=code,
            message=message,
            severity=severity,
        )


@runtime_checkable
class Rule(Protocol):
    """One named invariant checked over a module's AST.

    ``code`` is the stable identifier pragmas and baselines key on
    (``DET001``...); ``description`` the one-liner shown by
    ``repro lint --list-rules``.  ``check`` yields findings — it must
    not mutate the tree.
    """

    code: str
    description: str

    def check(self, context: RuleContext) -> Iterable[Finding]:
        """Yield every violation of this rule in ``context.tree``."""
        ...  # pragma: no cover


#: Registration order is preserved; reports sort by location anyway.
_REGISTRY: dict[str, Rule] = {}


def register_rule(rule: Rule, *, replace: bool = False) -> Rule:
    """Register ``rule`` under its ``code`` and return it."""
    code = getattr(rule, "code", None)
    if not isinstance(code, str) or not code:
        raise LintError(f"rule {rule!r} must expose a nonempty string `code`")
    if not callable(getattr(rule, "check", None)):
        raise LintError(f"rule {code!r} must define a callable `check(context)`")
    if code in _REGISTRY and not replace:
        raise LintError(
            f"rule {code!r} is already registered ({_REGISTRY[code]!r}); "
            "pass replace=True to override"
        )
    _REGISTRY[code] = rule
    return rule


def unregister_rule(code: str) -> Rule:
    """Remove and return a registered rule (mainly for tests)."""
    try:
        return _REGISTRY.pop(code)
    except KeyError:
        raise LintError(
            f"unknown rule {code!r}; registered: {list(_REGISTRY)}"
        ) from None


def get_rule(code: str) -> Rule:
    """Look a rule up by code."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise LintError(
            f"unknown rule {code!r}; expected one of {rule_codes()}"
        ) from None


def _ensure_default_rules() -> None:
    # Imported lazily so `repro.analysis.registry` has no import cycle
    # with the rule modules (which import RuleContext from here).
    import repro.analysis.rules  # noqa: F401


def available_rules() -> tuple[Rule, ...]:
    """Every registered rule (the shipped pack registers on demand)."""
    _ensure_default_rules()
    return tuple(_REGISTRY.values())


def rule_codes() -> tuple[str, ...]:
    """The registered rule codes, in registration order."""
    _ensure_default_rules()
    return tuple(_REGISTRY)


def iter_rules(codes: "Iterable[str] | None" = None) -> Iterator[Rule]:
    """The rules to run: all registered ones, or the named subset."""
    _ensure_default_rules()
    if codes is None:
        yield from _REGISTRY.values()
        return
    for code in codes:
        yield get_rule(code)
