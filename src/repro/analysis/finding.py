"""The unit of linter output: one :class:`Finding` per rule violation.

Findings are plain data — file, line, column, rule code, message,
severity — ordered by location so reports are stable across runs and
identified by ``(file, code, message)`` for baseline matching (line
numbers shift under unrelated edits; messages do not).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How seriously a finding gates CI.

    Every shipped rule is an :attr:`ERROR` — the gate exists to keep
    the determinism/units/ledger invariants hard.  :attr:`WARNING` is
    reserved for third-party or experimental rules that want to report
    without failing the build.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    file: str
    line: int
    col: int
    code: str
    message: str
    severity: Severity = Severity.ERROR

    def identity(self) -> tuple[str, str, str]:
        """The baseline-matching key.

        Deliberately excludes ``line``/``col``: a grandfathered finding
        stays grandfathered when unrelated edits move it, and reappears
        as *new* only if its message (which embeds the offending
        expression) changes.
        """
        return (self.file, self.code, self.message)

    def render(self) -> str:
        """``path:line:col: CODE message`` — the text-format row."""
        return f"{self.file}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "severity": self.severity.value,
        }
