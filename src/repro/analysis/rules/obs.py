"""OBS001: ``Tracer.span()`` discipline.

``Tracer.span()`` returns a context manager; calling it outside a
``with`` (or without handing it to ``ExitStack.enter_context``) opens
a span that is never closed, which ``Tracer.check_invariants()`` only
catches at runtime *if* the code path runs under a tracer in tests.
The lint rule catches it on every path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.registry import RuleContext

__all__ = ["SpanOutsideWithRule"]


class SpanOutsideWithRule:
    """OBS001: every ``.span(...)`` call must be a ``with`` context."""

    code = "OBS001"
    description = (
        "Tracer.span() called outside a `with` block (or "
        "ExitStack.enter_context); the span would never close"
    )

    def _sanctioned_calls(self, tree: ast.Module) -> set[int]:
        """ids of ``.span(...)`` Call nodes used as a ``with`` item's
        context expression or fed straight to ``enter_context``."""
        sanctioned: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    sanctioned.add(id(item.context_expr))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "enter_context"
            ):
                sanctioned.update(id(arg) for arg in node.args)
        return sanctioned

    def check(self, context: RuleContext) -> Iterator[Finding]:
        sanctioned = self._sanctioned_calls(context.tree)
        for node in ast.walk(context.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
                and id(node) not in sanctioned
            ):
                yield context.finding(
                    node,
                    self.code,
                    ".span(...) outside a `with` block leaks an open "
                    "span; use `with tracer.span(...):` (or "
                    "stack.enter_context)",
                )
