"""API001: deprecated-API discipline.

The frozen ``EXECUTE_BACKENDS`` tuple was replaced by the pluggable
backend registry in PR 3; the module-``__getattr__`` shims emit a
``DeprecationWarning`` at runtime, but nothing stops new code from
accreting onto the old name.  This rule does.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.registry import RuleContext

__all__ = ["DeprecatedExecuteBackendsRule"]

_DEPRECATED = "EXECUTE_BACKENDS"


class DeprecatedExecuteBackendsRule:
    """API001: no new references to the ``EXECUTE_BACKENDS`` shim."""

    code = "API001"
    description = (
        "use of the deprecated EXECUTE_BACKENDS shim; enumerate "
        "repro.backends.backend_names() instead"
    )

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Name) and node.id == _DEPRECATED:
                reference = node.id
            elif isinstance(node, ast.Attribute) and node.attr == _DEPRECATED:
                reference = f"...{node.attr}"
            elif isinstance(node, ast.ImportFrom) and any(
                alias.name == _DEPRECATED for alias in node.names
            ):
                reference = f"from {node.module} import {_DEPRECATED}"
            else:
                continue
            yield context.finding(
                node,
                self.code,
                f"{reference} is a deprecated shim over the backend "
                "registry; call repro.backends.backend_names() instead",
            )
