"""Determinism rules: DET001 (seeded RNG), DET002 (wall clock),
DET003 (unordered iteration).

Every headline number this reproduction ships is gated on the
simulator being bit-deterministic per seed (`BENCH_*.json` acceptance
checks, byte-identical Chrome traces per seed).  These rules make the
three ways that property has historically been lost into lint errors.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.registry import RuleContext
from repro.analysis.rules.common import ImportMap

__all__ = ["UnseededRngRule", "WallClockRule", "UnorderedIterationRule"]

#: ``numpy.random`` attributes that construct *seedable* generator
#: machinery rather than drawing from the module-level global RNG.
_SEEDABLE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
    }
)

#: stdlib ``random`` attributes that are seedable classes (an explicit
#: ``random.Random(seed)`` instance is deterministic; ``SystemRandom``
#: is OS entropy and stays flagged).
_SEEDABLE_STDLIB_RANDOM = frozenset({"Random"})


class UnseededRngRule:
    """DET001: every random draw must come from an explicitly seeded
    ``np.random.Generator``.

    Flags ``np.random.default_rng()`` with no seed argument, any call
    into the module-level ``np.random.*`` global state, and any call
    into stdlib ``random.*`` (its global Mersenne state included).
    """

    code = "DET001"
    description = (
        "unseeded or module-level RNG: np.random.default_rng() without "
        "a seed, np.random.<fn>(), or stdlib random.*"
    )

    def check(self, context: RuleContext) -> Iterator[Finding]:
        imports = ImportMap(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            if dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield context.finding(
                        node,
                        self.code,
                        "np.random.default_rng() without a seed draws "
                        "from OS entropy; pass an explicit seed",
                    )
                continue
            prefix, _, attr = dotted.rpartition(".")
            if prefix == "numpy.random" and attr not in _SEEDABLE_NP_RANDOM:
                yield context.finding(
                    node,
                    self.code,
                    f"np.random.{attr}() uses numpy's module-level global "
                    "RNG; use an explicitly seeded np.random.default_rng(seed)",
                )
            elif (
                dotted.startswith("random.")
                and prefix == "random"
                and attr not in _SEEDABLE_STDLIB_RANDOM
            ):
                yield context.finding(
                    node,
                    self.code,
                    f"random.{attr}() uses the stdlib global RNG; use an "
                    "explicitly seeded np.random.default_rng(seed)",
                )


class WallClockRule:
    """DET002: the simulated clock is the only clock.

    Wall-clock reads make runs non-reproducible and leak host speed
    into modeled numbers.  The only sanctioned sites are the three
    measured-host-span modules, which *intentionally* record host
    wall time (``ExecutionResult.seconds``, ``backend.<name>.run``
    spans) and are excluded by path.
    """

    code = "DET002"
    description = (
        "wall-clock read (time.time/perf_counter/monotonic, "
        "datetime.now) outside the sanctioned measured-host-span "
        "modules"
    )

    #: Path suffixes (posix) where host wall time is the point.
    sanctioned_path_suffixes: tuple[str, ...] = (
        "repro/backends/base.py",
        "repro/backends/structural.py",
        "repro/distributed/sharded.py",
    )

    _WALL_CLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def check(self, context: RuleContext) -> Iterator[Finding]:
        if context.path.endswith(self.sanctioned_path_suffixes):
            return
        imports = ImportMap(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted in self._WALL_CLOCK:
                yield context.finding(
                    node,
                    self.code,
                    f"wall-clock read {dotted}(): simulated components "
                    "must take time from the event loop / Tracer clock "
                    "(sanctioned only in the measured-host-span modules)",
                )


def _keys_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


class UnorderedIterationRule:
    """DET003: sort before iterating hash-ordered containers.

    Iterating a set feeds hash order — which varies per process under
    string-hash randomization — into whatever the loop builds; and
    ``d.keys()`` hides the ordering decision behind insertion order.
    Both must go through ``sorted(...)`` (or, for dicts, iterate the
    dict directly when insertion order is the *documented* contract).
    """

    code = "DET003"
    description = (
        "iteration over a bare set / dict.keys(); sort before "
        "iterating so output ordering is explicit"
    )

    def _iter_targets(self, tree: ast.Module) -> Iterator[ast.AST]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter
            elif isinstance(node, ast.comprehension):
                yield node.iter

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for target in self._iter_targets(context.tree):
            if _set_expression(target):
                yield context.finding(
                    target,
                    self.code,
                    "iterating a set literal/constructor feeds hash "
                    "order into the loop; wrap it in sorted(...)",
                )
            elif _keys_call(target):
                yield context.finding(
                    target,
                    self.code,
                    "iterating d.keys() leaves the ordering contract "
                    "implicit; iterate sorted(d) (or the dict itself "
                    "when insertion order is the documented contract)",
                )
