"""The shipped rule pack.

Importing this package registers every built-in rule exactly once;
:func:`repro.analysis.registry.available_rules` triggers the import on
demand, so consumers never need to import the pack explicitly.
"""

from __future__ import annotations

from repro.analysis.registry import _REGISTRY, register_rule
from repro.analysis.rules.api import DeprecatedExecuteBackendsRule
from repro.analysis.rules.determinism import (
    UnorderedIterationRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.analysis.rules.obs import SpanOutsideWithRule
from repro.analysis.rules.units import UnitSuffixRule

__all__ = [
    "UnseededRngRule",
    "WallClockRule",
    "UnorderedIterationRule",
    "UnitSuffixRule",
    "SpanOutsideWithRule",
    "DeprecatedExecuteBackendsRule",
]

_DEFAULT_RULES = (
    UnseededRngRule,
    WallClockRule,
    UnorderedIterationRule,
    UnitSuffixRule,
    SpanOutsideWithRule,
    DeprecatedExecuteBackendsRule,
)

for _rule_class in _DEFAULT_RULES:
    if _rule_class.code not in _REGISTRY:
        register_rule(_rule_class())
