"""UNIT001: unit-suffix discipline for time and byte quantities.

The codebase encodes units in names — ``max_wait_s``, ``p99_ms``,
``kv_bytes``, ``dram_gb`` — and converts at well-marked seams
(``* 1e-3``, ``* GB``).  Adding, subtracting or comparing two names
whose suffixes disagree with no conversion literal in between is
almost always a unit bug (the exact seam the AutoSelector calibration
work keeps hitting).  Multiplication and division are *not* checked:
``payload_bytes / elapsed_s`` is how rates are built.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.finding import Finding
from repro.analysis.registry import RuleContext

__all__ = ["UnitSuffixRule"]

#: suffix -> (dimension, unit).  Longest suffix wins so ``_bytes``
#: never parses as ``_s``.
_UNIT_SUFFIXES: dict[str, tuple[str, str]] = {
    "_ns": ("time", "ns"),
    "_us": ("time", "us"),
    "_ms": ("time", "ms"),
    "_s": ("time", "s"),
    "_bytes": ("bytes", "bytes"),
    "_kb": ("bytes", "kb"),
    "_mb": ("bytes", "mb"),
    "_gb": ("bytes", "gb"),
    "_kib": ("bytes", "kib"),
    "_mib": ("bytes", "mib"),
    "_gib": ("bytes", "gib"),
}

_ORDERED_SUFFIXES = sorted(_UNIT_SUFFIXES, key=len, reverse=True)

#: Rate names (``bytes_per_s``) end in a unit suffix but denote a
#: different dimension; two rates comparing equal suffixes is fine and
#: anything else is too ambiguous to flag.
_RATE_MARKER = "_per_"


def _unit_of(node: ast.AST) -> "tuple[str, str, str] | None":
    """``(name, dimension, unit)`` when ``node`` is a plain name (or
    attribute) carrying a unit suffix; ``None`` for anything else —
    calls, literals and arithmetic count as conversion points."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if _RATE_MARKER in name:
        return None
    for suffix in _ORDERED_SUFFIXES:
        if name.endswith(suffix):
            dimension, unit = _UNIT_SUFFIXES[suffix]
            return name, dimension, unit
    return None


_CHECKED_BINOPS = (ast.Add, ast.Sub)
_CHECKED_COMPARES = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class UnitSuffixRule:
    """UNIT001: no ``+``/``-``/comparison across unit suffixes."""

    code = "UNIT001"
    description = (
        "arithmetic or comparison mixes differently-suffixed unit "
        "names (_s/_ms/_bytes/_gb...) with no conversion in between"
    )

    def _mismatch(
        self, context: RuleContext, anchor: ast.AST, op: str, lhs: ast.AST, rhs: ast.AST
    ) -> "Finding | None":
        left = _unit_of(lhs)
        right = _unit_of(rhs)
        if left is None or right is None:
            return None
        lname, ldim, lunit = left
        rname, rdim, runit = right
        if (ldim, lunit) == (rdim, runit):
            return None
        if ldim != rdim:
            detail = f"mixes dimensions ({ldim} vs {rdim})"
        else:
            detail = f"mixes {ldim} units ({lunit} vs {runit})"
        return context.finding(
            anchor,
            self.code,
            f"'{lname}' {op} '{rname}' {detail} with no conversion; "
            "convert one side explicitly",
        )

    def check(self, context: RuleContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _CHECKED_BINOPS):
                op = "+" if isinstance(node.op, ast.Add) else "-"
                found = self._mismatch(context, node, op, node.left, node.right)
                if found is not None:
                    yield found
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, _CHECKED_BINOPS
            ):
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                found = self._mismatch(context, node, op, node.target, node.value)
                if found is not None:
                    yield found
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for cmp_op, lhs, rhs in zip(
                    node.ops, operands[:-1], operands[1:], strict=True
                ):
                    if not isinstance(cmp_op, _CHECKED_COMPARES):
                        continue
                    op = {
                        ast.Lt: "<",
                        ast.LtE: "<=",
                        ast.Gt: ">",
                        ast.GtE: ">=",
                        ast.Eq: "==",
                        ast.NotEq: "!=",
                    }[type(cmp_op)]
                    found = self._mismatch(context, node, op, lhs, rhs)
                    if found is not None:
                        yield found
