"""Shared AST helpers for the rule pack: import-alias resolution.

Rules that target library calls (``np.random.default_rng``,
``time.perf_counter``) must see through ``import numpy as np`` /
``from time import perf_counter`` aliasing.  :class:`ImportMap` builds
the alias table once per module and resolves an ``Attribute``/``Name``
chain back to its canonical dotted path.
"""

from __future__ import annotations

import ast

__all__ = ["ImportMap"]


class ImportMap:
    """Canonical dotted paths for a module's imported names.

    Only *imported* bindings resolve — a local variable named
    ``random`` shadows nothing here, which errs on the side of
    flagging (the linter's job) but in practice the repo never shadows
    module names.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds ``numpy``.
                        top = alias.name.split(".", 1)[0]
                        self._aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports never hit stdlib/numpy
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self._aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> "str | None":
        """The canonical dotted path of a ``Name``/``Attribute`` chain,
        or ``None`` when the chain's base is not an imported name."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._aliases.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))
