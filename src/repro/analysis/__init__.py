"""Repo-specific static analysis: the ``repro lint`` invariant linter.

An AST-based rule engine encoding the invariants the reproduction's
headline numbers rest on — per-seed bit determinism, the ``_s``/
``_ms``/``_bytes``/``_gb`` units discipline, ledger/observability
hygiene and deprecated-API containment:

======= ==========================================================
code    invariant
======= ==========================================================
DET001  RNG draws come from an explicitly seeded ``default_rng``
DET002  wall-clock reads stay in the measured-host-span modules
DET003  sets / ``dict.keys()`` are sorted before iteration
UNIT001 no +/-/comparison across differing unit-name suffixes
OBS001  ``Tracer.span()`` is always a ``with`` context
API001  the deprecated ``EXECUTE_BACKENDS`` shim gains no new users
LINT999 (engine) the file failed to parse at all
======= ==========================================================

Suppress a finding on its own line with a justified pragma::

    # repro-lint: disable=DET002 -- measured host span

or grandfather known debt in a JSON baseline (``--baseline`` /
``--update-baseline``).  ``python -m repro lint src`` is the CI gate
and ships at zero findings.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import (
    PARSE_FAILURE_CODE,
    LintReport,
    lint_paths,
    lint_source,
)
from repro.analysis.finding import Finding, Severity
from repro.analysis.formatting import (
    REPORT_SCHEMA,
    format_json,
    format_rule_list,
    format_text,
)
from repro.analysis.pragmas import collect_suppressions, is_suppressed
from repro.analysis.registry import (
    Rule,
    RuleContext,
    available_rules,
    get_rule,
    register_rule,
    rule_codes,
    unregister_rule,
)

__all__ = [
    "BASELINE_SCHEMA",
    "Baseline",
    "load_baseline",
    "save_baseline",
    "PARSE_FAILURE_CODE",
    "LintReport",
    "lint_paths",
    "lint_source",
    "Finding",
    "Severity",
    "REPORT_SCHEMA",
    "format_json",
    "format_rule_list",
    "format_text",
    "collect_suppressions",
    "is_suppressed",
    "Rule",
    "RuleContext",
    "available_rules",
    "get_rule",
    "register_rule",
    "rule_codes",
    "unregister_rule",
]
