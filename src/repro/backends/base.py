"""Execution-backend API: the request/result pair and the protocol.

The paper's central design decision is that *how* an NM-SpMM product
runs is a function of the problem's structure — packing vs non-packing
at the 70% sparsity threshold (§III-A), tile geometry from the
hardware model (§III-B).  The execution layer mirrors that: a
:class:`Backend` is one way of evaluating ``C = A (*) (B', D)``, and
every call site hands it a single :class:`ExecutionRequest` instead of
threading an ever-growing keyword list through
:meth:`~repro.core.api.NMSpMM.execute`.

A backend is any object with three members — no subclassing required::

    class MyBackend:
        name = "mine"

        def supports(self, request):
            return True            # or a reason string when it cannot

        def run(self, request):
            return ExecutionResult(output=..., backend=self.name)

Register it with :func:`~repro.backends.registry.register_backend` and
``execute(backend="mine")``, the serving runtime, the ``serve-sim``
CLI and the kernel benchmark can all use it immediately.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.api import SparseHandle
    from repro.core.plan import ExecutionPlan
    from repro.kernels.blocked import KernelTrace
    from repro.kernels.tiling import TileParams
    from repro.sparsity.colinfo import ColumnInfo

__all__ = [
    "ExecutionRequest",
    "ExecutionResult",
    "Backend",
    "AnalyticTraceBackend",
    "fill_analytic_trace",
]


@dataclass
class ExecutionRequest:
    """Everything one NM-SpMM execution needs, in one place.

    Attributes
    ----------
    a:
        The dense ``(m, k)`` operand, float32, already padded to the
        handle's (padded) ``k`` — the facade owns logical-shape
        padding so backends never see ragged operands.
    handle:
        The prepared weights (:class:`~repro.core.api.SparseHandle`).
    params:
        Optional explicit blocking parameters for plan construction.
    plan:
        Optional precomputed :class:`~repro.core.plan.ExecutionPlan`;
        resolved lazily via :meth:`resolve_plan` when a backend needs
        one (the fast paths never do unless a trace is demanded).
    trace:
        The trace policy: ``None`` means pure numerics; a
        :class:`~repro.kernels.blocked.KernelTrace` asks the backend to
        account the launch's memory/compute events into it (recorded by
        the structural executors, analytic everywhere else).
    use_plan_cache:
        Whether plan resolution may read/warm the handle's plan cache.
    backend:
        The backend name the caller asked for (``"auto"`` for
        selector-driven choice) — kept for provenance.
    planner:
        Callable building a plan for this request on demand; attached
        by :meth:`~repro.core.api.NMSpMM.build_request` so backends
        stay decoupled from the operator.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When set, the
        dispatch layer records a per-backend ``run()`` span and the
        auto-selector emits its decision (and memo hit/miss) as trace
        events; ``None`` (the default) keeps execution trace-free.
    """

    a: np.ndarray
    handle: "SparseHandle"
    params: "TileParams | None" = None
    plan: "ExecutionPlan | None" = None
    trace: "KernelTrace | None" = None
    use_plan_cache: bool = False
    backend: str = "auto"
    planner: "Callable[[ExecutionRequest], ExecutionPlan] | None" = None
    tracer: "Any | None" = None

    @property
    def m(self) -> int:
        """Batch size (rows of A)."""
        return self.a.shape[0]

    @property
    def k(self) -> int:
        """Padded reduction dimension (columns of A)."""
        return self.a.shape[1]

    @property
    def wants_trace(self) -> bool:
        return self.trace is not None

    def resolve_plan(self) -> "ExecutionPlan":
        """The request's plan, building (and memoizing) it through the
        attached planner when none was given."""
        if self.plan is None:
            if self.planner is None:
                raise PlanError(
                    "request carries no ExecutionPlan and no planner; pass "
                    "plan= or build the request via NMSpMM.build_request()"
                )
            self.plan = self.planner(self)
        return self.plan

    def col_info_for(self, plan: "ExecutionPlan") -> "ColumnInfo":
        """The offline pre-processing a packing plan's executor (or its
        analytic trace) consumes, cached on the handle."""
        ws = min(plan.ws, self.handle.compressed.w)
        return self.handle.col_info(ws, plan.params.ns)


@dataclass
class ExecutionResult:
    """What one backend run produced, with provenance.

    ``output`` is the padded ``(m, n)`` product; the facade trims it to
    the handle's logical ``n``.  ``decision`` carries the
    :class:`~repro.backends.auto.SelectionDecision` when the backend
    was chosen by the auto-selector rather than named explicitly.
    """

    output: np.ndarray
    backend: str
    plan: "ExecutionPlan | None" = None
    seconds: float = 0.0
    trace_filled: bool = False
    decision: Any = None


@runtime_checkable
class Backend(Protocol):
    """The pluggable execution-backend protocol (structural typing —
    any object with these members qualifies)."""

    name: str

    def supports(self, request: ExecutionRequest) -> "bool | str":
        """``True`` when the backend can run ``request``; otherwise a
        human-readable reason why not."""
        ...  # pragma: no cover

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        """Evaluate the product and return the result with provenance."""
        ...  # pragma: no cover

    # Optional members (not part of the structural check):
    #
    # ``capabilities() -> dict`` — metadata for ``repro backends``
    # (keys: description, traces, needs_plan).
    #
    # ``estimated_cost(request) -> float | None`` — modeled cost in
    # MAC-equivalents per output element at full BLAS rate; exposing it
    # enters the backend into the AutoSelector's ``backend="auto"``
    # cost race.


def fill_analytic_trace(request: ExecutionRequest) -> "ExecutionPlan":
    """Merge the closed-form :class:`KernelTrace` of the request's plan
    into ``request.trace`` (shared by every backend that computes
    numerics off the structural path)."""
    plan = request.resolve_plan()
    col_info = request.col_info_for(plan) if plan.uses_packing else None
    request.trace.merge(
        plan.analytic_trace(
            col_info,
            index_itemsize=request.handle.compressed.indices.dtype.itemsize,
        )
    )
    return plan


class AnalyticTraceBackend:
    """Base for backends whose numerics run off the structural path:
    the shared trace guard in :meth:`supports`, and a :meth:`run` that
    times :meth:`_compute`, fills a requested trace via the
    :meth:`_fill_trace` hook, and wraps the provenance.  Subclasses
    set ``name`` and implement ``_compute(request) -> np.ndarray``;
    the default :meth:`_fill_trace` derives the trace analytically
    from the plan, and a subclass whose data movement differs from the
    blocked executor's (e.g. ``dense_scatter``) overrides it to
    account its *own* memory/compute events instead."""

    name: str

    def supports(self, request: ExecutionRequest) -> "bool | str":
        if request.wants_trace and request.plan is None and request.planner is None:
            return (
                "an analytic trace needs an ExecutionPlan but the request "
                "carries neither a plan nor a planner"
            )
        return True

    def _compute(self, request: ExecutionRequest) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover

    def _fill_trace(self, request: ExecutionRequest) -> "ExecutionPlan | None":
        """Account the launch's events into ``request.trace`` and
        return the plan consulted (if any)."""
        plan = fill_analytic_trace(request)
        request.trace.tag_backend(self.name)
        return plan

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        start = time.perf_counter()
        out = self._compute(request)
        seconds = time.perf_counter() - start
        plan = request.plan
        if request.wants_trace:
            plan = self._fill_trace(request)
        return ExecutionResult(
            output=out,
            backend=self.name,
            plan=plan,
            seconds=seconds,
            trace_filled=request.wants_trace,
        )
