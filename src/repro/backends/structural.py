"""The structural backend: per-block executors with recorded traces.

Mirrors the CUDA kernel's device/block/warp structure — the packed
executor (Listing 3) when the plan's strategy is packing, the blocked
executor (Listings 1/2) otherwise — and records every memory and
compute event into the request's trace while actually walking the
tiles.  It is the provenance ground truth the analytic traces are
tested against, and the only backend whose traces are *recorded*
rather than derived from the plan.
"""

from __future__ import annotations

import time

from repro.backends.base import ExecutionRequest, ExecutionResult
from repro.kernels.blocked import nm_spmm_blocked
from repro.kernels.packed import nm_spmm_packed

__all__ = ["StructuralBackend"]


class StructuralBackend:
    """Strategy-appropriate structural executor (packed or blocked)."""

    name = "structural"

    def capabilities(self) -> dict:
        return {
            "description": "per-block executors mirroring the CUDA "
            "kernel's structure (packed at high sparsity, blocked "
            "otherwise); records event-level traces",
            "traces": "recorded",
            "needs_plan": True,
        }

    def supports(self, request: ExecutionRequest) -> "bool | str":
        if request.plan is None and request.planner is None:
            return (
                "the structural executors need an ExecutionPlan but the "
                "request carries neither a plan nor a planner"
            )
        return True

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        plan = request.resolve_plan()
        compressed = request.handle.compressed
        if plan.uses_packing:
            col_info = request.col_info_for(plan)
            start = time.perf_counter()
            out = nm_spmm_packed(
                request.a, compressed, plan.params, col_info,
                trace=request.trace,
            )
        else:
            start = time.perf_counter()
            out = nm_spmm_blocked(
                request.a, compressed, plan.params, trace=request.trace
            )
        seconds = time.perf_counter() - start
        if request.trace is not None:
            request.trace.tag_backend(self.name)
        return ExecutionResult(
            output=out,
            backend=self.name,
            plan=plan,
            seconds=seconds,
            trace_filled=request.wants_trace,
        )
