"""Cost-aware backend auto-selection.

``execute(backend="auto")`` — the default — delegates the choice to an
:class:`AutoSelector`, which turns the two branches that used to hide
inside ``execute()`` plus the ROADMAP's per-handle strategy choice
into one inspectable decision:

1. **Provenance first.**  A recorded :class:`KernelTrace` is demanded
   → the structural executors, the only backend that records events
   while running (everything else derives traces from the plan).
2. **Cost race for numerics.**  Modeled cost per output element, in
   MAC-equivalents at full BLAS rate::

       cost_fast          = w / min(1, (L / GATHER_FULL_EFFICIENCY_L)^2)
       cost_dense_scatter = k * (1 + SCATTER_MACS_PER_ELEMENT / m)

   The gather-GEMM path pays ``w = k*N/M`` MACs per output at an
   efficiency that collapses with the vector length ``L`` (each column
   window's GEMM operand is only L columns wide, so below
   ~:data:`GATHER_FULL_EFFICIENCY_L` BLAS decays into skinny products;
   the quadratic ramp is calibrated on the measured
   ``BENCH_kernels.json`` host-BLAS crossovers).  The dense-scatter
   path pays the full ``k`` MACs at full rate *plus* a per-call
   scatter of the whole ``(k, n)`` weight matrix, amortized over the
   batch — which is why tiny batches (serving decode, m=1) stay on
   the gather path even at degenerate L, while batched tiny-L
   problems (e.g. 2:4/L=4 at m=256) route to ``dense_scatter``.
   ``dense_scatter`` wins only when strictly cheaper (ties keep the
   sparse path: no scatter, no densified footprint).

:meth:`AutoSelector.explain` returns the full
:class:`SelectionDecision` — chosen backend, reason, modeled costs and
the rejected candidates with why — so selection is debuggable rather
than folklore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.base import ExecutionRequest
from repro.backends.registry import (
    available_backends,
    backend_names,
    registry_generation,
)
from repro.errors import ConfigurationError
from repro.utils.cache import LRUCache

__all__ = [
    "GATHER_FULL_EFFICIENCY_L",
    "SCATTER_MACS_PER_ELEMENT",
    "DECISION_MEMO_CAPACITY",
    "SelectionDecision",
    "AutoSelector",
]

#: Vector length at which the batched gather-GEMM reaches full BLAS
#: efficiency in the modeled cost race; efficiency ramps as
#: ``(L / this)^2`` below it.  Calibrated against the tracked
#: host-BLAS benchmark (``BENCH_kernels.json``): at L=4 the gather
#: path runs ~16x below its MAC count (2:4/L=4 measures ~5-18x slower
#: than dense SGEMM despite doing half the MACs), while L=32 runs at
#: or above dense rate.
GATHER_FULL_EFFICIENCY_L = 16

#: Modeled cost, in full-rate MAC-equivalents, of scattering one
#: weight element back to dense (``decompress``'s allocation +
#: ``put_along_axis`` are NumPy-overhead bound, far above a BLAS MAC).
#: The ``k * this / m`` amortization term reproduces the measured
#: batch-size crossover: on a 2:4/L=4 2048x2048 layer dense_scatter
#: loses below m~32 and wins above it.
SCATTER_MACS_PER_ELEMENT = 256

#: Bound on the selector's per-``(handle, m-bucket)`` decision memo.
DECISION_MEMO_CAPACITY = 256


@dataclass(frozen=True)
class SelectionDecision:
    """One auto-selection outcome, fully explained.

    Attributes
    ----------
    backend:
        The chosen backend's registered name.
    reason:
        Why it won, in words.
    costs:
        Modeled cost per output element (MAC-equivalents at full BLAS
        rate) for every candidate that entered the cost race — the
        builtins plus any registered backend exposing an
        ``estimated_cost(request)`` hook; empty when the decision was
        rule-based (trace demanded).
    rejected:
        ``(name, why-not)`` pairs for every *registered* candidate
        passed over (unregistered names never appear; registered
        numerics backends without a cost hook appear with that as the
        reason).
    """

    backend: str
    reason: str
    costs: "dict[str, float]"
    rejected: "tuple[tuple[str, str], ...]" = ()


class AutoSelector:
    """The default ``backend="auto"`` policy.

    Parameters
    ----------
    gather_full_efficiency_l:
        The vector length at which the gather-GEMM path is modeled at
        full BLAS efficiency; lower values make the selector keep the
        sparse path for smaller L.
    scatter_macs_per_element:
        Modeled per-element cost of the dense scatter, amortized over
        the batch; 0 makes the selector ignore the scatter (the
        pre-calibration behavior).
    memo_capacity:
        Bound on the decision memo (below); 0 disables memoization.

    Notes
    -----
    Decisions are memoized per ``(handle, m-bucket)``: serving replays
    the same handle at a handful of padded batch sizes thousands of
    times, and the full cost race (a registry walk plus per-backend
    ``supports``/``estimated_cost`` calls) is pure overhead after the
    first one.  The bucket is the power-of-two bucket of ``m`` (the
    same bucketing the serving batcher pads rows to), so a memoized
    decision is reused for every ``m`` in the bucket — costs inside
    the returned :class:`SelectionDecision` reflect the bucket's first
    request.  The memo key carries the registry's generation counter
    (:func:`~repro.backends.registry.registry_generation`), so any
    backend register/unregister invalidates every cached decision.
    """

    def __init__(
        self,
        *,
        gather_full_efficiency_l: int = GATHER_FULL_EFFICIENCY_L,
        scatter_macs_per_element: float = SCATTER_MACS_PER_ELEMENT,
        memo_capacity: int = DECISION_MEMO_CAPACITY,
    ):
        if gather_full_efficiency_l < 1:
            raise ConfigurationError(
                "gather_full_efficiency_l must be >= 1, got "
                f"{gather_full_efficiency_l}"
            )
        if scatter_macs_per_element < 0:
            raise ConfigurationError(
                "scatter_macs_per_element must be >= 0, got "
                f"{scatter_macs_per_element}"
            )
        if memo_capacity < 0:
            raise ConfigurationError(
                f"memo_capacity must be >= 0, got {memo_capacity}"
            )
        self.gather_full_efficiency_l = gather_full_efficiency_l
        self.scatter_macs_per_element = scatter_macs_per_element
        self._memo: "LRUCache | None" = (
            LRUCache(memo_capacity) if memo_capacity else None
        )

    # ------------------------------------------------------------------
    # Decision memo
    # ------------------------------------------------------------------
    @staticmethod
    def _memo_key(request: ExecutionRequest) -> tuple:
        handle = request.handle
        # id() alone could alias a collected handle's reincarnation, so
        # the key also pins the structural facts the decision reads;
        # the registry generation invalidates on (un)registration.
        return (
            id(handle),
            handle.pattern,
            handle.k,
            handle.n,
            handle.compressed.w,
            request.m.bit_length(),  # the power-of-two m-bucket
            request.wants_trace,
            registry_generation(),
        )

    @property
    def memo_stats(self):
        """Hit/miss/eviction counters of the decision memo (``None``
        when memoization is disabled)."""
        return self._memo.stats if self._memo is not None else None

    def clear_memo(self) -> None:
        if self._memo is not None:
            self._memo.clear()

    # ------------------------------------------------------------------
    def select(self, request: ExecutionRequest) -> str:
        """The chosen backend's name (shorthand for
        ``explain(request).backend``)."""
        return self.explain(request).backend

    def modeled_costs(self, request: ExecutionRequest) -> "dict[str, float]":
        """The cost race's inputs: modeled MAC-equivalents per output
        element for each fast numerics candidate."""
        pattern = request.handle.pattern
        k = request.handle.k
        w = request.handle.compressed.w
        ell = pattern.vector_length
        ratio = ell / self.gather_full_efficiency_l
        efficiency = min(1.0, ratio * ratio)
        return {
            "fast": w / efficiency,
            "dense_scatter": k
            * (1.0 + self.scatter_macs_per_element / max(1, request.m)),
        }

    def explain(self, request: ExecutionRequest) -> SelectionDecision:
        """Decide, and say why — every branch yields a reason.

        Memoized per ``(handle, m-bucket)`` (see the class notes);
        :meth:`explain_uncached` runs the race unconditionally.  When
        the request carries a tracer, the decision (and whether the
        memo answered it) is emitted as a ``backend.select`` event.
        """
        if self._memo is None:
            decision = self.explain_uncached(request)
            self._emit_decision(request, decision, memo="off")
            return decision
        hits_before = self._memo.stats.hits
        decision = self._memo.get_or_build(
            self._memo_key(request),
            lambda: self.explain_uncached(request),
        )
        memo = "hit" if self._memo.stats.hits > hits_before else "miss"
        self._emit_decision(request, decision, memo=memo)
        return decision

    def _emit_decision(
        self,
        request: ExecutionRequest,
        decision: SelectionDecision,
        *,
        memo: str,
    ) -> None:
        """Record one selection on the request's tracer (no-op without
        one): an instant event on the ``host`` track plus a decision
        counter labeled by chosen backend and memo outcome."""
        tracer = request.tracer
        if tracer is None:
            return
        tracer.event(
            "backend.select",
            track="host",
            backend=decision.backend,
            m=request.m,
            memo=memo,
            generation=registry_generation(),
            reason=decision.reason,
        )
        tracer.metrics.counter(
            "backend_select_total", "auto-selector decisions"
        ).inc(backend=decision.backend, memo=memo)

    def explain_uncached(
        self, request: ExecutionRequest
    ) -> SelectionDecision:
        """The actual decision procedure, bypassing the memo."""
        registered = backend_names(include_auto=False)
        if request.wants_trace:
            if "structural" not in registered:
                raise ConfigurationError(
                    "a recorded trace was demanded but no 'structural' "
                    f"backend is registered (have: {sorted(registered)})"
                )
            return SelectionDecision(
                backend="structural",
                reason=(
                    "a recorded KernelTrace was demanded; only the "
                    "structural executors record events while running"
                ),
                costs={},
                rejected=tuple(
                    (name, "only 'structural' records event-level traces")
                    for name in registered
                    if name != "structural"
                ),
            )

        # The cost race: builtins get the calibrated model; any other
        # registered backend may enter by exposing an
        # ``estimated_cost(request) -> float | None`` hook (same unit:
        # MAC-equivalents per output element at full BLAS rate).
        builtin_costs = self.modeled_costs(request)
        costs: "dict[str, float]" = {}
        rejected: "list[tuple[str, str]]" = []
        for backend in available_backends():
            name = backend.name
            if name == "structural":
                rejected.append(
                    (name, "tracing instrument, not a fast numerics path")
                )
                continue
            verdict = backend.supports(request)
            if verdict is not True:
                # A candidate that cannot run this request must never
                # win the race — route around it, with the reason.
                reason = (
                    verdict if isinstance(verdict, str)
                    else "supports() declined the request"
                )
                rejected.append((name, reason))
                continue
            # The instance's own estimate wins over the builtin model:
            # a replacement registered under a builtin name (e.g.
            # register_backend(MyFast(), replace=True)) is priced by
            # its hook, not by a model describing the kernel it isn't.
            estimator = getattr(backend, "estimated_cost", None)
            estimate = estimator(request) if callable(estimator) else None
            if estimate is not None:
                costs[name] = float(estimate)
            elif name in builtin_costs:
                costs[name] = builtin_costs[name]
            else:
                rejected.append((
                    name,
                    "not in the cost race: expose estimated_cost(request) "
                    "to enter auto-selection",
                ))

        if costs:
            # Ties keep the sparse gather path (no scatter, no
            # densified footprint), then registration order.
            order = {name: i for i, name in enumerate(registered)}
            winner = min(
                costs,
                key=lambda n: (costs[n], n != "fast", order[n]),
            )
            for name, cost in costs.items():
                if name != winner:
                    rejected.append((
                        name,
                        f"modeled cost {cost:.0f} MACs/output loses to "
                        f"{winner}'s {costs[winner]:.0f}",
                    ))
            ell = request.handle.pattern.vector_length
            if winner == "dense_scatter":
                fast_cost = costs.get("fast")
                versus = (
                    f" (vs {fast_cost:.0f} for the gather-GEMM, "
                    f"degenerate at L={ell})"
                    if fast_cost is not None
                    else ""
                )
                reason = (
                    f"the batch m={request.m} amortizes the scatter: "
                    "scatter-to-dense + one SGEMM is cheapest at "
                    f"{costs[winner]:.0f} MACs/output{versus}"
                )
            elif winner == "fast":
                reason = (
                    f"gather-GEMM is the cheapest modeled path "
                    f"({costs[winner]:.0f} MACs/output at L={ell}, "
                    f"batch m={request.m})"
                )
            else:
                reason = (
                    f"{winner} estimated the cheapest cost "
                    f"({costs[winner]:.0f} MACs/output)"
                )
            return SelectionDecision(
                backend=winner,
                reason=reason,
                costs=costs,
                rejected=tuple(rejected),
            )
        if "structural" in registered:
            return SelectionDecision(
                backend="structural",
                reason=(
                    "no runnable fast numerics backend; falling back "
                    "to the structural executors"
                ),
                costs=costs,
                rejected=tuple(
                    (name, why)
                    for name, why in rejected
                    if name != "structural"
                ),
            )
        raise ConfigurationError(
            "auto-selection found no registered backend to run the "
            f"request (registered: {sorted(registered)})"
        )

    def describe(self) -> str:
        """One-line summary of the policy (for ``repro backends``)."""
        return (
            "structural when a recorded trace is demanded; else the "
            "cheaper of gather-GEMM (w / min(1, (L/"
            f"{self.gather_full_efficiency_l})^2) MACs/output) and "
            "scatter-to-dense SGEMM (k * (1 + "
            f"{self.scatter_macs_per_element:g}/m)), ties to the "
            "sparse path; backends exposing estimated_cost (e.g. "
            "sharded) join the race; decisions memoized per "
            "(handle, m-bucket)"
        )
