"""The scatter-to-dense + SGEMM backend (the tiny-L escape hatch).

The gather-GEMM path degenerates for tiny vector lengths: with L=4
every column window's GEMM operand is only four columns wide, so the
batched product decays into thousands of skinny GEMMs that BLAS cannot
run at rate (see the ``small-2:4`` row of ``BENCH_kernels.json``).
Below that efficiency crossover it is cheaper to pay the *full* dense
FLOPs at full BLAS rate: scatter the compressed ``(B', D)`` values
back into a dense ``(k, n)`` matrix (one vectorized
``put_along_axis``) and run a single SGEMM.

This backend does ``M/N``-times the useful work of the sparse paths —
it trades FLOPs for BLAS efficiency, which is exactly the paper's
moderate-sparsity argument (§III-A: at low sparsity the problem is
compute-bound and dense-shaped execution wins).  The scatter is paid
per call to keep the memory footprint compressed between calls; the
auto-selector only routes here when the modeled gather-GEMM cost
exceeds the dense cost.

It is also the registry's proof of pluggability: nothing in the core
knows this backend exists beyond its registration.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import AnalyticTraceBackend, ExecutionRequest
from repro.constants import FP32_BYTES
from repro.kernels.blocked import KernelTrace
from repro.sparsity.compress import decompress

__all__ = ["DenseScatterBackend"]


class DenseScatterBackend(AnalyticTraceBackend):
    """Scatter ``(B', D)`` to dense, then one full-rate SGEMM."""

    name = "dense_scatter"

    def capabilities(self) -> dict:
        return {
            "description": "scatter compressed values into a dense B, "
            "then one SGEMM at full BLAS rate (wins below the "
            "gather-GEMM's vector-length efficiency crossover)",
            "traces": "own events (scatter + SGEMM data movement)",
            "needs_plan": False,
            "trace_vocabulary": ("scatter", "sgemm"),
        }

    def supports(self, request: ExecutionRequest) -> "bool | str":
        # Unlike the plan-derived analytic fills, this backend accounts
        # its own scatter+SGEMM data movement, so a trace never needs
        # an ExecutionPlan.
        return True

    def _compute(self, request: ExecutionRequest) -> np.ndarray:
        return request.a @ decompress(request.handle.compressed)

    def _fill_trace(self, request: ExecutionRequest):
        """Account the backend's *real* memory events — the scatter
        pass (read ``B'`` + ``D``, write the dense ``(k, n)`` matrix)
        followed by one dense SGEMM (read A and the scattered B, pay
        the full ``m*n*k`` MACs, write C) — instead of deriving a
        blocked-executor trace from a plan this backend never runs.
        No shared-memory staging happens on this path, so ``sts``/
        ``lds`` stay zero; the whole launch is one logical block with
        one pass over the operands."""
        comp = request.handle.compressed
        m, k, n = request.m, comp.k, comp.n
        scatter = KernelTrace(
            blocks=1,
            main_loop_iterations=1,
            ldg_b_bytes=comp.values_bytes(),
            ldg_d_bytes=comp.indices_bytes(),
            stg_bytes=k * n * FP32_BYTES,
        )
        sgemm = KernelTrace(
            blocks=1,
            main_loop_iterations=1,
            ldg_a_bytes=m * k * FP32_BYTES,
            ldg_b_bytes=k * n * FP32_BYTES,
            fma_ops=m * n * k,
            stg_bytes=m * n * FP32_BYTES,
        )
        request.trace.merge(scatter)
        request.trace.merge(sgemm)
        request.trace.tag_backend(self.name)
        return request.plan
