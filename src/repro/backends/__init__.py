"""Pluggable execution backends for NM-SpMM.

The execution layer's public API:

* :class:`~repro.backends.base.Backend` — the protocol (``name`` +
  ``supports(request)`` + ``run(request)``);
* :class:`~repro.backends.base.ExecutionRequest` /
  :class:`~repro.backends.base.ExecutionResult` — the operand/result
  pair every backend consumes and produces;
* :func:`~repro.backends.registry.register_backend` /
  :func:`~repro.backends.registry.get_backend` /
  :func:`~repro.backends.registry.available_backends` /
  :func:`~repro.backends.registry.backend_names` — the process-wide
  registry that replaced the frozen ``EXECUTE_BACKENDS`` constant;
* :class:`~repro.backends.auto.AutoSelector` — the cost-aware
  ``backend="auto"`` policy, with
  :meth:`~repro.backends.auto.AutoSelector.explain` for inspectable
  decisions.

Importing this package registers the builtin backends in display
order: ``fast`` (batched gather-GEMM), ``structural`` (recorded-trace
executors), ``dense_scatter`` (scatter-to-dense + SGEMM for the tiny-L
regime) and ``sharded`` (tensor-parallel execution across a simulated
device group, from :mod:`repro.distributed`).
"""

from repro.backends.auto import (
    GATHER_FULL_EFFICIENCY_L,
    SCATTER_MACS_PER_ELEMENT,
    AutoSelector,
    SelectionDecision,
)
from repro.backends.base import (
    AnalyticTraceBackend,
    Backend,
    ExecutionRequest,
    ExecutionResult,
    fill_analytic_trace,
)
from repro.backends.dense_scatter import DenseScatterBackend
from repro.backends.fast import FastBackend
from repro.backends.registry import (
    AUTO_BACKEND,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.backends.structural import StructuralBackend

__all__ = [
    "Backend",
    "AnalyticTraceBackend",
    "ExecutionRequest",
    "ExecutionResult",
    "fill_analytic_trace",
    "AUTO_BACKEND",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_names",
    "AutoSelector",
    "SelectionDecision",
    "GATHER_FULL_EFFICIENCY_L",
    "SCATTER_MACS_PER_ELEMENT",
    "FastBackend",
    "StructuralBackend",
    "DenseScatterBackend",
    "ShardedBackend",
]

# Builtin registrations (idempotent across re-imports because module
# initialization runs once per process).  The sharded backend lives in
# repro.distributed and is imported last: it consumes this package's
# already-bound base/registry/auto modules, which is safe mid-init.
from repro.distributed.sharded import ShardedBackend  # noqa: E402

for _backend in (
    FastBackend(),
    StructuralBackend(),
    DenseScatterBackend(),
    ShardedBackend(),
):
    register_backend(_backend)
del _backend
