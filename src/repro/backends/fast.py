"""The batched gather-GEMM backend (the library's default fast path).

Wraps :func:`~repro.kernels.fast.nm_spmm_fast` over the handle's
precomputed :class:`~repro.sparsity.gather.GatherLayout`.  Pure
numerics never touch a plan; a requested trace is filled analytically
from the plan (:func:`~repro.kernels.analytic.analytic_trace`), so
tracing does not force the structural executors.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import AnalyticTraceBackend, ExecutionRequest
from repro.kernels.fast import nm_spmm_fast

__all__ = ["FastBackend"]


class FastBackend(AnalyticTraceBackend):
    """Batched gather-GEMM over the handle's frozen gather layout."""

    name = "fast"

    def capabilities(self) -> dict:
        return {
            "description": "batched gather-GEMM over the precomputed "
            "GatherLayout (one BLAS call per window group)",
            "traces": "analytic",
            "needs_plan": False,
        }

    def _compute(self, request: ExecutionRequest) -> np.ndarray:
        return nm_spmm_fast(request.a, request.handle.gather_layout())
