"""Process-wide execution-backend registry.

Replaces the frozen ``EXECUTE_BACKENDS`` tuple: backends are
*registered*, not enumerated in an ``if/elif``, so adding an execution
strategy (multi-GPU-sharded, quantized, Triton-style...) is a
:func:`register_backend` call instead of a core edit.  Every consumer
— :meth:`NMSpMM.execute`, the serving runtime, the ``serve-sim`` CLI,
``python -m repro backends`` and the kernel benchmark — enumerates
this registry, so a newly registered backend is immediately usable end
to end.

``"auto"`` is not a backend: it names the
:class:`~repro.backends.auto.AutoSelector`, which picks a registered
backend per request.  :func:`backend_names` therefore lists it first,
ahead of the registration-ordered backend names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.backends.base import Backend

__all__ = [
    "AUTO_BACKEND",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_names",
    "backend_trace_vocabulary",
    "registry_generation",
]

#: The selector pseudo-backend accepted by every ``backend=`` argument.
AUTO_BACKEND = "auto"

#: Registration order is preserved (it is the display/bench order).
_REGISTRY: "dict[str, Backend]" = {}

#: Monotonic counter bumped by every (un)registration.  Consumers that
#: memoize decisions over the registry's contents — the
#: :class:`~repro.backends.auto.AutoSelector`'s per-``(handle,
#: m-bucket)`` memo — key on it, so a register/unregister invalidates
#: every cached decision without a callback protocol.
_GENERATION = 0


def registry_generation() -> int:
    """The current registry generation (changes on every
    register/unregister)."""
    return _GENERATION


def register_backend(backend: "Backend", *, replace: bool = False) -> "Backend":
    """Register ``backend`` under its ``name`` and return it.

    The backend must satisfy the :class:`~repro.backends.base.Backend`
    protocol (a ``name`` string plus ``supports``/``run`` callables).
    Re-registering a taken name raises unless ``replace=True``.
    """
    name = getattr(backend, "name", None)
    if not isinstance(name, str) or not name:
        raise ConfigurationError(
            f"backend {backend!r} must expose a nonempty string `name`"
        )
    if name == AUTO_BACKEND:
        raise ConfigurationError(
            f"{AUTO_BACKEND!r} is reserved for the auto-selector and "
            "cannot name a backend"
        )
    for member in ("supports", "run"):
        if not callable(getattr(backend, member, None)):
            raise ConfigurationError(
                f"backend {name!r} must define a callable `{member}(request)`"
            )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered "
            f"({_REGISTRY[name]!r}); pass replace=True to override"
        )
    global _GENERATION
    _GENERATION += 1
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> "Backend":
    """Remove and return a registered backend (mainly for tests)."""
    global _GENERATION
    try:
        removed = _REGISTRY.pop(name)
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; registered: {list(_REGISTRY)}"
        ) from None
    _GENERATION += 1
    return removed


def get_backend(name: str) -> "Backend":
    """Look a backend up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; expected one of {backend_names()}"
        ) from None


def available_backends() -> "tuple[Backend, ...]":
    """Every registered backend, in registration order."""
    return tuple(_REGISTRY.values())


def backend_trace_vocabulary(name: str) -> tuple[str, ...]:
    """The trace-record names a backend's own accounting can emit
    (the ``trace_vocabulary`` capability) — empty for backends whose
    traces are purely plan-derived.  Trace consumers use this to
    interpret per-backend events (``dense_scatter`` speaks
    scatter/SGEMM, ``sharded`` speaks device-compute/ring-collective)
    without hardcoding backend knowledge."""
    backend = get_backend(name)
    capabilities = getattr(backend, "capabilities", None)
    if capabilities is None:
        return ()
    return tuple(capabilities().get("trace_vocabulary", ()))


def backend_names(*, include_auto: bool = True) -> tuple[str, ...]:
    """Valid ``backend=`` arguments: ``"auto"`` plus the registered
    names (what the deprecated ``EXECUTE_BACKENDS`` constant froze)."""
    names = tuple(_REGISTRY)
    return ((AUTO_BACKEND,) + names) if include_auto else names


def deprecated_execute_backends(qualname: str) -> tuple[str, ...]:
    """Body of the ``EXECUTE_BACKENDS`` deprecation shims (module
    ``__getattr__`` in :mod:`repro.constants` and
    :mod:`repro.core.api` both delegate here so the message and the
    replacement stay in one place)."""
    import warnings

    warnings.warn(
        f"{qualname} is deprecated; use repro.backends.backend_names() "
        "(the registry) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return backend_names()
