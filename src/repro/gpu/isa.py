"""Instruction classes and per-GPU issue/latency model.

The pipeline simulator reasons about five instruction families — the
same ones the paper's Figs. 5/6 draw:

* ``FFMA``  — FP32 fused multiply-add (the Comp. stage);
* ``LDS``   — shared-memory load (Ls2r);
* ``LDG``   — global-memory load (Lg2s, via L2/DRAM);
* ``STS``   — shared-memory store (the staging half of Lg2s);
* ``STG``   — global store of results (Lr2g).

Rates are per SM per cycle at warp granularity: an SM that can retire
``fp32_cores/32`` warp-FMA instructions per cycle has ``issue_rate``
of that many warp instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.constants import WARP_SIZE
from repro.gpu.spec import GPUSpec

__all__ = ["InstructionClass", "IssueModel", "issue_model_for"]


class InstructionClass(str, Enum):
    FFMA = "ffma"
    LDS = "lds"
    LDG = "ldg"
    STS = "sts"
    STG = "stg"


@dataclass(frozen=True)
class IssueModel:
    """Warp-instruction throughput and latency per class on one GPU.

    ``warp_fma_per_cycle`` — warp-wide FMA instructions an SM retires
    per cycle (cores / 32).
    ``lds_bytes_per_cycle`` — shared-memory bandwidth per SM.
    ``ldg_latency`` / ``lds_latency`` — issue-to-use latencies in
    cycles, used to size software-pipeline fill costs.
    """

    warp_fma_per_cycle: float
    lds_bytes_per_cycle: float
    sts_bytes_per_cycle: float
    ldg_latency_cycles: int
    lds_latency_cycles: int
    ffma_latency_cycles: int
    issue_slots_per_cycle: int

    def fma_cycles(self, warp_fma_instructions: float) -> float:
        """Cycles to retire the given number of warp-FMA instructions."""
        return warp_fma_instructions / self.warp_fma_per_cycle

    def lds_cycles(self, bytes_read: float, conflict_mult: float = 1.0) -> float:
        """Cycles of shared-memory read bandwidth, inflated by bank
        conflicts."""
        return bytes_read * conflict_mult / self.lds_bytes_per_cycle

    def sts_cycles(self, bytes_written: float) -> float:
        return bytes_written / self.sts_bytes_per_cycle


def issue_model_for(spec: GPUSpec) -> IssueModel:
    """Derive the issue model from a :class:`GPUSpec`.

    Latencies are the published instruction latencies for Ampere/Ada
    (FFMA ~4 cycles, LDS ~22-30, LDG ~400-600 to DRAM); they only
    shape pipeline *fill* terms, not steady-state throughput, so the
    model is insensitive to the exact values.
    """
    return IssueModel(
        warp_fma_per_cycle=spec.fp32_cores_per_sm / WARP_SIZE,
        lds_bytes_per_cycle=spec.smem_bytes_per_cycle_per_sm,
        sts_bytes_per_cycle=spec.smem_bytes_per_cycle_per_sm,
        ldg_latency_cycles=500,
        lds_latency_cycles=25,
        ffma_latency_cycles=4,
        issue_slots_per_cycle=spec.warp_schedulers_per_sm,
    )
