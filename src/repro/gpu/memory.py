"""Memory-hierarchy model: shared-memory budget rule and L2 behaviour.

Wraps the Eq. 4 shared-memory constraint and the L2 parameters the
traffic model needs.  The *usable* L2 fraction is below 1.0 because
real kernels share L2 with write-back traffic and metadata — the value
is a calibration constant (see :mod:`repro.model.calibration`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FP32_BYTES, SMEM_USABLE_FRACTION
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import TileParams
from repro.sparsity.config import NMPattern

__all__ = ["MemoryHierarchy", "smem_footprint_bytes", "fits_smem_budget"]


def smem_footprint_bytes(
    pattern: NMPattern,
    params: TileParams,
    *,
    packed: bool = False,
    double_buffered: bool = False,
    index_bytes: int = 1,
) -> int:
    """Shared-memory bytes one block stages, per Eq. 4:
    ``4*(ks*ms + ws*ns) + index_bytes*ws*qs`` (+ col_info when packed,
    x2 when double buffered).

    The packed tile is sized at the expected packed width (the union of
    the qs windows' columns), never below ``ws``.
    """
    from repro.sparsity.packing import packed_footprint_columns

    ws = params.ws(pattern)
    qs = params.qs(pattern)
    if packed:
        a_cols = max(ws, packed_footprint_columns(pattern, params.ks, qs))
    else:
        a_cols = params.ks
    base = FP32_BYTES * (a_cols * params.ms + ws * params.ns) + index_bytes * ws * qs
    if packed:
        base += FP32_BYTES * params.ks  # sh_col_info[ks] (Listing 3 line 9)
    return base * (2 if double_buffered else 1)


def fits_smem_budget(
    pattern: NMPattern,
    params: TileParams,
    spec: GPUSpec,
    *,
    packed: bool = False,
    double_buffered: bool = False,
) -> bool:
    """Eq. 4 check: the (optionally double-buffered) footprint must not
    exceed the per-block shared-memory limit; single-buffered footprints
    must also leave the Eq. 4 half-capacity headroom.

    Like Eq. 5 ("we ignore the shared memory size used by Ds"), the
    headroom check excludes the small index tile; the hard per-block
    limit includes everything.
    """
    footprint = smem_footprint_bytes(
        pattern, params, packed=packed, double_buffered=double_buffered
    )
    if double_buffered:
        return footprint <= spec.smem_bytes_per_block_limit
    no_d = smem_footprint_bytes(
        pattern, params, packed=packed, double_buffered=False, index_bytes=0
    )
    return (
        no_d <= spec.smem_bytes_per_sm * SMEM_USABLE_FRACTION
        and footprint <= spec.smem_bytes_per_block_limit
    )


@dataclass(frozen=True)
class MemoryHierarchy:
    """L2/DRAM parameters consumed by the traffic model."""

    spec: GPUSpec
    l2_usable_fraction: float = 0.8
    dram_efficiency: float = 0.85

    @property
    def usable_l2_bytes(self) -> float:
        """L2 capacity available for tile reuse."""
        return self.spec.l2_bytes * self.l2_usable_fraction

    @property
    def achievable_dram_bytes_per_s(self) -> float:
        """Sustained DRAM bandwidth (STREAM-like fraction of peak)."""
        return self.spec.dram_bytes_per_s * self.dram_efficiency

    @property
    def achievable_dram_bytes_per_cycle(self) -> float:
        """Sustained DRAM bytes per core clock (whole device)."""
        return self.achievable_dram_bytes_per_s / self.spec.effective_clock_hz

    @property
    def l2_bytes_per_cycle(self) -> float:
        """L2-to-SM bandwidth per cycle (whole device).  Modelled as a
        multiple of DRAM bandwidth; Ampere/Ada L2 sustains roughly 2-3x
        DRAM."""
        return self.achievable_dram_bytes_per_cycle * 2.5
