"""Shared-memory bank-conflict simulation.

Shared memory on every modelled part has 32 banks, each 4 bytes wide;
a warp's load is split into as many transactions as the maximum number
of *distinct words* any single bank must serve (same-word accesses are
broadcast for free).  §III-B1 motivates making ``ms`` and ``ns``
multiples of 32 precisely to keep warp accesses conflict-free; this
module verifies that claim from first principles and supplies the
penalty multiplier for configurations that violate it.
"""

from __future__ import annotations

import numpy as np

from repro.constants import SMEM_BANKS
from repro.utils.validation import check_positive_int

__all__ = ["bank_conflict_degree", "warp_transactions", "conflict_multiplier"]


def bank_conflict_degree(word_addresses: np.ndarray, banks: int = SMEM_BANKS) -> int:
    """Conflict degree of one warp access: the maximum number of
    distinct 4-byte words mapped to the same bank.

    1 means conflict-free (or fully broadcast); 32 is the worst case.

    >>> import numpy as np
    >>> bank_conflict_degree(np.arange(32))          # unit stride
    1
    >>> bank_conflict_degree(np.arange(32) * 32)     # stride 32
    32
    >>> bank_conflict_degree(np.zeros(32, dtype=int))  # broadcast
    1
    """
    addrs = np.asarray(word_addresses, dtype=np.int64).ravel()
    if addrs.size == 0:
        return 1
    check_positive_int("banks", banks)
    bank = addrs % banks
    degree = 1
    for b in np.unique(bank):
        distinct_words = np.unique(addrs[bank == b]).size
        degree = max(degree, int(distinct_words))
    return degree


def warp_transactions(
    word_addresses: np.ndarray,
    *,
    words_per_thread: int = 1,
    banks: int = SMEM_BANKS,
) -> int:
    """Shared-memory transactions needed to satisfy one warp-wide load.

    ``word_addresses`` are the first-word addresses of each lane;
    ``words_per_thread`` widens each access (LDS.64 -> 2 words,
    LDS.128 -> 4 words).  Wide accesses are issued in up-to-128-byte
    phases; each phase pays its own conflict degree.
    """
    addrs = np.asarray(word_addresses, dtype=np.int64).ravel()
    check_positive_int("words_per_thread", words_per_thread)
    # A wide LDS is executed in phases of <= 128 bytes: with w-word
    # accesses, 32/w lanes are served per phase.  Each phase pays one
    # transaction per distinct word mapped to the busiest bank.
    lanes_per_phase = max(1, SMEM_BANKS // words_per_thread)
    widths = np.arange(words_per_thread, dtype=np.int64)
    total = 0
    for start in range(0, addrs.size, lanes_per_phase):
        group = addrs[start : start + lanes_per_phase]
        words = (group[:, None] + widths[None, :]).ravel()
        total += bank_conflict_degree(words, banks)
    return total


def conflict_multiplier(
    word_addresses: np.ndarray,
    *,
    words_per_thread: int = 1,
    banks: int = SMEM_BANKS,
) -> float:
    """Slowdown factor relative to the conflict-free transaction count
    for the same access width (1.0 = no penalty)."""
    actual = warp_transactions(
        word_addresses, words_per_thread=words_per_thread, banks=banks
    )
    addrs = np.asarray(word_addresses).ravel()
    lanes_per_phase = max(1, SMEM_BANKS // words_per_thread)
    phases = -(-addrs.size // lanes_per_phase) * words_per_thread
    ideal = max(1, phases)
    return actual / ideal
