"""Roofline model (paper §IV-E, Fig. 10).

``attainable(ai) = min(peak_flops, ai * bandwidth)`` with the ridge
point at ``peak/bandwidth``.  The paper plots measured TFLOPS against
the Eq. 3 arithmetic intensity on the A100's 14.7 TFLOPS locked roof.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SimulationError
from repro.gpu.spec import GPUSpec

__all__ = ["BoundKind", "Roofline", "RooflinePoint"]


class BoundKind(str, Enum):
    """Which roof limits a kernel at its arithmetic intensity."""

    COMPUTE = "compute-bound"
    MEMORY = "memory-bound"


@dataclass(frozen=True)
class RooflinePoint:
    """One measured/modelled kernel placed on the roofline."""

    label: str
    arithmetic_intensity: float
    achieved_flops: float

    def efficiency_vs(self, roofline: "Roofline") -> float:
        """Achieved FLOPs over the attainable roof at this AI."""
        roof = roofline.attainable(self.arithmetic_intensity)
        return self.achieved_flops / roof if roof else 0.0


@dataclass(frozen=True)
class Roofline:
    """A peak-compute + peak-bandwidth roofline for one GPU."""

    peak_flops: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise SimulationError("roofline peaks must be positive")

    @classmethod
    def for_gpu(cls, spec: GPUSpec, *, locked: bool = True) -> "Roofline":
        """Build the FP32 CUDA-core roofline for a GPU, at the locked
        clock by default (matching the paper's NCU methodology)."""
        peak = spec.locked_peak_flops if locked else spec.peak_fp32_flops
        return cls(peak_flops=peak, bandwidth_bytes_per_s=spec.dram_bytes_per_s)

    @property
    def ridge_point(self) -> float:
        """AI (FLOP/byte) at which the two roofs intersect."""
        return self.peak_flops / self.bandwidth_bytes_per_s

    def attainable(self, arithmetic_intensity: float) -> float:
        """Attainable FLOP/s at the given arithmetic intensity."""
        if arithmetic_intensity < 0:
            raise SimulationError(
                f"arithmetic intensity must be non-negative, got {arithmetic_intensity}"
            )
        return min(self.peak_flops, arithmetic_intensity * self.bandwidth_bytes_per_s)

    def bound_kind(self, arithmetic_intensity: float) -> BoundKind:
        """Classify an AI as compute- or memory-bound (the §III-A
        transition the paper's sparsity-aware optimization keys on)."""
        if arithmetic_intensity >= self.ridge_point:
            return BoundKind.COMPUTE
        return BoundKind.MEMORY

    def efficiency(self, arithmetic_intensity: float, achieved_flops: float) -> float:
        """Achieved over attainable at this AI (<= 1 for a sound model)."""
        roof = self.attainable(arithmetic_intensity)
        return achieved_flops / roof if roof else 0.0
