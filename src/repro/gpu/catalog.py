"""The evaluation GPUs (paper Table III) and a lookup registry.

Locked clocks: the paper profiles with Nsight Compute, which locks the
SM clock; §IV-E reports the resulting measured FP32 peak of 14.7 TFLOPS
on the A100 (vs 19.5 at boost).  We set each part's locked clock to its
base/TDP clock so the modelled locked peak matches that methodology
(A100: 1065 MHz -> 14.72 TFLOPS).

Each spec's ``extras["native_link"]`` names the interconnect a
multi-device group of that part would natively use (A100: NVLink;
the GeForce parts dropped NVLink for PCIe) — the distributed layer's
:meth:`~repro.distributed.topology.DeviceGroup.build` resolves
``link=None`` through it.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.gpu.spec import GPUSpec

__all__ = ["A100_80G", "RTX_3090", "RTX_4090", "get_gpu", "list_gpus", "resolve_gpu"]


A100_80G = GPUSpec(
    name="A100 80G",
    extras={"native_link": "nvlink"},
    boost_clock_mhz=1410,
    peak_fp32_tflops=19.5,
    num_sms=108,
    registers_per_sm_kb=256,
    fp32_cores_per_sm=64,
    fp32_flops_per_clock_per_sm=128,
    smem_per_sm_kb=192,
    l2_cache_mb=40.0,
    dram_gb=80,
    dram_bw_gbps=1935.0,
    locked_clock_mhz=1065,  # -> 14.72 TFLOPS locked peak (paper: 14.7)
    max_smem_per_block_kb=164,
)

RTX_3090 = GPUSpec(
    name="RTX 3090",
    extras={"native_link": "pcie4"},
    boost_clock_mhz=1695,
    peak_fp32_tflops=35.6,
    num_sms=82,
    registers_per_sm_kb=256,
    fp32_cores_per_sm=128,
    fp32_flops_per_clock_per_sm=256,
    smem_per_sm_kb=128,
    l2_cache_mb=6.0,
    dram_gb=24,
    dram_bw_gbps=936.0,
    locked_clock_mhz=1395,  # base clock
    max_smem_per_block_kb=100,
)

RTX_4090 = GPUSpec(
    name="RTX 4090",
    extras={"native_link": "pcie4"},
    boost_clock_mhz=2520,
    peak_fp32_tflops=82.6,
    num_sms=128,
    registers_per_sm_kb=256,
    fp32_cores_per_sm=128,
    fp32_flops_per_clock_per_sm=256,
    smem_per_sm_kb=128,
    l2_cache_mb=72.0,
    dram_gb=24,
    dram_bw_gbps=1008.0,
    locked_clock_mhz=2235,  # base clock
    max_smem_per_block_kb=100,
)

_REGISTRY: dict[str, GPUSpec] = {
    "a100": A100_80G,
    "a100-80g": A100_80G,
    "a100 80g": A100_80G,
    "3090": RTX_3090,
    "rtx3090": RTX_3090,
    "rtx 3090": RTX_3090,
    "4090": RTX_4090,
    "rtx4090": RTX_4090,
    "rtx 4090": RTX_4090,
}


def get_gpu(name: str) -> GPUSpec:
    """Look up a GPU by (case-insensitive) name.

    >>> get_gpu("A100").name
    'A100 80G'
    """
    key = name.strip().lower()
    if key in _REGISTRY:
        return _REGISTRY[key]
    raise ConfigurationError(
        f"unknown GPU {name!r}; known: {sorted(set(g.name for g in _REGISTRY.values()))}"
    )


def list_gpus() -> list[GPUSpec]:
    """All distinct catalogued GPUs in paper order."""
    return [A100_80G, RTX_3090, RTX_4090]


def resolve_gpu(gpu: "str | GPUSpec") -> GPUSpec:
    """Accept either a name or an explicit :class:`GPUSpec`."""
    if isinstance(gpu, GPUSpec):
        return gpu
    if isinstance(gpu, str):
        return get_gpu(gpu)
    raise ConfigurationError(f"cannot interpret {gpu!r} as a GPU")
