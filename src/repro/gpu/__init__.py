"""GPU hardware model substrate.

Models of the three evaluation GPUs (Table III), their memory
hierarchies, shared-memory banking, occupancy rules and instruction
issue rates — everything the performance simulator needs to reason the
way the paper's §III analysis does.
"""

from repro.gpu.spec import GPUSpec
from repro.gpu.catalog import A100_80G, RTX_3090, RTX_4090, get_gpu, list_gpus, resolve_gpu
from repro.gpu.memory import MemoryHierarchy
from repro.gpu.banks import bank_conflict_degree, conflict_multiplier, warp_transactions
from repro.gpu.occupancy import OccupancyResult, compute_occupancy
from repro.gpu.isa import InstructionClass, IssueModel, issue_model_for
from repro.gpu.roofline import BoundKind, Roofline

__all__ = [
    "GPUSpec",
    "A100_80G",
    "RTX_3090",
    "RTX_4090",
    "get_gpu",
    "list_gpus",
    "resolve_gpu",
    "MemoryHierarchy",
    "bank_conflict_degree",
    "warp_transactions",
    "conflict_multiplier",
    "OccupancyResult",
    "compute_occupancy",
    "InstructionClass",
    "IssueModel",
    "issue_model_for",
    "Roofline",
    "BoundKind",
]
