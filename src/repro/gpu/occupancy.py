"""SM occupancy calculation.

§III-B2: "using too many registers per thread reduces parallelism,
which is referred to as occupancy".  Occupancy bounds how much
instruction latency the scheduler can hide; the pipeline model scales
its latency-hiding capability with the achieved warp count.

The calculation mirrors NVIDIA's occupancy calculator: blocks per SM
are limited by (a) warp slots, (b) the register file, (c) shared
memory, and (d) the architectural blocks-per-SM cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import WARP_SIZE
from repro.errors import SimulationError
from repro.gpu.spec import GPUSpec
from repro.utils.validation import check_positive_int

__all__ = ["OccupancyResult", "compute_occupancy"]

#: Hardware cap on resident blocks per SM for the modelled parts.
MAX_BLOCKS_PER_SM = 32

#: Register allocation granularity (registers are allocated per warp in
#: chunks of 256 on Ampere/Ada).
REGISTER_ALLOC_UNIT = 256


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy outcome for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    limiter: str
    registers_per_thread: int
    smem_bytes_per_block: int

    @property
    def active_threads_per_sm(self) -> int:
        return self.warps_per_sm * WARP_SIZE


def compute_occupancy(
    spec: GPUSpec,
    threads_per_block: int,
    registers_per_thread: int,
    smem_bytes_per_block: int,
) -> OccupancyResult:
    """Compute achieved occupancy for a block configuration on ``spec``.

    Raises :class:`SimulationError` when the block cannot launch at all
    (register or shared-memory demand exceeds the SM).
    """
    threads_per_block = check_positive_int("threads_per_block", threads_per_block)
    registers_per_thread = check_positive_int(
        "registers_per_thread", registers_per_thread
    )
    if threads_per_block % WARP_SIZE != 0:
        raise SimulationError(
            f"threads_per_block={threads_per_block} is not a warp multiple"
        )
    if threads_per_block > spec.max_threads_per_block:
        raise SimulationError(
            f"threads_per_block={threads_per_block} exceeds the "
            f"{spec.max_threads_per_block} limit"
        )
    if smem_bytes_per_block < 0:
        raise SimulationError("smem_bytes_per_block must be non-negative")

    warps_per_block = threads_per_block // WARP_SIZE

    # (a) warp slots
    by_warps = spec.max_warps_per_sm // warps_per_block
    # (b) register file, allocated per warp with granularity
    regs_per_warp = -(
        -registers_per_thread * WARP_SIZE // REGISTER_ALLOC_UNIT
    ) * REGISTER_ALLOC_UNIT
    regs_per_block = regs_per_warp * warps_per_block
    if regs_per_block > spec.registers_per_sm:
        raise SimulationError(
            f"block needs {regs_per_block} registers but the SM has "
            f"{spec.registers_per_sm}"
        )
    by_regs = spec.registers_per_sm // regs_per_block
    # (c) shared memory
    if smem_bytes_per_block > spec.smem_bytes_per_block_limit:
        raise SimulationError(
            f"block needs {smem_bytes_per_block} B of shared memory but "
            f"the per-block limit is {spec.smem_bytes_per_block_limit} B"
        )
    # A kernel using no shared memory is unconstrained by it; the
    # sentinel exceeds every other limit so it never wins the argmin.
    by_smem = (
        spec.smem_bytes_per_sm // smem_bytes_per_block
        if smem_bytes_per_block
        else 10**9
    )
    # (d) architectural cap
    candidates = {
        "warp slots": by_warps,
        "registers": by_regs,
        "shared memory": by_smem,
        "block cap": MAX_BLOCKS_PER_SM,
    }
    limiter = min(candidates, key=lambda key: candidates[key])
    blocks = max(0, min(candidates.values()))
    if blocks == 0:
        raise SimulationError(
            f"configuration cannot launch: limiter={limiter} allows 0 blocks"
        )
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / spec.max_warps_per_sm,
        limiter=limiter,
        registers_per_thread=registers_per_thread,
        smem_bytes_per_block=smem_bytes_per_block,
    )
