"""GPU specification dataclass (paper Table III).

Each field corresponds to a Table III row; derived properties expose
the per-SM and per-cycle rates the analysis model uses (FLOPs/clock/SM,
DRAM bytes per SM-cycle, the compute:bandwidth ridge point).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.utils.validation import check_positive_int

__all__ = ["GPUSpec"]


@dataclass(frozen=True)
class GPUSpec:
    """Hardware metrics of one GPU (Table III) plus model parameters.

    Attributes
    ----------
    name:
        Display name ("A100 80G", ...).
    boost_clock_mhz:
        Boost clock; peak TFLOPS is quoted at this clock.
    locked_clock_mhz:
        The clock Nsight Compute locks during profiling.  The paper's
        efficiency numbers are relative to the *locked* peak (14.7
        TFLOPS on A100 vs the 19.5 boost figure, §IV-E).
    peak_fp32_tflops:
        Peak FP32 throughput at boost clock (CUDA cores).
    num_sms:
        Streaming multiprocessor count.
    registers_per_sm_kb:
        Register file per SM.
    fp32_cores_per_sm:
        FP32 lanes per SM.
    fp32_flops_per_clock_per_sm:
        2x cores (FMA counts two FLOPs) — Table III lists it directly.
    smem_per_sm_kb:
        Combined L1/shared-memory capacity per SM.
    l2_cache_mb:
        L2 capacity.
    dram_gb:
        Device memory size.
    dram_bw_gbps:
        Peak DRAM bandwidth (GB/s).
    max_warps_per_sm:
        Scheduler limit (64 on every part here).
    warp_schedulers_per_sm:
        Warp schedulers (instruction issue slots) per SM.
    max_threads_per_block:
        CUDA limit, 1024.
    max_smem_per_block_kb:
        Per-block shared-memory cap (opt-in maximum).
    """

    name: str
    boost_clock_mhz: int
    peak_fp32_tflops: float
    num_sms: int
    registers_per_sm_kb: int
    fp32_cores_per_sm: int
    fp32_flops_per_clock_per_sm: int
    smem_per_sm_kb: int
    l2_cache_mb: float
    dram_gb: int
    dram_bw_gbps: float
    locked_clock_mhz: int = 0
    max_warps_per_sm: int = 64
    warp_schedulers_per_sm: int = 4
    max_threads_per_block: int = 1024
    max_smem_per_block_kb: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int("boost_clock_mhz", self.boost_clock_mhz)
        check_positive_int("num_sms", self.num_sms)
        check_positive_int("fp32_cores_per_sm", self.fp32_cores_per_sm)
        if self.peak_fp32_tflops <= 0:
            raise ConfigurationError("peak_fp32_tflops must be positive")
        if self.dram_bw_gbps <= 0:
            raise ConfigurationError("dram_bw_gbps must be positive")
        if self.fp32_flops_per_clock_per_sm != 2 * self.fp32_cores_per_sm:
            raise ConfigurationError(
                "fp32_flops_per_clock_per_sm must equal 2*fp32_cores_per_sm "
                f"(FMA = 2 FLOPs): got {self.fp32_flops_per_clock_per_sm} "
                f"vs cores {self.fp32_cores_per_sm}"
            )
        if self.locked_clock_mhz < 0:
            raise ConfigurationError("locked_clock_mhz must be non-negative")
        if self.max_smem_per_block_kb < 0:
            raise ConfigurationError("max_smem_per_block_kb must be non-negative")

    # ------------------------------------------------------------------
    # Clocks and peaks
    # ------------------------------------------------------------------
    @property
    def effective_clock_hz(self) -> float:
        """Clock used for modelling: the NCU-locked clock when known,
        otherwise the boost clock."""
        mhz = self.locked_clock_mhz or self.boost_clock_mhz
        return mhz * 1e6

    @property
    def peak_fp32_flops(self) -> float:
        """Peak FP32 FLOP/s at boost clock."""
        return self.peak_fp32_tflops * 1e12

    @property
    def locked_peak_flops(self) -> float:
        """Peak FP32 FLOP/s at the effective (locked) clock — the
        denominator of the paper's efficiency metric."""
        return (
            self.num_sms
            * self.fp32_flops_per_clock_per_sm
            * self.effective_clock_hz
        )

    @property
    def smem_bytes_per_sm(self) -> int:
        """Shared-memory bytes per SM (the SM_Size of Eq. 4)."""
        return self.smem_per_sm_kb * 1024

    @property
    def smem_bytes_per_block_limit(self) -> int:
        """Per-block shared memory cap; defaults to the SM capacity
        when the part has no tighter opt-in limit recorded."""
        if self.max_smem_per_block_kb:
            return self.max_smem_per_block_kb * 1024
        return self.smem_bytes_per_sm

    @property
    def registers_per_sm(self) -> int:
        """32-bit registers per SM."""
        return self.registers_per_sm_kb * 1024 // 4

    @property
    def l2_bytes(self) -> int:
        return int(self.l2_cache_mb * 1024 * 1024)

    @property
    def dram_bytes_per_s(self) -> float:
        return self.dram_bw_gbps * 1e9

    # ------------------------------------------------------------------
    # Per-cycle rates (per SM)
    # ------------------------------------------------------------------
    @property
    def flops_per_cycle_per_sm(self) -> int:
        return self.fp32_flops_per_clock_per_sm

    @property
    def dram_bytes_per_cycle_per_sm(self) -> float:
        """DRAM bytes available to one SM per core clock when all SMs
        stream concurrently."""
        return self.dram_bytes_per_s / (self.effective_clock_hz * self.num_sms)

    @property
    def smem_bytes_per_cycle_per_sm(self) -> float:
        """Shared-memory bandwidth per SM: 32 banks x 4 B per cycle."""
        return 128.0

    @property
    def ridge_flops_per_byte(self) -> float:
        """Roofline ridge point at the effective clock: arithmetic
        intensity above which the device is compute bound."""
        return self.locked_peak_flops / self.dram_bytes_per_s

    @property
    def compute_to_bw_ratio(self) -> float:
        """Boost-clock FLOPs per DRAM byte — the paper's observation
        that 3090/4090 have a much larger gap between SM compute power
        and memory bandwidth than A100 (§IV-B)."""
        return self.peak_fp32_flops / self.dram_bytes_per_s

    def __str__(self) -> str:
        return (
            f"GPUSpec({self.name}: {self.peak_fp32_tflops} TFLOPS, "
            f"{self.num_sms} SMs, {self.dram_bw_gbps} GB/s)"
        )
