"""Shared constants for the NM-SpMM reproduction.

These mirror the fixed quantities the paper's analysis relies on:
FP32 operands (4 bytes), 32-thread warps, 32 shared-memory banks, and
the 70% sparsity threshold separating *moderate* (compute-bound) from
*high* (memory-bound) sparsity (paper §III-A).
"""

from __future__ import annotations

#: Bytes per FP32 element; the paper's kernels are FP32-only.
FP32_BYTES: int = 4

#: Threads per warp on every NVIDIA GPU the paper evaluates.
WARP_SIZE: int = 32

#: Number of shared-memory banks per SM (4-byte wide each).
SMEM_BANKS: int = 32

#: Bytes per shared-memory bank word.
SMEM_BANK_WIDTH: int = 4

#: Sparsity above which the paper classifies the problem as *high*
#: sparsity (memory bound) and enables the packing strategy (§III-A:
#: "we define sparsity below 70.0% as moderate and above 70.0% as high").
HIGH_SPARSITY_THRESHOLD: float = 0.70

#: The paper's four benchmark sparsity ratios (§IV-A).
PAPER_SPARSITIES: tuple[float, ...] = (0.50, 0.625, 0.75, 0.875)

#: Maximum registers addressable per thread (§III-B2).
MAX_REGISTERS_PER_THREAD: int = 255

#: The register-budget constraint from §III-B2:
#: ``mt + nt + mt*nt <= MAX_REGISTERS_PER_THREAD``.
THREAD_TILE_REGISTER_BUDGET: int = MAX_REGISTERS_PER_THREAD

#: Fraction of SM shared memory the kernel may occupy (Eq. 4 keeps half
#: for double buffering and temporaries).
SMEM_USABLE_FRACTION: float = 0.5

def __getattr__(name: str):
    # Deprecated shim: the frozen EXECUTE_BACKENDS tuple was replaced
    # by the pluggable backend registry (:mod:`repro.backends`), which
    # the CLI, serving runtime and benchmarks now enumerate directly.
    # Resolved lazily so this module stays import-light and the shim
    # always reflects the currently registered backends.
    if name == "EXECUTE_BACKENDS":
        from repro.backends.registry import deprecated_execute_backends

        return deprecated_execute_backends("repro.constants.EXECUTE_BACKENDS")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Default vector length L for vector-wise pruning; the paper's figures
#: use pruning windows of L-wide vectors with L a multiple of the warp
#: quad width.  Fig. 1 demonstrates L = 4; kernels default to 32 which
#: the paper notes "facilitates load distribution within the warp".
DEFAULT_VECTOR_LENGTH: int = 32

#: Global-memory transaction (sector) size in bytes, used by the
#: traffic model to account for uncoalesced gathers.
GMEM_SECTOR_BYTES: int = 32

#: Default dtype name used across kernels.
DEFAULT_DTYPE: str = "float32"
