"""Exception hierarchy for the NM-SpMM reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration problems from numerical ones.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PatternError",
    "ShapeError",
    "CompressionError",
    "PlanError",
    "SimulationError",
    "CalibrationError",
    "AutotuneError",
    "ServeError",
    "ShardError",
    "ObsError",
    "FaultError",
    "LintError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied (bad N, M, L, tile...)."""


class PatternError(ConfigurationError):
    """An N:M sparsity pattern is malformed or violates its invariants."""


class ShapeError(ReproError, ValueError):
    """Matrix operands have incompatible or unsupported shapes."""


class CompressionError(ReproError):
    """Compression or decompression of an N:M matrix failed."""


class PlanError(ReproError):
    """An execution plan could not be constructed or is inconsistent."""


class SimulationError(ReproError):
    """The performance simulator was asked to model an impossible setup."""


class CalibrationError(ReproError):
    """A calibration constant is missing or out of its documented range."""


class AutotuneError(ReproError):
    """The parameter autotuner found no feasible configuration."""


class ServeError(ReproError):
    """The serving runtime was misused (unknown model, bad request,
    inconsistent queue state or batching policy)."""


class ShardError(ReproError):
    """A tensor-parallel partition is impossible or inconsistent
    (device count exceeds the shardable windows, unknown shard mode,
    mismatched per-device outputs)."""


class ObsError(ReproError):
    """The observability layer was misused (unbalanced span stack,
    span-tree invariant violation, malformed trace file)."""


class FaultError(ReproError):
    """A fault-injection plan is malformed (bad ``--faults`` spec,
    out-of-range probability or window, unknown fault kind)."""


class LintError(ReproError):
    """The static-analysis engine was misused (unknown rule code,
    malformed pragma or baseline file, unparseable lint target)."""
