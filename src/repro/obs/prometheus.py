"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

The output follows the text-based exposition format: ``# HELP`` /
``# TYPE`` headers per metric, one sample line per label set, and for
histograms the cumulative ``_bucket{le=...}`` series closed with
``le="+Inf"`` plus the ``_sum`` / ``_count`` pair.  Metric names are
sanitized to the Prometheus charset (dots and dashes become
underscores).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prometheus_text"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape(value: str) -> str:
    """Label-value escaping per the exposition format: backslash,
    double quote, and line feed."""
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """``# HELP`` text escaping per the exposition format: backslash
    and line feed only (quotes are legal in help text)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _labels(
    pairs: Iterable[tuple[str, str]],
    extra: "tuple[tuple[str, str], ...]" = (),
) -> str:
    items = [*pairs, *extra]
    if not items:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{_escape(str(v))}"' for k, v in items)
    return "{" + inner + "}"


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every metric in the registry as text exposition."""
    lines: list[str] = []
    for metric in registry:
        name = _sanitize(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            samples = metric.samples() or [((), 0.0)]
            for key, value in samples:
                lines.append(f"{name}{_labels(key)} {_format(value)}")
        elif isinstance(metric, Histogram):
            for key, counts, total in metric.samples():
                # counts carries one extra (+Inf) entry past the bounds.
                for bound, count in zip(metric.buckets, counts, strict=False):
                    lines.append(
                        f"{name}_bucket"
                        f"{_labels(key, (('le', repr(float(bound))),))} "
                        f"{count}"
                    )
                lines.append(
                    f"{name}_bucket{_labels(key, (('le', '+Inf'),))} "
                    f"{counts[-1]}"
                )
                lines.append(f"{name}_sum{_labels(key)} {_format(total)}")
                lines.append(f"{name}_count{_labels(key)} {counts[-1]}")
    return "\n".join(lines) + "\n"
