"""A small metrics registry: counters, gauges, histograms.

The serving engine, the backend layer and the distributed layer all
report through one :class:`MetricsRegistry`.  Everything is driven by
the *simulated* runtime (no wall-clock reads), so two runs of the same
seeded scenario produce bit-identical metric values — which is what
makes the Prometheus exposition (:mod:`repro.obs.prometheus`)
assertable in tests rather than merely eyeballable.

Labels follow the Prometheus data model: each metric holds one sample
per distinct label set, and a histogram's buckets are cumulative upper
bounds closed with ``+Inf``.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, TypeVar, Union

from repro.errors import ObsError

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "BoundCounter",
    "BoundGauge",
    "BoundHistogram",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
]

#: Default histogram buckets for durations in seconds.  The simulated
#: serving clock lives in the microsecond-to-second range (scaled-down
#: NumPy shapes make modeled launches microseconds), so the decades
#: span 1us to 10s.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: One sample's label set, normalized to a hashable, sorted key.
LabelKey = tuple[tuple[str, str], ...]

_NO_LABELS: LabelKey = ()


def _label_key(labels: dict[str, object]) -> LabelKey:
    if not labels:  # the common unlabeled fast path
        return _NO_LABELS
    if len(labels) == 1:  # one label needs no sort
        [(k, v)] = labels.items()
        return ((k, v if type(v) is str else str(v)),)
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count (per label set)."""

    name: str
    help: str = ""
    kind: str = field(default="counter", init=False)
    _values: dict[LabelKey, float] = field(default_factory=dict)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ObsError(
                f"counter {self.name!r} cannot decrease (inc({value}))"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def labels(self, **labels: object) -> "BoundCounter":
        """Resolve one label set once; the returned handle's ``inc``
        skips label normalization (the per-launch hot path)."""
        return BoundCounter(self, _label_key(labels))

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        return sorted(self._values.items())


class BoundCounter:
    """A :class:`Counter` pre-bound to one label set."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Counter, key: LabelKey) -> None:
        self._metric = metric
        self._key = key

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ObsError(
                f"counter {self._metric.name!r} cannot decrease "
                f"(inc({value}))"
            )
        values = self._metric._values
        values[self._key] = values.get(self._key, 0.0) + value


@dataclass
class Gauge:
    """A value that can move both ways (per label set)."""

    name: str
    help: str = ""
    kind: str = field(default="gauge", init=False)
    _values: dict[LabelKey, float] = field(default_factory=dict)

    def set(self, value: float, **labels: object) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, value: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + value

    def labels(self, **labels: object) -> "BoundGauge":
        """Resolve one label set once; the returned handle's ``set`` /
        ``inc`` skip label normalization."""
        return BoundGauge(self, _label_key(labels))

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, float]]:
        return sorted(self._values.items())


class BoundGauge:
    """A :class:`Gauge` pre-bound to one label set."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: Gauge, key: LabelKey) -> None:
        self._metric = metric
        self._key = key

    def set(self, value: float) -> None:
        self._metric._values[self._key] = float(value)

    def inc(self, value: float = 1.0) -> None:
        values = self._metric._values
        values[self._key] = values.get(self._key, 0.0) + value


@dataclass
class Histogram:
    """Cumulative-bucket histogram (per label set), Prometheus-style:
    ``buckets`` are upper bounds, each observation lands in every
    bucket whose bound is >= the value, and the implicit ``+Inf``
    bucket counts everything."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS
    kind: str = field(default="histogram", init=False)
    _counts: dict[LabelKey, list[int]] = field(default_factory=dict)
    _sums: dict[LabelKey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ObsError(
                f"histogram {self.name!r} buckets must be a nonempty "
                f"ascending sequence, got {self.buckets}"
            )
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        # Counts are stored per-bucket (one increment via bisect) and
        # cumulated on read — observation is the hot path.
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)

    def labels(self, **labels: object) -> "BoundHistogram":
        """Resolve one label set once; the returned handle's
        ``observe`` skips label normalization."""
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        return BoundHistogram(self, key, counts)

    def count(self, **labels: object) -> int:
        counts = self._counts.get(_label_key(labels))
        return sum(counts) if counts else 0

    def sum(self, **labels: object) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[LabelKey, list[int], float]]:
        """Cumulative Prometheus-style bucket counts per label set
        (the last entry is the ``+Inf`` total)."""
        return sorted(
            (key, list(itertools.accumulate(counts)), self._sums[key])
            for key, counts in self._counts.items()
        )


class BoundHistogram:
    """A :class:`Histogram` pre-bound to one label set."""

    __slots__ = ("_metric", "_key", "_counts")

    def __init__(
        self, metric: Histogram, key: LabelKey, counts: list[int]
    ) -> None:
        self._metric = metric
        self._key = key
        self._counts = counts

    def observe(self, value: float) -> None:
        self._counts[
            bisect.bisect_left(self._metric.buckets, value)
        ] += 1
        sums = self._metric._sums
        sums[self._key] = sums.get(self._key, 0.0) + float(value)


#: Any of the three metric kinds a registry can hold.
Metric = Union[Counter, Gauge, Histogram]

_M = TypeVar("_M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create semantics.

    Instruments call ``registry.counter("x_total").inc(...)`` at the
    point of measurement; the first call creates the metric and later
    calls reuse it, so instrumentation sites never coordinate.
    Re-requesting a name as a different kind is an error (it would
    silently fork the time series).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(
        self, cls: type[_M], name: str, help_text: str, **kwargs: Any
    ) -> _M:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ObsError(
                    f"metric {name!r} is a {existing.kind}, not a "
                    f"{cls.__name__.lower()}"
                )
            return existing
        metric = cls(name=name, help=help_text, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def get(self, name: str) -> Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise ObsError(f"no metric named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict[str, dict[str, object]]:
        """A JSON-able snapshot (labels flattened to ``k=v`` strings)."""
        out: dict[str, dict[str, object]] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    ",".join(f"{k}={v}" for k, v in key) or "_": {
                        "count": counts[-1],
                        "sum": total,
                    }
                    for key, counts, total in metric.samples()
                }
            else:
                out[metric.name] = {
                    ",".join(f"{k}={v}" for k, v in key) or "_": value
                    for key, value in metric.samples()
                }
        return out
