"""Flamegraph-style span aggregation: the ``trace summarize`` view.

Groups a trace's spans by name and reports, per name, the call count,
total (inclusive) time, self time (total minus the time of *direct*
children — the flamegraph decomposition), mean duration, and the
p50/p95/max duration percentiles (shared with the roofline
attribution report in :mod:`repro.obs.analyze`), sorted by total
time.  Works on live :class:`~repro.obs.tracer.Tracer` spans and on
spans loaded back from either export format
(:func:`~repro.obs.export.load_trace`), since both carry
``span_id``/``parent_id``.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ObsError
from repro.utils.stats import percentile
from repro.utils.tables import TextTable

__all__ = ["summarize_spans", "render_summary", "summarize_file"]


def _as_dict(span: Any) -> dict[str, Any]:
    if isinstance(span, dict):
        return span
    # A live Span object.
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "duration_s": span.duration_s,
    }


def summarize_spans(spans: Iterable[Any]) -> list[dict[str, Any]]:
    """Aggregate spans by name.

    Returns rows ``{"name", "count", "total_s", "self_s", "mean_s",
    "p50_s", "p95_s", "max_s"}`` sorted by total time descending (name
    breaks ties), so ``rows[0]`` is where the simulated time went.
    """
    normalized = [_as_dict(s) for s in spans]
    child_time: dict[Any, float] = {}
    for span in normalized:
        parent = span.get("parent_id")
        if parent is not None:
            child_time[parent] = (
                child_time.get(parent, 0.0) + span["duration_s"]
            )
    rows: dict[str, dict[str, Any]] = {}
    durations: dict[str, list[float]] = {}
    for span in normalized:
        row = rows.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "total_s": 0.0, "self_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += span["duration_s"]
        row["self_s"] += span["duration_s"] - child_time.get(
            span.get("span_id"), 0.0
        )
        durations.setdefault(span["name"], []).append(span["duration_s"])
    out = []
    for row in rows.values():
        # Clamp float dust: self time is >= 0 by construction (children
        # nest inside their parent on the simulated clock).
        row["self_s"] = max(0.0, row["self_s"])
        row["mean_s"] = row["total_s"] / row["count"]
        sample = durations[row["name"]]
        row["p50_s"] = percentile(sample, 50)
        row["p95_s"] = percentile(sample, 95)
        row["max_s"] = max(sample)
        out.append(row)
    out.sort(key=lambda r: (-r["total_s"], r["name"]))
    return out


def render_summary(
    rows: list[dict[str, Any]], *, top: int = 10, title: str = "trace summary"
) -> str:
    """The top-``k`` table ``python -m repro trace summarize`` prints."""
    if not rows:
        raise ObsError("no spans to summarize")
    table = TextTable(
        ["span", "count", "total", "self", "mean", "p50", "p95", "max"],
        title=title,
    )
    for row in rows[: max(1, top)]:
        table.add_row(
            [
                row["name"],
                str(row["count"]),
                f"{row['total_s'] * 1e3:.3f} ms",
                f"{row['self_s'] * 1e3:.3f} ms",
                f"{row['mean_s'] * 1e3:.3f} ms",
                f"{row['p50_s'] * 1e3:.3f} ms",
                f"{row['p95_s'] * 1e3:.3f} ms",
                f"{row['max_s'] * 1e3:.3f} ms",
            ]
        )
    if len(rows) > top:
        table.add_row(
            [f"... {len(rows) - top} more", "", "", "", "", "", "", ""]
        )
    return table.render()


def summarize_file(path: str, *, top: int = 10) -> str:
    """Load a trace file (either format) and render its top-``k``."""
    from repro.obs.export import load_trace

    loaded = load_trace(path)
    rows = summarize_spans(loaded["spans"])
    if not rows:
        raise ObsError(f"trace file {path!r} contains no spans")
    return render_summary(rows, top=top, title=f"trace summary: {path}")
