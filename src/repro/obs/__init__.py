"""Observability: simulated-clock tracing, metrics, and exporters.

The layer every serving/distributed run reports through:

* :class:`Tracer` / :class:`Span` — span-tree tracing on the
  simulated clock (deterministic, assertable);
* :class:`MetricsRegistry` — counters, gauges, histograms;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto) and
  JSONL exporters plus the loader/validator;
* :func:`prometheus_text` — Prometheus-style text exposition;
* :func:`summarize_spans` — flamegraph-style self/total aggregation
  (``python -m repro trace summarize``);
* :mod:`repro.obs.analyze` — offline trace analytics: critical-path
  latency decomposition, roofline attribution of traced launches, and
  direction-aware trace/bench regression diffing (``trace
  critical-path`` / ``trace attribute`` / ``trace diff`` /
  ``bench diff``).

Wire a tracer in with ``InferenceServer(tracer=Tracer())`` (or
``serve-sim --trace FILE``); tracing is off by default and the
disabled path is a single ``is None`` check per instrumentation site.
"""

from repro.obs.export import (
    StreamingJsonlWriter,
    chrome_trace,
    jsonl_records,
    load_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.prometheus import prometheus_text
from repro.obs.summarize import render_summary, summarize_file, summarize_spans
from repro.obs.tracer import Span, TraceEvent, Tracer, TraceSink

__all__ = [
    "Tracer",
    "Span",
    "TraceEvent",
    "TraceSink",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_TIME_BUCKETS",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "StreamingJsonlWriter",
    "load_trace",
    "validate_chrome_trace",
    "prometheus_text",
    "summarize_spans",
    "render_summary",
    "summarize_file",
]
