"""Trace exporters and loaders.

Two file formats for one :class:`~repro.obs.tracer.Tracer`:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — loads directly
  in Perfetto / ``chrome://tracing``.  Tracks ("engine", "queue",
  "device0"...) map to threads of one process, so a 2-device serving
  run renders as parallel device swimlanes under the engine lane.
  Spans are complete (``ph: "X"``) events with microsecond ``ts`` /
  ``dur``; instants are ``ph: "i"``; thread names ship as ``ph: "M"``
  metadata.  ``span_id``/``parent_id`` ride in ``args`` so a loaded
  file still supports self-time aggregation.
* **JSONL event log** (:func:`jsonl_records`) — one JSON object per
  line (a ``meta`` header, then ``span`` / ``event`` records with
  plain seconds), the grep-and-jq-friendly form.

:class:`StreamingJsonlWriter` is the *incremental* variant of the
JSONL form: attached as ``Tracer(sink=...)`` it appends each finished
span and each event the moment the tracer records it, so a long chaos
run streams its trace to disk instead of buffering every record until
exit.  The produced file is plain JSONL — :func:`load_trace` and
``trace summarize`` read it unchanged (its ``meta`` header just
carries no record counts, which aren't known up front).

:func:`load_trace` sniffs either format back into one normalized
``{"spans": [...], "events": [...]}`` dict — the summarizer's input —
and :func:`validate_chrome_trace` is the schema check behind
``python -m repro trace validate`` (and the CI trace-smoke step).
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.errors import ObsError
from repro.obs.tracer import Span, TraceEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_records",
    "write_jsonl",
    "StreamingJsonlWriter",
    "load_trace",
    "validate_chrome_trace",
]

#: ``pid`` of every exported event (one simulated process).
TRACE_PID = 0


def _tracks(tracer: Tracer) -> list[str]:
    """Track names in order of first appearance, so ``tid`` assignment
    is deterministic for a deterministic run."""
    tracks: list[str] = []
    for record in [*tracer.spans, *tracer.events]:
        if record.track not in tracks:
            tracks.append(record.track)
    return tracks


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The tracer's content as a Chrome trace-event JSON object."""
    tracks = _tracks(tracer)
    tid = {track: i for i, track in enumerate(tracks)}
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": TRACE_PID,
            "tid": tid[track],
            "args": {"name": track},
        }
        for track in tracks
    ]
    for span in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.track,
                "pid": TRACE_PID,
                "tid": tid[span.track],
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    for ev in tracer.events:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "name": ev.name,
                "cat": ev.track,
                "pid": TRACE_PID,
                "tid": tid[ev.track],
                "ts": ev.t_s * 1e6,
                "args": dict(ev.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "source": "repro.obs"},
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, sort_keys=True)


def jsonl_records(tracer: Tracer) -> list[dict[str, Any]]:
    """The tracer's content as a list of JSONL records (header first)."""
    records: list[dict[str, Any]] = [
        {
            "type": "meta",
            "clock": "simulated",
            "source": "repro.obs",
            "spans": len(tracer.spans),
            "events": len(tracer.events),
        }
    ]
    for span in tracer.spans:
        records.append(
            {
                "type": "span",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "track": span.track,
                "start_s": span.start_s,
                "end_s": span.end_s,
                "attrs": dict(span.attrs),
            }
        )
    for ev in tracer.events:
        records.append(
            {
                "type": "event",
                "name": ev.name,
                "track": ev.track,
                "t_s": ev.t_s,
                "attrs": dict(ev.attrs),
            }
        )
    return records


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        for record in jsonl_records(tracer):
            fh.write(json.dumps(record, sort_keys=True) + "\n")


class StreamingJsonlWriter:
    """Incremental JSONL trace sink for :class:`Tracer` (``sink=``).

    Records stream in *completion* order: a span is written when it
    closes, not when it opens, so retroactively-accounted engine spans
    may appear out of start-time order — JSONL consumers (``trace
    summarize``, :func:`load_trace`) don't require ordering.  Combine
    with ``Tracer(retain=False)`` to cap tracer memory on long runs.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh: "IO[str] | None" = open(path, "w")
        self.spans_written = 0
        self.events_written = 0
        self._write(
            {
                "type": "meta",
                "clock": "simulated",
                "source": "repro.obs",
                "streaming": True,
            }
        )

    def _write(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            raise ObsError(
                f"streaming trace writer for {self.path!r} is closed"
            )
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")

    def on_span(self, span: Span) -> None:
        """Called by the tracer when a span finishes."""
        self._write(
            {
                "type": "span",
                "name": span.name,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "track": span.track,
                "start_s": span.start_s,
                "end_s": span.end_s,
                "attrs": dict(span.attrs),
            }
        )
        self.spans_written += 1

    def on_event(self, ev: TraceEvent) -> None:
        """Called by the tracer when an instant event is recorded."""
        self._write(
            {
                "type": "event",
                "name": ev.name,
                "track": ev.track,
                "t_s": ev.t_s,
                "attrs": dict(ev.attrs),
            }
        )
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "StreamingJsonlWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def _span_dict(
    name: str,
    span_id: Any,
    parent_id: Any,
    track: str,
    start_s: float,
    duration_s: float,
    attrs: dict[str, Any],
) -> dict[str, Any]:
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "track": track,
        "start_s": start_s,
        "duration_s": duration_s,
        "attrs": attrs,
    }


def _load_chrome(data: dict[str, Any]) -> dict[str, Any]:
    spans: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    for ev in data.get("traceEvents", []):
        ph = ev.get("ph")
        args = ev.get("args", {}) or {}
        if ph == "X":
            attrs = {
                k: v
                for k, v in args.items()
                if k not in ("span_id", "parent_id")
            }
            spans.append(
                _span_dict(
                    ev.get("name", ""),
                    args.get("span_id"),
                    args.get("parent_id"),
                    ev.get("cat", "engine"),
                    ev.get("ts", 0.0) / 1e6,
                    ev.get("dur", 0.0) / 1e6,
                    attrs,
                )
            )
        elif ph == "i":
            events.append(
                {
                    "name": ev.get("name", ""),
                    "track": ev.get("cat", "engine"),
                    "t_s": ev.get("ts", 0.0) / 1e6,
                    "attrs": args,
                }
            )
    return {"spans": spans, "events": events}


def _load_jsonl(lines: list[str]) -> dict[str, Any]:
    spans: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(f"bad JSONL at line {lineno}: {exc}") from None
        kind = record.get("type")
        if kind == "span":
            end_s = record.get("end_s", 0.0)
            start_s = record.get("start_s", 0.0)
            spans.append(
                _span_dict(
                    record.get("name", ""),
                    record.get("span_id"),
                    record.get("parent_id"),
                    record.get("track", "engine"),
                    start_s,
                    end_s - start_s,
                    record.get("attrs", {}),
                )
            )
        elif kind == "event":
            events.append(
                {
                    "name": record.get("name", ""),
                    "track": record.get("track", "engine"),
                    "t_s": record.get("t_s", 0.0),
                    "attrs": record.get("attrs", {}),
                }
            )
        elif kind != "meta":
            raise ObsError(
                f"unknown JSONL record type {kind!r} at line {lineno}"
            )
    return {"spans": spans, "events": events}


def load_trace(path: str) -> dict[str, Any]:
    """Load either export format back into normalized ``{"spans",
    "events"}`` lists (span times in plain seconds)."""
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ObsError(f"trace file {path!r} is empty")
    if stripped.startswith("{") and '"traceEvents"' in stripped:
        try:
            return _load_chrome(json.loads(text))
        except json.JSONDecodeError as exc:
            raise ObsError(f"bad Chrome trace {path!r}: {exc}") from None
    return _load_jsonl(text.splitlines())


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_chrome_trace(data: object) -> list[str]:
    """Schema-check a Chrome trace-event object; returns the list of
    problems (empty means valid).  Checks the subset of the format the
    exporter emits and Perfetto requires: the ``traceEvents`` array,
    per-phase required fields, numeric non-negative timestamps, and
    thread-name metadata for every referenced ``tid``."""
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be an object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing 'traceEvents' array"]
    if not events:
        problems.append("'traceEvents' is empty")
    named_tids: set[tuple[int, int]] = set()
    used_tids: set[tuple[int, int]] = set()
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_tids.add((ev["pid"], ev["tid"]))
            continue
        used_tids.add((ev["pid"], ev["tid"]))
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a number >= 0, got {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: dur must be a number >= 0, got {dur!r}"
                )
    for pid, tid in sorted(used_tids - named_tids):
        problems.append(
            f"tid {tid} (pid {pid}) has events but no thread_name metadata"
        )
    return problems
