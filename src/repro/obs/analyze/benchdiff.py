"""``bench diff``: regression gating over the committed BENCH JSONs.

Understands all five benchmark schemas this repo emits:

========================================  =====================================
schema                                    content
========================================  =====================================
``nm-spmm/serving-bench/v2``              serving scenarios (modeled clock)
``nm-spmm/kernel-bench/v1``               kernel wall-clock (machine-dependent)
``nm-spmm/distributed-bench/v1``          TP crossover + scaling (modeled)
``nm-spmm/resilience-bench/v1``           fault grid (modeled clock)
``nm-spmm/model-serving-bench/v1``        Llama serving + KV study (modeled)
========================================  =====================================

Two guardrails before any numbers are compared:

* **schema match** — diffing a serving bench against a kernel bench is
  a usage error;
* **config-fingerprint match** — each writer stamps a ``meta`` header
  with a fingerprint of its scenario grid
  (:func:`repro.utils.benchmeta.bench_meta`); comparing runs of
  *different* configurations is refused rather than reported as a
  "regression".

Config lists are keyed by ``name`` (and crossover sweeps by ``m``), so
ordering differences never produce spurious deltas.  Modeled metrics
are deterministic per seed and use a tight threshold; the kernel
bench's wall-clock numbers get a generous one and are skipped entirely
under ``--smoke``.  Exit codes: 0 clean, 1 regression, 2 refusal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ObsError
from repro.obs.analyze.delta import NO_CHANGE, REGRESSION, MetricDelta, classify
from repro.utils.tables import TextTable

__all__ = ["BenchDiffReport", "diff_bench", "diff_bench_files"]

#: Relative noise thresholds per schema.  Modeled benchmarks only move
#: when the code changes; the kernel bench measures host wall-clock.
SCHEMA_THRESHOLDS = {
    "nm-spmm/serving-bench/v2": 0.01,
    "nm-spmm/kernel-bench/v1": 0.25,
    "nm-spmm/distributed-bench/v1": 0.01,
    "nm-spmm/resilience-bench/v1": 0.01,
    "nm-spmm/model-serving-bench/v1": 0.01,
}

#: Schemas whose numeric leaves are host wall-clock measurements.
_WALL_CLOCK_SCHEMAS = frozenset({"nm-spmm/kernel-bench/v1"})

#: Keys describing the configuration rather than results — identity is
#: already guarded by the fingerprint, and ``tracer_overhead`` is a
#: host wall-clock measurement even in modeled benches.
_SKIP_KEYS = frozenset(
    {
        "schema",
        "meta",
        "tracer_overhead",
        "scenario",
        "faults",
        "pattern",
        "shape",
        "gpu",
        "link",
        "fault_scenario",
    }
)


def _flatten(
    node: Any, prefix: str, out: "dict[str, float | str]"
) -> None:
    if isinstance(node, dict):
        for key in sorted(node):
            if key in _SKIP_KEYS:
                continue
            _flatten(node[key], f"{prefix}.{key}" if prefix else str(key), out)
    elif isinstance(node, list):
        keyed = _key_list(node)
        if keyed is not None:
            for name, item in keyed:
                _flatten(item, f"{prefix}[{name}]", out)
        else:
            for i, item in enumerate(node):
                _flatten(item, f"{prefix}[{i}]", out)
    elif isinstance(node, bool):
        out[prefix] = str(node)
    elif isinstance(node, (int, float)):
        out[prefix] = float(node)
    elif isinstance(node, str):
        out[prefix] = node


def _key_list(items: "list[Any]") -> "list[tuple[str, Any]] | None":
    """Key a list of mappings by ``name`` (configs, cells) or ``m``
    (crossover sweep points) so ordering never matters."""
    if not items or not all(isinstance(i, dict) for i in items):
        return None
    for key in ("name", "m"):
        if all(key in i for i in items):
            return [(str(i[key]), i) for i in items]
    return None


@dataclass(frozen=True)
class BenchDiffReport:
    """All metric deltas between two benchmark result documents."""

    schema: str
    deltas: "tuple[MetricDelta, ...]"
    string_changes: "tuple[tuple[str, str, str], ...]"
    only_old: "tuple[str, ...]"
    only_new: "tuple[str, ...]"

    @property
    def regressions(self) -> "tuple[MetricDelta, ...]":
        return tuple(d for d in self.deltas if d.verdict == REGRESSION)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 if any direction-aware metric regressed."""
        return 1 if self.regressions else 0

    def to_dict(self) -> "dict[str, Any]":
        return {
            "schema": self.schema,
            "deltas": [
                {
                    "path": d.path,
                    "old": d.old,
                    "new": d.new,
                    "rel_change": d.rel_change,
                    "verdict": d.verdict,
                }
                for d in self.deltas
            ],
            "string_changes": [
                {"path": p, "old": o, "new": n}
                for p, o, n in self.string_changes
            ],
            "only_old": list(self.only_old),
            "only_new": list(self.only_new),
            "regressions": len(self.regressions),
        }

    def render(self, *, all_rows: bool = False) -> str:
        counts: "dict[str, int]" = {}
        for d in self.deltas:
            counts[d.verdict] = counts.get(d.verdict, 0) + 1
        lines = [
            f"bench diff [{self.schema}]: "
            + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        ]
        shown = [
            d for d in self.deltas if all_rows or d.verdict != NO_CHANGE
        ]
        if shown:
            table = TextTable(["metric", "old", "new", "change", "verdict"])
            for d in shown:
                table.add_row(
                    [
                        d.path,
                        f"{d.old:.6g}",
                        f"{d.new:.6g}",
                        f"{d.rel_change * 100:+.2f}%",
                        d.verdict,
                    ]
                )
            lines.append(table.render())
        else:
            lines.append("all metrics identical")
        for path, old, new in self.string_changes:
            lines.append(f"changed: {path}: {old!r} -> {new!r}")
        if self.only_old:
            lines.append("only in old: " + ", ".join(self.only_old))
        if self.only_new:
            lines.append("only in new: " + ", ".join(self.only_new))
        if self.regressions:
            lines.append(
                f"REGRESSION: {len(self.regressions)} metric(s) beyond "
                "threshold in the wrong direction"
            )
        return "\n".join(lines)


def _schema_of(doc: "dict[str, Any]", label: str) -> str:
    schema = doc.get("schema")
    if not isinstance(schema, str):
        raise ObsError(f"{label}: not a benchmark result (missing 'schema')")
    return schema


def diff_bench(
    old: "dict[str, Any]",
    new: "dict[str, Any]",
    *,
    threshold: "float | None" = None,
    smoke: bool = False,
) -> BenchDiffReport:
    """Compare two benchmark result documents of the same schema.

    Raises :class:`~repro.errors.ObsError` on schema or
    config-fingerprint mismatch (a usage error, not a regression).
    ``smoke`` compares only metrics present in both documents and
    skips wall-clock schemas' measurements — the CI mode where a
    freshly generated subset is diffed against the committed full run.
    """
    old_schema = _schema_of(old, "old")
    new_schema = _schema_of(new, "new")
    if old_schema != new_schema:
        raise ObsError(
            f"schema mismatch: old is {old_schema!r}, new is {new_schema!r}"
        )
    old_meta = old.get("meta") or {}
    new_meta = new.get("meta") or {}
    old_fp = old_meta.get("config_fingerprint")
    new_fp = new_meta.get("config_fingerprint")
    if old_fp and new_fp and old_fp != new_fp:
        raise ObsError(
            "config fingerprint mismatch: the two results ran different "
            f"benchmark configurations ({old_fp} vs {new_fp}); refusing to "
            "compare"
        )
    if threshold is None:
        threshold = SCHEMA_THRESHOLDS.get(old_schema, 0.01)

    old_flat: "dict[str, float | str]" = {}
    new_flat: "dict[str, float | str]" = {}
    _flatten(old, "", old_flat)
    _flatten(new, "", new_flat)
    if smoke and old_schema in _WALL_CLOCK_SCHEMAS:
        old_flat = {}
        new_flat = {}

    deltas: "list[MetricDelta]" = []
    strings: "list[tuple[str, str, str]]" = []
    for path in sorted(set(old_flat) & set(new_flat)):
        a, b = old_flat[path], new_flat[path]
        if isinstance(a, str) or isinstance(b, str):
            if str(a) != str(b):
                strings.append((path, str(a), str(b)))
            continue
        deltas.append(classify(path, a, b, threshold=threshold))
    only_old = () if smoke else tuple(sorted(set(old_flat) - set(new_flat)))
    only_new = () if smoke else tuple(sorted(set(new_flat) - set(old_flat)))
    return BenchDiffReport(
        schema=old_schema,
        deltas=tuple(deltas),
        string_changes=tuple(strings),
        only_old=only_old,
        only_new=only_new,
    )


def diff_bench_files(
    old_path: str,
    new_path: str,
    *,
    threshold: "float | None" = None,
    smoke: bool = False,
) -> BenchDiffReport:
    """:func:`diff_bench` over two JSON files on disk."""
    with open(old_path, encoding="utf-8") as fh:
        old = json.load(fh)
    with open(new_path, encoding="utf-8") as fh:
        new = json.load(fh)
    if not isinstance(old, dict) or not isinstance(new, dict):
        raise ObsError("benchmark results must be JSON objects")
    return diff_bench(old, new, threshold=threshold, smoke=smoke)
