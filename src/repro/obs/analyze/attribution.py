"""Roofline attribution of traced GPU launches.

Every ``gpu.launch`` span the server records carries the closed-form
work counts of its :class:`~repro.kernels.blocked.KernelTrace` —
``flops``, ``ldg_bytes``, ``stg_bytes`` — alongside the launch
geometry (``model``, ``rows``, ``gpu``, and in model-execution mode
the per-layer ``layer`` / ``kind``).  That is exactly what the paper's
NCU methodology measures per kernel, so the trace alone places each
launch group on its GPU's locked roofline (§IV-E, Fig. 10):

* arithmetic intensity ``AI = flops / (ldg + stg)`` (Eq. 3 over the
  traced global-memory traffic),
* achieved FLOP/s ``= flops / modeled seconds``,
* bound kind and distance-to-roof against
  :class:`~repro.gpu.roofline.Roofline` for the span's GPU.

Launches are grouped by ``(gpu, model, layer, rows)`` so a 7B decode
step's QKV projection and its MLP up-projection attribute separately.
Launches recorded before this instrumentation existed (no ``flops``
attr, or ``failed`` retries whose work was thrown away) land in the
``unattributed`` tail so totals stay honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ObsError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.roofline import Roofline
from repro.utils.stats import duration_digest
from repro.utils.tables import TextTable

__all__ = ["LaunchGroup", "AttributionReport", "attribute_roofline"]


@dataclass(frozen=True)
class LaunchGroup:
    """All traced launches of one ``(gpu, model, layer, rows)`` shape."""

    gpu: str
    model: str
    layer: str
    rows: int
    launches: int
    seconds: float
    flops: int
    ldg_bytes: int
    stg_bytes: int
    p50_s: float
    p95_s: float
    max_s: float

    @property
    def bytes_moved(self) -> int:
        return self.ldg_bytes + self.stg_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Traced FLOPs per traced global-memory byte (Eq. 3)."""
        return self.flops / self.bytes_moved if self.bytes_moved else 0.0

    @property
    def achieved_flops(self) -> float:
        """FLOP/s against the simulated clock."""
        return self.flops / self.seconds if self.seconds else 0.0

    def placed(self, roofline: Roofline) -> "dict[str, Any]":
        """This group placed on ``roofline``: bound kind, attainable
        roof at its AI, and distance-to-roof (achieved/attainable)."""
        ai = self.arithmetic_intensity
        attainable = roofline.attainable(ai)
        return {
            "gpu": self.gpu,
            "model": self.model,
            "layer": self.layer,
            "rows": self.rows,
            "launches": self.launches,
            "seconds": self.seconds,
            "flops": self.flops,
            "ldg_bytes": self.ldg_bytes,
            "stg_bytes": self.stg_bytes,
            "arithmetic_intensity": ai,
            "achieved_flops": self.achieved_flops,
            "attainable_flops": attainable,
            "bound": roofline.bound_kind(ai).value,
            "ridge_point": roofline.ridge_point,
            "distance_to_roof": roofline.efficiency(ai, self.achieved_flops),
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class AttributionReport:
    """Every launch group placed on its backend's roofline."""

    groups: "tuple[dict[str, Any], ...]"
    unattributed_launches: int
    unattributed_seconds: float
    total_seconds: float

    def to_dict(self) -> "dict[str, Any]":
        bound_seconds: "dict[str, float]" = {}
        for g in self.groups:
            bound = str(g["bound"])
            bound_seconds[bound] = bound_seconds.get(bound, 0.0) + float(
                g["seconds"]
            )
        return {
            "groups": list(self.groups),
            "total_seconds": self.total_seconds,
            "seconds_by_bound": bound_seconds,
            "unattributed": {
                "launches": self.unattributed_launches,
                "seconds": self.unattributed_seconds,
            },
        }

    def render(self, *, top: int = 12, title: str = "roofline attribution") -> str:
        """The ``trace attribute`` table, heaviest groups first."""
        if not self.groups and not self.unattributed_launches:
            return "no gpu.launch spans in trace"
        table = TextTable(
            [
                "gpu", "model", "layer", "rows", "n", "time",
                "AI", "achieved", "roof", "bound", "of roof",
            ],
            title=title,
        )
        for g in self.groups[: max(1, top)]:
            table.add_row(
                [
                    str(g["gpu"]),
                    str(g["model"]),
                    str(g["layer"]),
                    str(g["rows"]),
                    str(g["launches"]),
                    f"{float(g['seconds']) * 1e3:.3f} ms",
                    f"{float(g['arithmetic_intensity']):.2f}",
                    f"{float(g['achieved_flops']) / 1e9:.1f} GF/s",
                    f"{float(g['attainable_flops']) / 1e9:.1f} GF/s",
                    str(g["bound"]),
                    f"{float(g['distance_to_roof']) * 100:.1f}%",
                ]
            )
        lines = [table.render()]
        doc = self.to_dict()
        shares = ", ".join(
            f"{kind}: {sec * 1e3:.3f} ms"
            for kind, sec in sorted(doc["seconds_by_bound"].items())
        )
        if shares:
            lines.append(f"gpu time by bound: {shares}")
        if self.unattributed_launches:
            lines.append(
                f"unattributed: {self.unattributed_launches} launches, "
                f"{self.unattributed_seconds * 1e3:.3f} ms "
                "(failed retries or pre-instrumentation trace)"
            )
        return "\n".join(lines)


def _spans(trace: Any) -> "list[dict[str, Any]]":
    if isinstance(trace, Mapping):
        return list(trace.get("spans", []))
    if hasattr(trace, "spans"):
        return [
            {
                "name": s.name,
                "duration_s": s.duration_s,
                "attrs": s.attrs,
            }
            for s in trace.spans
        ]
    raise ObsError(
        f"expected a loaded trace dict or a Tracer, got {type(trace).__name__}"
    )


def attribute_roofline(
    trace: Any, *, locked: bool = True
) -> AttributionReport:
    """Group ``trace``'s ``gpu.launch`` spans and place each group on
    its GPU's roofline (locked clock by default, matching the paper)."""
    grouped: "dict[tuple[str, str, str, int], dict[str, Any]]" = {}
    durations: "dict[tuple[str, str, str, int], list[float]]" = {}
    unattributed = 0
    unattributed_s = 0.0
    total_s = 0.0
    for span in _spans(trace):
        if span["name"] != "gpu.launch":
            continue
        seconds = float(span["duration_s"])
        total_s += seconds
        attrs = span.get("attrs") or {}
        if attrs.get("failed") or "flops" not in attrs or "gpu" not in attrs:
            unattributed += 1
            unattributed_s += seconds
            continue
        key = (
            str(attrs["gpu"]),
            str(attrs.get("model", "?")),
            str(attrs.get("layer", "-")),
            int(attrs.get("rows", 0)),
        )
        acc = grouped.setdefault(
            key,
            {"launches": 0, "seconds": 0.0, "flops": 0,
             "ldg_bytes": 0, "stg_bytes": 0},
        )
        acc["launches"] += 1
        acc["seconds"] += seconds
        acc["flops"] += int(attrs["flops"])
        acc["ldg_bytes"] += int(attrs.get("ldg_bytes", 0))
        acc["stg_bytes"] += int(attrs.get("stg_bytes", 0))
        durations.setdefault(key, []).append(seconds)

    rooflines: "dict[str, Roofline]" = {}
    placed: "list[dict[str, Any]]" = []
    for key in sorted(grouped):
        gpu, model, layer, rows = key
        acc = grouped[key]
        if gpu not in rooflines:
            rooflines[gpu] = Roofline.for_gpu(resolve_gpu(gpu), locked=locked)
        digest = duration_digest(durations[key])
        group = LaunchGroup(
            gpu=gpu,
            model=model,
            layer=layer,
            rows=rows,
            launches=int(acc["launches"]),
            seconds=float(acc["seconds"]),
            flops=int(acc["flops"]),
            ldg_bytes=int(acc["ldg_bytes"]),
            stg_bytes=int(acc["stg_bytes"]),
            p50_s=digest["p50"],
            p95_s=digest["p95"],
            max_s=digest["max"],
        )
        placed.append(group.placed(rooflines[gpu]))
    placed.sort(key=lambda g: (-float(g["seconds"]), str(g["gpu"]),
                               str(g["model"]), str(g["layer"])))
    return AttributionReport(
        groups=tuple(placed),
        unattributed_launches=unattributed,
        unattributed_seconds=unattributed_s,
        total_seconds=total_s,
    )
