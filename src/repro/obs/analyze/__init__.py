"""Trace analytics: offline analysis of recorded traces and bench
results.

Three consumers of the raw observability formats, all deterministic
and dependency-free:

* :func:`extract_critical_paths` — per-request latency decomposition
  into queue / retry-backoff / compute / comm / paging / host buckets
  that provably sum to end-to-end latency
  (``python -m repro trace critical-path``);
* :func:`attribute_roofline` — places every traced ``gpu.launch`` on
  its GPU's roofline from the span's own FLOP/byte counts
  (``python -m repro trace attribute``);
* :func:`diff_traces` / :func:`diff_bench_files` — direction-aware
  regression detection over traces and the five BENCH JSON schemas,
  exit-code gated for CI (``trace diff`` / ``bench diff``).
"""

from repro.obs.analyze.attribution import (
    AttributionReport,
    LaunchGroup,
    attribute_roofline,
)
from repro.obs.analyze.benchdiff import (
    SCHEMA_THRESHOLDS,
    BenchDiffReport,
    diff_bench,
    diff_bench_files,
)
from repro.obs.analyze.critical_path import (
    BUCKETS,
    CriticalPathReport,
    RequestPath,
    extract_critical_paths,
)
from repro.obs.analyze.delta import MetricDelta, classify, direction_for
from repro.obs.analyze.diff import TraceDiffReport, diff_traces

__all__ = [
    "BUCKETS",
    "RequestPath",
    "CriticalPathReport",
    "extract_critical_paths",
    "LaunchGroup",
    "AttributionReport",
    "attribute_roofline",
    "MetricDelta",
    "classify",
    "direction_for",
    "TraceDiffReport",
    "diff_traces",
    "BenchDiffReport",
    "SCHEMA_THRESHOLDS",
    "diff_bench",
    "diff_bench_files",
]
