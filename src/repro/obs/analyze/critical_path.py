"""Critical-path extraction and latency decomposition.

Answers "*why* is p99 high?" from a recorded trace alone: each
completed request's end-to-end interval — bounded by its
``queue.wait`` span (admission to service start) and its
``request.complete`` event (completion time) — is decomposed into
disjoint buckets by intersecting it with the engine's span tree:

``queue``
    Waiting in an admission queue with the engine healthy.
``retry_backoff``
    Overlap with failure/recovery machinery: ``serve.batch`` /
    ``serve.step`` spans that carry ``failed=True`` (the doomed
    launch's GPU time plus the retry round-trips it forces) and
    ``reshard`` spans (post-death recovery shipping shards to the
    survivors).
``compute``
    Overlap with healthy ``gpu.launch`` spans, net of their
    communication tails.
``comm``
    Overlap with ``comm.<collective>`` spans (ring collectives of
    tensor-parallel launches).
``paging``
    Overlap with ``kv.thrash`` spans (the no-memory-model baseline's
    host-link reload of oversubscribed KV bytes).
``host``
    The remainder: per-step host overhead and engine gaps.

The buckets sum to the request's end-to-end latency by construction
(each is an intersection with one member of a disjoint partition of
the timeline), so the decomposition is assertable — and is asserted
in tier-1 against ``ServingMetrics.gpu_busy_s`` / ``comm_s``.

Works on a loaded trace (:func:`~repro.obs.export.load_trace`) or a
live :class:`~repro.obs.tracer.Tracer`.  Requires ``sample_rate=1``
recordings for complete coverage; sampled traces decompose the kept
subset.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ObsError
from repro.utils.stats import duration_digest
from repro.utils.tables import TextTable

__all__ = [
    "BUCKETS",
    "RequestPath",
    "CriticalPathReport",
    "extract_critical_paths",
]

#: Decomposition buckets, in presentation order.  Per request they sum
#: to the end-to-end latency.
BUCKETS = ("queue", "retry_backoff", "compute", "comm", "paging", "host")

#: Span names whose overlap lands in ``retry_backoff`` when the span
#: carries ``failed=True``.
_ENGINE_SPANS = ("serve.batch", "serve.step")

#: Event-name -> drop-outcome mapping (mirrors the server's ``_drop``).
_DROP_EVENTS = {
    "admission.shed": "shed",
    "request.timeout": "timed-out",
    "request.failed": "failed",
}

Interval = tuple[float, float]


def _merge(intervals: "list[Interval]") -> "list[Interval]":
    """Sorted union of possibly-overlapping intervals."""
    if not intervals:
        return []
    intervals.sort()
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            if hi > last_hi:
                merged[-1] = (last_lo, hi)
        else:
            merged.append((lo, hi))
    return merged

def _subtract(
    base: "list[Interval]", cut: "list[Interval]"
) -> "list[Interval]":
    """``base`` minus ``cut`` (both already merged and sorted)."""
    if not base or not cut:
        return base
    out: "list[Interval]" = []
    j = 0
    for lo, hi in base:
        cursor = lo
        while j < len(cut) and cut[j][1] <= cursor:
            j += 1
        k = j
        while k < len(cut) and cut[k][0] < hi:
            c_lo, c_hi = cut[k]
            if c_lo > cursor:
                out.append((cursor, c_lo))
            cursor = max(cursor, c_hi)
            if cursor >= hi:
                break
            k += 1
        if cursor < hi:
            out.append((cursor, hi))
    return out


def _overlap(lo: float, hi: float, merged: "list[Interval]",
             starts: "list[float]") -> float:
    """Total length of ``[lo, hi]``'s intersection with the merged
    interval set (``starts`` is the precomputed list of interval
    starts for bisection)."""
    if hi <= lo or not merged:
        return 0.0
    total = 0.0
    # The first interval that could intersect starts at or before lo.
    i = max(0, bisect_right(starts, lo) - 1)
    for j in range(i, len(merged)):
        s, e = merged[j]
        if s >= hi:
            break
        clip = min(e, hi) - max(s, lo)
        if clip > 0:
            total += clip
    return total


class _IntervalSet:
    """A merged interval set with its bisection index."""

    def __init__(self, intervals: "list[Interval]") -> None:
        self.merged = intervals
        self.starts = [lo for lo, _ in intervals]

    def overlap(self, lo: float, hi: float) -> float:
        return _overlap(lo, hi, self.merged, self.starts)


@dataclass(frozen=True)
class RequestPath:
    """One completed request's latency decomposition."""

    request_id: int
    model: str
    queue: str
    priority: int
    arrival_s: float
    started_s: float
    finished_s: float
    queue_s: float
    retry_backoff_s: float
    compute_s: float
    comm_s: float
    paging_s: float
    host_s: float

    @property
    def e2e_s(self) -> float:
        """End-to-end latency: admission to completion."""
        return self.finished_s - self.arrival_s

    def buckets(self) -> "dict[str, float]":
        """The decomposition as a bucket-name -> seconds mapping."""
        return {
            "queue": self.queue_s,
            "retry_backoff": self.retry_backoff_s,
            "compute": self.compute_s,
            "comm": self.comm_s,
            "paging": self.paging_s,
            "host": self.host_s,
        }

    @property
    def critical_bucket(self) -> str:
        """The dominant bucket — where this request's time went
        (ties break in :data:`BUCKETS` order)."""
        values = self.buckets()
        return max(BUCKETS, key=lambda b: (values[b], -BUCKETS.index(b)))


@dataclass(frozen=True)
class CriticalPathReport:
    """Per-request decompositions plus trace-level reconciliation
    totals (summed over *all* spans, sampled or not — these are the
    quantities tier-1 asserts against ``ServingMetrics``)."""

    requests: "tuple[RequestPath, ...]"
    gpu_total_s: float
    comm_total_s: float
    paging_total_s: float
    retry_span_s: float
    drops: "dict[str, int]"
    incomplete: int

    def aggregate(self) -> "dict[str, Any]":
        """Bucket totals/shares, per-request percentiles, and the
        dominant-bucket histogram."""
        out: "dict[str, Any]" = {
            "requests": len(self.requests),
            "incomplete": self.incomplete,
            "drops": dict(self.drops),
            "trace_totals": {
                "gpu_launch_s": self.gpu_total_s,
                "comm_s": self.comm_total_s,
                "paging_s": self.paging_total_s,
                "retry_span_s": self.retry_span_s,
            },
        }
        if not self.requests:
            return out
        e2e = [r.e2e_s for r in self.requests]
        out["e2e"] = duration_digest(e2e)
        e2e_total = sum(e2e)
        buckets: "dict[str, Any]" = {}
        dominant: "dict[str, int]" = {}
        for name in BUCKETS:
            values = [r.buckets()[name] for r in self.requests]
            total = sum(values)
            digest = duration_digest(values)
            digest["total"] = total
            digest["share"] = total / e2e_total if e2e_total else 0.0
            buckets[name] = digest
            dominant[name] = sum(
                1 for r in self.requests if r.critical_bucket == name
            )
        out["buckets"] = buckets
        out["critical_bucket_counts"] = dominant
        return out

    def to_dict(self) -> "dict[str, Any]":
        """JSON-able form: the aggregate plus per-request rows."""
        doc = self.aggregate()
        doc["per_request"] = [
            {
                "request_id": r.request_id,
                "model": r.model,
                "queue": r.queue,
                "priority": r.priority,
                "arrival_s": r.arrival_s,
                "started_s": r.started_s,
                "finished_s": r.finished_s,
                "e2e_s": r.e2e_s,
                "critical_bucket": r.critical_bucket,
                **{f"{k}_s": v for k, v in r.buckets().items()},
            }
            for r in self.requests
        ]
        return doc

    def render(self, *, title: str = "critical path") -> str:
        """The ``trace critical-path`` table."""
        agg = self.aggregate()
        lines = [
            f"requests decomposed: {agg['requests']}"
            + (f"  (+{self.incomplete} incomplete)" if self.incomplete else "")
        ]
        if self.drops:
            drops = ", ".join(
                f"{k}={v}" for k, v in sorted(self.drops.items())
            )
            lines.append(f"dropped without completing: {drops}")
        if not self.requests:
            lines.append("no completed requests in trace")
            return "\n".join(lines)
        e2e = agg["e2e"]
        lines.append(
            "e2e latency: "
            f"p50 {e2e['p50'] * 1e3:.3f} ms  "
            f"p95 {e2e['p95'] * 1e3:.3f} ms  "
            f"p99 {e2e['p99'] * 1e3:.3f} ms  "
            f"max {e2e['max'] * 1e3:.3f} ms"
        )
        table = TextTable(
            ["bucket", "total", "share", "p50", "p95", "p99", "critical"],
            title=title,
        )
        for name in BUCKETS:
            b = agg["buckets"][name]
            table.add_row(
                [
                    name,
                    f"{b['total'] * 1e3:.3f} ms",
                    f"{b['share'] * 100:.1f}%",
                    f"{b['p50'] * 1e3:.3f} ms",
                    f"{b['p95'] * 1e3:.3f} ms",
                    f"{b['p99'] * 1e3:.3f} ms",
                    str(agg["critical_bucket_counts"][name]),
                ]
            )
        lines.append(table.render())
        return "\n".join(lines)


def _normalize(
    trace: Any,
) -> "tuple[list[dict[str, Any]], list[dict[str, Any]]]":
    """Either a loaded trace dict or a live tracer -> plain span/event
    dicts with ``name``/``track``/``attrs`` and seconds timestamps."""
    if isinstance(trace, Mapping):
        spans = list(trace.get("spans", []))
        events = list(trace.get("events", []))
        return spans, events
    if hasattr(trace, "spans") and hasattr(trace, "events"):
        spans = [
            {
                "name": s.name,
                "track": s.track,
                "start_s": s.start_s,
                "duration_s": s.duration_s,
                "attrs": s.attrs,
            }
            for s in trace.spans
        ]
        events = [
            {
                "name": ev.name,
                "track": ev.track,
                "t_s": ev.t_s,
                "attrs": ev.attrs,
            }
            for ev in trace.events
        ]
        return spans, events
    raise ObsError(
        "expected a loaded trace dict or a Tracer, got "
        f"{type(trace).__name__}"
    )


def _span_interval(span: "Mapping[str, Any]") -> Interval:
    start = float(span["start_s"])
    return (start, start + float(span["duration_s"]))


def extract_critical_paths(trace: Any) -> CriticalPathReport:
    """Decompose every completed request in ``trace``.

    ``trace`` is a dict from :func:`~repro.obs.export.load_trace` or a
    live :class:`~repro.obs.tracer.Tracer`.
    """
    spans, events = _normalize(trace)

    failed_raw: "list[Interval]" = []
    launch_ok_raw: "list[Interval]" = []
    comm_raw: "list[Interval]" = []
    thrash_raw: "list[Interval]" = []
    gpu_total = comm_total = paging_total = 0.0
    waits: "dict[int, dict[str, Any]]" = {}
    for span in spans:
        name = span["name"]
        iv = _span_interval(span)
        attrs = span.get("attrs") or {}
        if name == "gpu.launch":
            gpu_total += iv[1] - iv[0]
            if not attrs.get("failed"):
                launch_ok_raw.append(iv)
        elif name.startswith("comm."):
            comm_total += iv[1] - iv[0]
            comm_raw.append(iv)
        elif name == "kv.thrash":
            paging_total += iv[1] - iv[0]
            thrash_raw.append(iv)
        elif name in _ENGINE_SPANS and attrs.get("failed"):
            failed_raw.append(iv)
        elif name == "reshard":
            failed_raw.append(iv)
        elif name == "queue.wait" and "request_id" in attrs:
            waits[int(attrs["request_id"])] = span

    failed = _merge(failed_raw)
    retry_span_s = sum(hi - lo for lo, hi in failed)
    launches = _IntervalSet(_subtract(_merge(launch_ok_raw), failed))
    comms = _IntervalSet(_subtract(_merge(comm_raw), failed))
    thrash = _IntervalSet(_subtract(_merge(thrash_raw), failed))
    failed_set = _IntervalSet(failed)

    completes: "dict[int, float]" = {}
    drops: "dict[str, int]" = {}
    for ev in events:
        name = ev["name"]
        attrs = ev.get("attrs") or {}
        if name == "request.complete" and "request_id" in attrs:
            completes[int(attrs["request_id"])] = float(ev["t_s"])
        elif name in _DROP_EVENTS:
            outcome = _DROP_EVENTS[name]
            drops[outcome] = drops.get(outcome, 0) + 1

    paths: "list[RequestPath]" = []
    for rid in sorted(set(waits) & set(completes)):
        wait_span = waits[rid]
        attrs = wait_span.get("attrs") or {}
        arrival, started = _span_interval(wait_span)
        finished = completes[rid]
        retry_wait = failed_set.overlap(arrival, started)
        retry_svc = failed_set.overlap(started, finished)
        launch_ov = launches.overlap(started, finished)
        comm_ov = comms.overlap(started, finished)
        paging = thrash.overlap(started, finished)
        paths.append(
            RequestPath(
                request_id=rid,
                model=str(attrs.get("model", "?")),
                queue=str(attrs.get("queue", "?")),
                priority=int(attrs.get("priority", 0)),
                arrival_s=arrival,
                started_s=started,
                finished_s=finished,
                queue_s=(started - arrival) - retry_wait,
                retry_backoff_s=retry_wait + retry_svc,
                compute_s=launch_ov - comm_ov,
                comm_s=comm_ov,
                paging_s=paging,
                host_s=(finished - started) - retry_svc - launch_ov - paging,
            )
        )

    incomplete = len(set(waits) ^ set(completes))
    return CriticalPathReport(
        requests=tuple(paths),
        gpu_total_s=gpu_total,
        comm_total_s=comm_total,
        paging_total_s=paging_total,
        retry_span_s=retry_span_s,
        drops=drops,
        incomplete=incomplete,
    )
