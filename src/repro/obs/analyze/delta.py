"""Direction-aware metric deltas shared by ``trace diff`` and
``bench diff``.

Every comparison reduces to the same primitive: two numbers, a
direction (is lower better, higher better, or neither?), and a noise
threshold.  The verdict vocabulary:

``no-change``
    Bit-identical values — the expected outcome for a re-run of a
    deterministic modeled benchmark at the same seed.
``noise``
    Within the relative threshold.  Modeled metrics use a tight
    default (they only move when the code changes); wall-clock kernel
    numbers get a generous one.
``improvement`` / ``regression``
    Beyond the threshold, classified by the metric's direction.
``changed``
    Beyond the threshold on a direction-neutral metric (e.g. an
    eviction count) — reported, but never gates.

Only ``regression`` affects the exit code.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NO_CHANGE",
    "NOISE",
    "IMPROVEMENT",
    "REGRESSION",
    "CHANGED",
    "MetricDelta",
    "classify",
    "direction_for",
]

NO_CHANGE = "no-change"
NOISE = "noise"
IMPROVEMENT = "improvement"
REGRESSION = "regression"
CHANGED = "changed"

#: Substrings marking a metric where bigger is better.  Checked before
#: the lower-better list so e.g. ``hit_rate`` wins over a bare ``_s``
#: suffix elsewhere in the path.
_HIGHER_BETTER = (
    "qps",
    "gflops",
    "speedup",
    "throughput",
    "goodput",
    "attainment",
    "hit_rate",
    "completed",
    "efficiency",
    "scaling",
)

#: Substrings marking a metric where smaller is better.
_LOWER_BETTER = (
    "_ms",
    "_s",
    "seconds",
    "latency",
    "wait",
    "makespan",
    "overhead",
    "thrash",
    "evict",
    "preempt",
    "shed",
    "timeout",
    "failed",
    "retries",
    "violations",
    "miss",
    "drop",
)


def direction_for(path: str) -> "bool | None":
    """``True`` if lower is better for the metric at ``path``,
    ``False`` if higher is better, ``None`` if neutral."""
    lowered = path.lower()
    for token in _HIGHER_BETTER:
        if token in lowered:
            return False
    for token in _LOWER_BETTER:
        if token in lowered:
            return True
    return None


@dataclass(frozen=True)
class MetricDelta:
    """One metric's old/new pair with its classified verdict."""

    path: str
    old: float
    new: float
    rel_change: float
    verdict: str
    lower_better: "bool | None"

    @property
    def gating(self) -> bool:
        return self.verdict == REGRESSION


def classify(
    path: str,
    old: float,
    new: float,
    *,
    threshold: float,
    lower_better: "bool | None | str" = "auto",
) -> MetricDelta:
    """Classify one old/new pair.  ``lower_better="auto"`` derives the
    direction from the metric path."""
    direction: "bool | None"
    if isinstance(lower_better, str):
        direction = direction_for(path)
    else:
        direction = lower_better
    if new == old:
        rel = 0.0
        verdict = NO_CHANGE
    else:
        rel = (new - old) / abs(old) if old else float("inf")
        if abs(rel) <= threshold:
            verdict = NOISE
        elif direction is None:
            verdict = CHANGED
        elif (rel > 0) == direction:
            verdict = REGRESSION
        else:
            verdict = IMPROVEMENT
    return MetricDelta(
        path=path,
        old=old,
        new=new,
        rel_change=rel,
        verdict=verdict,
        lower_better=direction,
    )
