"""``trace diff``: compare two recorded traces of the same workload.

The unit of comparison is the per-span-name aggregate (count, total
time, p95) from :func:`~repro.obs.summarize.summarize_spans`, plus —
when both traces contain completed requests — the end-to-end latency
digest and per-bucket totals from the critical-path decomposition.
Traces are deterministic per seed, so a re-run of the same build at
the same seed diffs to all-``no-change``; anything beyond the
threshold on a duration is a real behavior change of the engine, not
jitter.

Durations are lower-better; span counts are direction-neutral (a new
span kind is not a regression by itself) and never gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.analyze.critical_path import BUCKETS, extract_critical_paths
from repro.obs.analyze.delta import REGRESSION, MetricDelta, classify
from repro.obs.summarize import summarize_spans
from repro.utils.tables import TextTable

__all__ = ["TraceDiffReport", "diff_traces"]

#: Modeled metrics only move when the code changes; 1% separates
#: float dust from a real shift.
DEFAULT_THRESHOLD = 0.01


@dataclass(frozen=True)
class TraceDiffReport:
    """All per-metric deltas between two traces."""

    deltas: "tuple[MetricDelta, ...]"
    only_old: "tuple[str, ...]"
    only_new: "tuple[str, ...]"

    @property
    def regressions(self) -> "tuple[MetricDelta, ...]":
        return tuple(d for d in self.deltas if d.verdict == REGRESSION)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 if any duration regressed."""
        return 1 if self.regressions else 0

    def to_dict(self) -> "dict[str, Any]":
        return {
            "deltas": [
                {
                    "path": d.path,
                    "old": d.old,
                    "new": d.new,
                    "rel_change": d.rel_change,
                    "verdict": d.verdict,
                }
                for d in self.deltas
            ],
            "only_old": list(self.only_old),
            "only_new": list(self.only_new),
            "regressions": len(self.regressions),
        }

    def render(self, *, all_rows: bool = False) -> str:
        """Verdict table; quiet rows (``no-change``) are elided unless
        ``all_rows``."""
        shown = [
            d for d in self.deltas if all_rows or d.verdict != "no-change"
        ]
        lines = []
        counts: "dict[str, int]" = {}
        for d in self.deltas:
            counts[d.verdict] = counts.get(d.verdict, 0) + 1
        lines.append(
            "trace diff: "
            + ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
        )
        if self.only_old:
            lines.append("only in old: " + ", ".join(self.only_old))
        if self.only_new:
            lines.append("only in new: " + ", ".join(self.only_new))
        if shown:
            table = TextTable(
                ["metric", "old", "new", "change", "verdict"]
            )
            for d in shown:
                table.add_row(
                    [
                        d.path,
                        f"{d.old:.6g}",
                        f"{d.new:.6g}",
                        f"{d.rel_change * 100:+.2f}%",
                        d.verdict,
                    ]
                )
            lines.append(table.render())
        else:
            lines.append("no differences beyond threshold")
        return "\n".join(lines)


def _trace_metrics(trace: Any) -> "dict[str, tuple[float, bool | None]]":
    """Flatten one trace to ``path -> (value, lower_better)``."""
    out: "dict[str, tuple[float, bool | None]]" = {}
    for row in summarize_spans(_spans_of(trace)):
        name = row["name"]
        out[f"span.{name}.count"] = (float(row["count"]), None)
        out[f"span.{name}.total_s"] = (row["total_s"], True)
        out[f"span.{name}.p95_s"] = (row["p95_s"], True)
    cp = extract_critical_paths(trace)
    if cp.requests:
        agg = cp.aggregate()
        for stat, value in agg["e2e"].items():
            out[f"e2e.{stat}_s"] = (value, True)
        for bucket in BUCKETS:
            out[f"bucket.{bucket}.total_s"] = (
                agg["buckets"][bucket]["total"],
                True,
            )
        out["requests.completed"] = (float(agg["requests"]), False)
    for outcome, n in cp.drops.items():
        out[f"drops.{outcome}"] = (float(n), True)
    return out


def _spans_of(trace: Any) -> "list[Any]":
    if isinstance(trace, dict):
        return list(trace.get("spans", []))
    return list(trace.spans)


def diff_traces(
    old: Any,
    new: Any,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> TraceDiffReport:
    """Compare two traces (loaded dicts or live tracers)."""
    old_metrics = _trace_metrics(old)
    new_metrics = _trace_metrics(new)
    deltas = [
        classify(
            path,
            old_metrics[path][0],
            new_metrics[path][0],
            threshold=threshold,
            lower_better=old_metrics[path][1],
        )
        for path in sorted(set(old_metrics) & set(new_metrics))
    ]
    return TraceDiffReport(
        deltas=tuple(deltas),
        only_old=tuple(sorted(set(old_metrics) - set(new_metrics))),
        only_new=tuple(sorted(set(new_metrics) - set(old_metrics))),
    )
