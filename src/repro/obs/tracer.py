"""Span-tree tracing on the simulated clock.

The serving/distributed stack advances a *simulated* clock (modeled
GPU seconds drive latency; the wall clock is never read), so a trace
of one seeded run is fully deterministic: every span's start and end
are assertable numbers, and two runs of the same scenario export
byte-identical trace files.  That determinism is what lets tier-1
tests reconcile span totals against :class:`~repro.serve.metrics.
ServingMetrics` aggregates instead of merely eyeballing a timeline.

Two record kinds:

* :class:`Span` — an interval ``[start_s, end_s]`` on a named track
  (``engine``, ``queue``, ``device0``...), optionally parented to
  another span.  Spans form trees: children must nest inside their
  parent on the clock (:meth:`Tracer.check_invariants`).
* :class:`TraceEvent` — an instant (admission, plan-cache hit,
  selector decision) with free-form attributes.

Because the engine is a discrete-event loop rather than a call stack,
most spans are recorded *retroactively* with :meth:`Tracer.add_span`
(both endpoints known at launch accounting time).  The context-manager
:meth:`Tracer.span` covers the synchronous-nesting case (tests, host
code) using the tracer's current clock at enter/exit.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "TraceEvent", "Tracer"]

#: Sentinel for "parent is the innermost open span" in add_span.
_INHERIT = object()


@dataclass
class Span:
    """One traced interval on the simulated clock."""

    span_id: int
    name: str
    start_s: float
    end_s: "float | None" = None
    parent_id: "int | None" = None
    track: str = "engine"
    attrs: dict = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ObsError(
                f"span {self.name!r} (#{self.span_id}) is still open"
            )
        return self.end_s - self.start_s


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous trace event."""

    name: str
    t_s: float
    track: str = "engine"
    attrs: dict = field(default_factory=dict)


class Tracer:
    """Collects spans/events against a manually advanced clock.

    The clock (:attr:`now`) is *pushed* by the instrumented code —
    the serving engine calls :meth:`advance` as its discrete-event
    loop moves — and only the context-manager path reads it; spans
    recorded via :meth:`add_span` carry explicit timestamps and may
    lie anywhere at or before the current clock (the engine accounts
    for a launch after deciding it).

    ``tracer.metrics`` is the run's :class:`~repro.obs.metrics.
    MetricsRegistry`; instruments update both through the one handle
    the server threads everywhere (``InferenceServer(tracer=)``).

    Parameters
    ----------
    sink:
        Optional streaming exporter (e.g. :class:`~repro.obs.export.
        StreamingJsonlWriter`): its ``on_span`` is called the moment a
        span finishes and ``on_event`` the moment an event is
        recorded, so long runs can write trace files incrementally.
    retain:
        When ``False`` (requires a ``sink``), finished records are
        *not* kept in ``spans``/``events`` — memory stays bounded on
        long chaos runs, at the price of in-process queries
        (``find``/``total_s``/``check_invariants``) seeing only the
        spans still open.
    modeled_host_spans:
        When ``True``, instrumented *host* code (``SparseHandle.run``)
        stamps its ``backend.<name>.run`` span with the plan's modeled
        seconds instead of measured wall time, keeping the whole trace
        deterministic under seeded chaos.
    """

    def __init__(
        self,
        *,
        metrics: "MetricsRegistry | None" = None,
        sink=None,
        retain: bool = True,
        modeled_host_spans: bool = False,
    ):
        if not retain and sink is None:
            raise ObsError(
                "retain=False would silently drop every record; "
                "attach a sink"
            )
        self.now: float = 0.0
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sink = sink
        self.retain = retain
        self.modeled_host_spans = modeled_host_spans
        self._stack: list[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def advance(self, t_s: float) -> None:
        """Move the simulated clock forward (never backward)."""
        if t_s > self.now:
            self.now = t_s

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _allocate(
        self,
        name: str,
        start_s: float,
        track: str,
        parent_id: "int | None",
        attrs: dict,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            start_s=float(start_s),
            parent_id=parent_id,
            track=track,
            attrs=attrs,
        )
        self._next_id += 1
        if self.retain:
            self.spans.append(span)
        return span

    def _finished(self, span: Span) -> None:
        if self.sink is not None:
            self.sink.on_span(span)

    def begin(self, name: str, *, track: str = "engine", **attrs) -> Span:
        """Open a span at the current clock and push it on the stack;
        spans opened while it is open become its children."""
        parent = self._stack[-1].span_id if self._stack else None
        span = self._allocate(name, self.now, track, parent, attrs)
        self._stack.append(span)
        return span

    def end(self, span: "Span | None" = None) -> Span:
        """Close the innermost open span at the current clock.  An
        explicit ``span`` must *be* the innermost one — spans close in
        LIFO order or the tree would interleave."""
        if not self._stack:
            raise ObsError("end() with no open span")
        top = self._stack[-1]
        if span is not None and span is not top:
            raise ObsError(
                f"cannot end span {span.name!r} while {top.name!r} is "
                "still open (spans close innermost-first)"
            )
        self._stack.pop()
        top.end_s = max(self.now, top.start_s)
        self._finished(top)
        return top

    @contextlib.contextmanager
    def span(self, name: str, *, track: str = "engine", **attrs):
        """Context manager: open at the clock on entry, close at the
        clock on exit (advance the clock inside the block to give the
        span duration)."""
        opened = self.begin(name, track=track, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        track: str = "engine",
        parent: "Span | None | object" = _INHERIT,
        **attrs,
    ) -> Span:
        """Record a completed span with explicit endpoints (the
        engine's retroactive accounting path).  ``parent`` is a
        :class:`Span`, ``None`` for a root, or omitted to inherit the
        innermost open span."""
        if end_s < start_s:
            raise ObsError(
                f"span {name!r} ends at {end_s} before it starts at "
                f"{start_s}"
            )
        if parent is _INHERIT:
            parent_id = self._stack[-1].span_id if self._stack else None
        elif parent is None:
            parent_id = None
        else:
            parent_id = parent.span_id  # type: ignore[union-attr]
        span = self._allocate(name, start_s, track, parent_id, attrs)
        span.end_s = float(end_s)
        self._finished(span)
        self.advance(end_s)
        return span

    def event(
        self,
        name: str,
        *,
        t_s: "float | None" = None,
        track: str = "engine",
        **attrs,
    ) -> TraceEvent:
        """Record an instant event (defaults to the current clock; an
        explicit ``t_s`` may lie in the past — e.g. an admission event
        stamped at the request's arrival)."""
        ev = TraceEvent(
            name=name,
            t_s=self.now if t_s is None else float(t_s),
            track=track,
            attrs=attrs,
        )
        if self.retain:
            self.events.append(ev)
        if self.sink is not None:
            self.sink.on_event(ev)
        return ev

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All spans with this name, in recording order."""
        return [s for s in self.spans if s.name == name]

    def total_s(self, name: str) -> float:
        """Summed duration of every finished span with this name."""
        return sum(s.duration_s for s in self.find(name))

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the span tree is well-formed: every span closed,
        every ``parent_id`` resolvable (no orphans), and every child
        nested inside its parent on the simulated clock.  Raises
        :class:`~repro.errors.ObsError` on the first violation."""
        if self._stack:
            open_names = [s.name for s in self._stack]
            raise ObsError(f"spans still open: {open_names}")
        by_id = {s.span_id: s for s in self.spans}
        for span in self.spans:
            if span.end_s is None:
                raise ObsError(
                    f"span {span.name!r} (#{span.span_id}) never closed"
                )
            if span.end_s < span.start_s:
                raise ObsError(
                    f"span {span.name!r} (#{span.span_id}) ends before "
                    "it starts"
                )
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                raise ObsError(
                    f"span {span.name!r} (#{span.span_id}) is orphaned: "
                    f"parent #{span.parent_id} does not exist"
                )
            eps = 1e-12
            if (
                span.start_s < parent.start_s - eps
                or span.end_s > (parent.end_s or 0.0) + eps
            ):
                raise ObsError(
                    f"span {span.name!r} [{span.start_s}, {span.end_s}] "
                    f"escapes its parent {parent.name!r} "
                    f"[{parent.start_s}, {parent.end_s}]"
                )
