"""Span-tree tracing on the simulated clock.

The serving/distributed stack advances a *simulated* clock (modeled
GPU seconds drive latency; the wall clock is never read), so a trace
of one seeded run is fully deterministic: every span's start and end
are assertable numbers, and two runs of the same scenario export
byte-identical trace files.  That determinism is what lets tier-1
tests reconcile span totals against :class:`~repro.serve.metrics.
ServingMetrics` aggregates instead of merely eyeballing a timeline.

Two record kinds:

* :class:`Span` — an interval ``[start_s, end_s]`` on a named track
  (``engine``, ``queue``, ``device0``...), optionally parented to
  another span.  Spans form trees: children must nest inside their
  parent on the clock (:meth:`Tracer.check_invariants`).
* :class:`TraceEvent` — an instant (admission, plan-cache hit,
  selector decision) with free-form attributes.

Because the engine is a discrete-event loop rather than a call stack,
most spans are recorded *retroactively* with :meth:`Tracer.add_span`
(both endpoints known at launch accounting time).  The context-manager
:meth:`Tracer.span` covers the synchronous-nesting case (tests, host
code) using the tracer's current clock at enter/exit.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol

from repro.errors import ObsError
from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "TraceEvent", "TraceSink", "Tracer"]

#: Sentinel for "parent is the innermost open span" in add_span.
_INHERIT: Any = object()

#: Knuth's 64-bit LCG constants — the sampler's private stream, kept
#: off :mod:`numpy` so tracing never perturbs workload RNG draws.
_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


@dataclass
class Span:
    """One traced interval on the simulated clock."""

    span_id: int
    name: str
    start_s: float
    end_s: "float | None" = None
    parent_id: "int | None" = None
    track: str = "engine"
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Whether this span's *trace* (root draw under ``sample_rate``)
    #: was kept.  Unsampled spans still exist in-process so parenting
    #: and the LIFO stack work, but are never retained or exported.
    sampled: bool = True

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ObsError(
                f"span {self.name!r} (#{self.span_id}) is still open"
            )
        return self.end_s - self.start_s


@dataclass(frozen=True)
class TraceEvent:
    """One instantaneous trace event."""

    name: str
    t_s: float
    track: str = "engine"
    attrs: dict[str, Any] = field(default_factory=dict)


class TraceSink(Protocol):
    """The streaming-exporter interface ``Tracer(sink=...)`` expects
    (structural — :class:`~repro.obs.export.StreamingJsonlWriter` is
    one implementation)."""

    def on_span(self, span: Span) -> None:
        """Called the moment a sampled span finishes."""

    def on_event(self, event: TraceEvent) -> None:
        """Called the moment a sampled instant event is recorded."""


class Tracer:
    """Collects spans/events against a manually advanced clock.

    The clock (:attr:`now`) is *pushed* by the instrumented code —
    the serving engine calls :meth:`advance` as its discrete-event
    loop moves — and only the context-manager path reads it; spans
    recorded via :meth:`add_span` carry explicit timestamps and may
    lie anywhere at or before the current clock (the engine accounts
    for a launch after deciding it).

    ``tracer.metrics`` is the run's :class:`~repro.obs.metrics.
    MetricsRegistry`; instruments update both through the one handle
    the server threads everywhere (``InferenceServer(tracer=)``).

    Parameters
    ----------
    sink:
        Optional streaming exporter (e.g. :class:`~repro.obs.export.
        StreamingJsonlWriter`): its ``on_span`` is called the moment a
        span finishes and ``on_event`` the moment an event is
        recorded, so long runs can write trace files incrementally.
    retain:
        When ``False`` (requires a ``sink``), finished records are
        *not* kept in ``spans``/``events`` — memory stays bounded on
        long chaos runs, at the price of in-process queries
        (``find``/``total_s``/``check_invariants``) seeing only the
        spans still open.
    modeled_host_spans:
        When ``True``, instrumented *host* code (``SparseHandle.run``)
        stamps its ``backend.<name>.run`` span with the plan's modeled
        seconds instead of measured wall time, keeping the whole trace
        deterministic under seeded chaos.
    sample_rate:
        Fraction of *traces* kept, in ``[0, 1]``.  The decision is
        made once per root span from a private seeded LCG stream (so a
        given scenario samples the same traces on every run) and every
        descendant span inherits it — a trace is kept or dropped
        whole, never torn.  Metrics are always recorded regardless.
    sample_seed:
        Seed of the sampler's LCG stream.
    ring_capacity:
        When set, in-process retention becomes a bounded ring: only
        the most recent ``ring_capacity`` spans (and events) are kept,
        older records are dropped (counted in :attr:`dropped_spans` /
        :attr:`dropped_events`).  A streaming ``sink`` still sees
        everything — the ring only bounds *memory*.
    """

    def __init__(
        self,
        *,
        metrics: "MetricsRegistry | None" = None,
        sink: "TraceSink | None" = None,
        retain: bool = True,
        modeled_host_spans: bool = False,
        sample_rate: float = 1.0,
        sample_seed: int = 0,
        ring_capacity: "int | None" = None,
    ) -> None:
        if not retain and sink is None:
            raise ObsError(
                "retain=False would silently drop every record; "
                "attach a sink"
            )
        if not 0.0 <= sample_rate <= 1.0:
            raise ObsError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if ring_capacity is not None and ring_capacity < 1:
            raise ObsError(
                f"ring_capacity must be >= 1, got {ring_capacity}"
            )
        self.now: float = 0.0
        if ring_capacity is None:
            self.spans: list[Span] = []
            self.events: list[TraceEvent] = []
        else:
            self.spans = deque(maxlen=ring_capacity)  # type: ignore[assignment]
            self.events = deque(maxlen=ring_capacity)  # type: ignore[assignment]
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sink = sink
        self.retain = retain
        self.modeled_host_spans = modeled_host_spans
        self.sample_rate = float(sample_rate)
        self.ring_capacity = ring_capacity
        self.dropped_spans = 0
        self.dropped_events = 0
        self._sample_state = (sample_seed ^ _LCG_INC) & _LCG_MASK
        self._sample_threshold = int(self.sample_rate * float(1 << 64))
        self._stack: list[Span] = []
        self._next_id = 0
        #: Shared tombstone returned for unsampled add_span calls.
        self._unsampled = Span(
            span_id=-1, name="", start_s=0.0, end_s=0.0, sampled=False
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _draw_sampled(self) -> bool:
        """One head-sampling decision (deterministic LCG stream)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        state = (self._sample_state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        self._sample_state = state
        return state < self._sample_threshold

    def sample(self) -> bool:
        """Draw one head-sampling decision *up front*, for hot call
        sites that want to skip building span/event attributes
        entirely when the trace is dropped.  Pass the result back via
        ``keep=`` on :meth:`add_span` / :meth:`event` so the record
        does not draw a second time."""
        return self._draw_sampled()

    def _retain_span(self, span: Span) -> None:
        if self.ring_capacity is not None and len(self.spans) == self.ring_capacity:
            self.dropped_spans += 1
        self.spans.append(span)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def advance(self, t_s: float) -> None:
        """Move the simulated clock forward (never backward)."""
        if t_s > self.now:
            self.now = t_s

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _allocate(
        self,
        name: str,
        start_s: float,
        track: str,
        parent_id: "int | None",
        attrs: dict[str, Any],
        sampled: bool,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            start_s=float(start_s),
            parent_id=parent_id,
            track=track,
            attrs=attrs,
            sampled=sampled,
        )
        self._next_id += 1
        if self.retain and sampled:
            self._retain_span(span)
        return span

    def _finished(self, span: Span) -> None:
        if self.sink is not None and span.sampled:
            self.sink.on_span(span)

    def begin(self, name: str, *, track: str = "engine", **attrs: Any) -> Span:
        """Open a span at the current clock and push it on the stack;
        spans opened while it is open become its children."""
        if self._stack:
            parent = self._stack[-1].span_id
            sampled = self._stack[-1].sampled
        else:
            parent = None
            sampled = self._draw_sampled()
        span = self._allocate(name, self.now, track, parent, attrs, sampled)
        self._stack.append(span)
        return span

    def end(self, span: "Span | None" = None) -> Span:
        """Close the innermost open span at the current clock.  An
        explicit ``span`` must *be* the innermost one — spans close in
        LIFO order or the tree would interleave."""
        if not self._stack:
            raise ObsError("end() with no open span")
        top = self._stack[-1]
        if span is not None and span is not top:
            raise ObsError(
                f"cannot end span {span.name!r} while {top.name!r} is "
                "still open (spans close innermost-first)"
            )
        self._stack.pop()
        top.end_s = max(self.now, top.start_s)
        self._finished(top)
        return top

    @contextlib.contextmanager
    def span(
        self, name: str, *, track: str = "engine", **attrs: Any
    ) -> Iterator[Span]:
        """Context manager: open at the clock on entry, close at the
        clock on exit (advance the clock inside the block to give the
        span duration)."""
        opened = self.begin(name, track=track, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        track: str = "engine",
        parent: "Span | None | Any" = _INHERIT,
        keep: "bool | None" = None,
        **attrs: Any,
    ) -> Span:
        """Record a completed span with explicit endpoints (the
        engine's retroactive accounting path).  ``parent`` is a
        :class:`Span`, ``None`` for a root, or omitted to inherit the
        innermost open span.  ``keep`` injects a sampling decision the
        caller already drew via :meth:`sample` (root spans only;
        children always inherit their parent's)."""
        if end_s < start_s:
            raise ObsError(
                f"span {name!r} ends at {end_s} before it starts at "
                f"{start_s}"
            )
        if parent is _INHERIT:
            if self._stack:
                parent_id = self._stack[-1].span_id
                sampled = self._stack[-1].sampled
            else:
                parent_id = None
                sampled = self._draw_sampled() if keep is None else keep
        elif parent is None:
            parent_id = None
            sampled = self._draw_sampled() if keep is None else keep
        else:
            parent_id = parent.span_id
            sampled = parent.sampled
        if not sampled:
            # Unsampled traces skip allocation entirely — the shared
            # tombstone keeps parent chaining working (children inherit
            # its ``sampled=False``) at near-zero cost.
            self.advance(end_s)
            return self._unsampled
        span = self._allocate(name, start_s, track, parent_id, attrs, sampled)
        span.end_s = float(end_s)
        self._finished(span)
        self.advance(end_s)
        return span

    def event(
        self,
        name: str,
        *,
        t_s: "float | None" = None,
        track: str = "engine",
        keep: "bool | None" = None,
        **attrs: Any,
    ) -> "TraceEvent | None":
        """Record an instant event (defaults to the current clock; an
        explicit ``t_s`` may lie in the past — e.g. an admission event
        stamped at the request's arrival).  Returns ``None`` when the
        event falls in an unsampled trace.  ``keep`` injects a
        decision the caller drew via :meth:`sample`; an enclosing open
        span's decision still wins (events never tear a trace)."""
        if self._stack:
            sampled = self._stack[-1].sampled
        else:
            sampled = self._draw_sampled() if keep is None else keep
        if not sampled:
            return None
        ev = TraceEvent(
            name=name,
            t_s=self.now if t_s is None else float(t_s),
            track=track,
            attrs=attrs,
        )
        if self.retain:
            if (
                self.ring_capacity is not None
                and len(self.events) == self.ring_capacity
            ):
                self.dropped_events += 1
            self.events.append(ev)
        if self.sink is not None:
            self.sink.on_event(ev)
        return ev

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All spans with this name, in recording order."""
        return [s for s in self.spans if s.name == name]

    def total_s(self, name: str) -> float:
        """Summed duration of every finished span with this name."""
        return sum(s.duration_s for s in self.find(name))

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the span tree is well-formed: every span closed,
        every ``parent_id`` resolvable (no orphans), and every child
        nested inside its parent on the simulated clock.  Raises
        :class:`~repro.errors.ObsError` on the first violation.

        A wrapped ring (:attr:`dropped_spans` > 0) legitimately loses
        parents while keeping later children, so the orphan check is
        skipped then — the remaining per-span and nesting checks still
        apply."""
        if self._stack:
            open_names = [s.name for s in self._stack]
            raise ObsError(f"spans still open: {open_names}")
        wrapped = self.dropped_spans > 0
        by_id = {s.span_id: s for s in self.spans}
        for span in self.spans:
            if span.end_s is None:
                raise ObsError(
                    f"span {span.name!r} (#{span.span_id}) never closed"
                )
            if span.end_s < span.start_s:
                raise ObsError(
                    f"span {span.name!r} (#{span.span_id}) ends before "
                    "it starts"
                )
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                if wrapped:
                    continue
                raise ObsError(
                    f"span {span.name!r} (#{span.span_id}) is orphaned: "
                    f"parent #{span.parent_id} does not exist"
                )
            eps = 1e-12
            if (
                span.start_s < parent.start_s - eps
                or span.end_s > (parent.end_s or 0.0) + eps
            ):
                raise ObsError(
                    f"span {span.name!r} [{span.start_s}, {span.end_s}] "
                    f"escapes its parent {parent.name!r} "
                    f"[{parent.start_s}, {parent.end_s}]"
                )
