"""A small bounded LRU cache with hit/miss/eviction stats.

Shared by the serving runtime's plan cache
(:mod:`repro.serve.cache`) and the per-handle plan cache on
:class:`~repro.core.api.SparseHandle`, so the codebase has exactly one
bounded-cache implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

from repro.errors import ConfigurationError

__all__ = ["CacheStats", "LRUCache"]

V = TypeVar("V")


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits, misses=self.misses, evictions=self.evictions
        )

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The counter deltas accumulated after ``earlier`` was
        snapshotted (per-run stats on a long-lived cache)."""
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            evictions=self.evictions - earlier.evictions,
        )


class LRUCache:
    """A bounded LRU with stats (least-recently-*used* eviction)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"cache capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.stats = CacheStats()
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> "object | None":
        """The cached value (refreshing its recency), or None."""
        if key in self._data:
            self.stats.hits += 1
            self._data.move_to_end(key)
            return self._data[key]
        self.stats.misses += 1
        return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert/refresh a value, evicting the least recently used
        entry past capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def get_or_build(self, key: Hashable, build: Callable[[], V]) -> V:
        """Return the cached value, building (and possibly evicting) on
        a miss."""
        value = self.get(key)
        if value is None:
            value = build()
            self.put(key, value)
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        self._data.clear()
