"""Integer and scalar math helpers used throughout the library.

These are the small building blocks of the paper's formulae: ceiling
divisions for tile counts (``w = ceil(k*N/M)``, ``q = ceil(n/L)``),
power-of-two checks for blocking parameters, and bit-width sizing for
the index matrix D (``log2 M`` bits per entry, §III-B1).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = [
    "ceil_div",
    "round_up",
    "round_down",
    "is_power_of_two",
    "ilog2_ceil",
    "bits_required",
    "geomean",
    "clamp",
]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for non-negative ``a`` and positive ``b``.

    >>> ceil_div(7, 4)
    2
    >>> ceil_div(8, 4)
    2
    """
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div dividend must be non-negative, got {a}")
    return -(-a // b)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the nearest multiple of ``multiple``.

    >>> round_up(5, 4)
    8
    """
    return ceil_div(value, multiple) * multiple


def round_down(value: int, multiple: int) -> int:
    """Round ``value`` down to the nearest multiple of ``multiple``.

    >>> round_down(5, 4)
    4
    """
    if multiple <= 0:
        raise ValueError(f"multiple must be positive, got {multiple}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    return (value // multiple) * multiple


def is_power_of_two(value: int) -> bool:
    """Return True iff ``value`` is a positive power of two.

    >>> is_power_of_two(32)
    True
    >>> is_power_of_two(0)
    False
    """
    return value > 0 and (value & (value - 1)) == 0


def ilog2_ceil(value: int) -> int:
    """Return ``ceil(log2(value))`` for a positive integer.

    >>> ilog2_ceil(32)
    5
    >>> ilog2_ceil(33)
    6
    """
    if value <= 0:
        raise ValueError(f"ilog2_ceil requires a positive value, got {value}")
    return (value - 1).bit_length()


def bits_required(num_values: int) -> int:
    """Bits needed to encode ``num_values`` distinct values (at least 1).

    The index matrix D stores positions within an M-slot pruning window,
    so each entry needs ``bits_required(M)`` bits (paper §III-B1).

    >>> bits_required(4)
    2
    >>> bits_required(1)
    1
    """
    if num_values <= 0:
        raise ValueError(f"num_values must be positive, got {num_values}")
    return max(1, ilog2_ceil(num_values))


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; the paper's summary speedups
    across the 100-point dataset are geometric means.

    >>> round(geomean([1.0, 4.0]), 6)
    2.0
    """
    vals = list(values)
    if not vals:
        raise ValueError("geomean of an empty sequence is undefined")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval [low, high].

    >>> clamp(5.0, 0.0, 1.0)
    1.0
    """
    if low > high:
        raise ValueError(f"clamp bounds inverted: [{low}, {high}]")
    return max(low, min(high, value))
