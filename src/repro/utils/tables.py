"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's figures
and tables report; this module renders them as aligned ASCII tables so
``python -m repro fig9`` output is directly comparable with the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["TextTable", "format_float", "format_si"]

_SI_PREFIXES = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]


def format_float(value: float, digits: int = 3) -> str:
    """Render a float compactly: fixed-point for moderate magnitudes,
    scientific elsewhere.

    >>> format_float(1234.5678, 2)
    '1234.57'
    """
    if value != value:  # NaN
        return "nan"
    if value == 0:
        return "0"
    if abs(value) >= 1e6 or abs(value) < 10 ** (-digits):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}f}"


def format_si(value: float, unit: str = "", digits: int = 2) -> str:
    """Render a value with an SI magnitude prefix.

    >>> format_si(19.5e12, 'FLOP/s')
    '19.50 TFLOP/s'
    """
    for scale, prefix in _SI_PREFIXES:
        if abs(value) >= scale:
            return f"{value / scale:.{digits}f} {prefix}{unit}"
    return f"{value:.{digits}f} {unit}".rstrip()


class TextTable:
    """Accumulate rows and render them with aligned columns.

    >>> t = TextTable(["a", "b"])
    >>> t.add_row([1, "x"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    a | b
    --+--
    1 | x
    """

    def __init__(self, headers: Sequence[str], title: str | None = None):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        row = [v if isinstance(v, str) else format_float(v) if isinstance(v, float) else str(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_section(self, label: str) -> None:
        """Insert a full-width section separator row."""
        self.rows.append([f"== {label}"] + [""] * (len(self.headers) - 1))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths, strict=True)))
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths, strict=True)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.render()
