"""Small dependency-free helpers shared across the library."""

from repro.utils.intmath import (
    ceil_div,
    round_up,
    round_down,
    is_power_of_two,
    ilog2_ceil,
    bits_required,
    geomean,
    clamp,
)
from repro.utils.validation import (
    check_positive_int,
    check_non_negative_int,
    check_in_range,
    check_multiple_of,
    check_divides,
    check_matrix,
    check_fraction,
)
from repro.utils.arrays import (
    pad_to_multiple,
    iter_tiles,
    tile_count,
    split_into_windows,
    as_f32,
)
from repro.utils.tables import TextTable, format_float, format_si

__all__ = [
    "ceil_div",
    "round_up",
    "round_down",
    "is_power_of_two",
    "ilog2_ceil",
    "bits_required",
    "geomean",
    "clamp",
    "check_positive_int",
    "check_non_negative_int",
    "check_in_range",
    "check_multiple_of",
    "check_divides",
    "check_matrix",
    "check_fraction",
    "pad_to_multiple",
    "iter_tiles",
    "tile_count",
    "split_into_windows",
    "as_f32",
    "TextTable",
    "format_float",
    "format_si",
]
