"""Small dependency-free helpers shared across the library."""

from repro.utils.intmath import (
    bits_required,
    ceil_div,
    clamp,
    geomean,
    ilog2_ceil,
    is_power_of_two,
    round_down,
    round_up,
)
from repro.utils.validation import (
    check_divides,
    check_fraction,
    check_in_range,
    check_matrix,
    check_multiple_of,
    check_non_negative_int,
    check_positive_int,
)
from repro.utils.arrays import as_f32, iter_tiles, pad_to_multiple, split_into_windows, tile_count
from repro.utils.tables import TextTable, format_float, format_si

__all__ = [
    "ceil_div",
    "round_up",
    "round_down",
    "is_power_of_two",
    "ilog2_ceil",
    "bits_required",
    "geomean",
    "clamp",
    "check_positive_int",
    "check_non_negative_int",
    "check_in_range",
    "check_multiple_of",
    "check_divides",
    "check_matrix",
    "check_fraction",
    "pad_to_multiple",
    "iter_tiles",
    "tile_count",
    "split_into_windows",
    "as_f32",
    "TextTable",
    "format_float",
    "format_si",
]
