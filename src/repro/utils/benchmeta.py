"""Common ``meta`` header for benchmark result JSONs.

Every ``BENCH_*.json`` writer stamps the same header so downstream
tooling (``python -m repro bench diff``) can refuse nonsensical
comparisons instead of reporting them as regressions:

``schema``
    Duplicated from the document root for self-description.
``seed``
    The RNG seed the benchmark ran at (``None`` for seedless suites).
``config_fingerprint``
    A short digest of the benchmark's *configuration* — the scenario
    grid, shapes, and sweep parameters, never the measured results.
    Two result files are comparable iff their fingerprints match.
``generated_at``
    Caller-supplied timestamp string or ``None``.  Deliberately an
    argument: this library never reads the wall clock (determinism
    lint DET002) — drivers pass e.g. a CI-provided ISO timestamp.

>>> meta = bench_meta("nm-spmm/serving-bench/v2", config={"a": 1}, seed=7)
>>> sorted(meta)
['config_fingerprint', 'generated_at', 'schema', 'seed']
>>> meta["config_fingerprint"] == bench_meta(
...     "nm-spmm/serving-bench/v2", config={"a": 1}, seed=7
... )["config_fingerprint"]
True
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["bench_meta", "config_fingerprint"]


def config_fingerprint(config: Any) -> str:
    """A 16-hex-digit digest of a JSON-able configuration description.

    Canonical-JSON (sorted keys, no whitespace variance) so dict
    ordering never perturbs the fingerprint.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def bench_meta(
    schema: str,
    *,
    config: Any,
    seed: "int | None" = None,
    generated_at: "str | None" = None,
) -> "dict[str, Any]":
    """The standard benchmark ``meta`` block."""
    return {
        "schema": schema,
        "seed": seed,
        "config_fingerprint": config_fingerprint(config),
        "generated_at": generated_at,
    }
