"""Argument validation helpers.

Centralising the checks keeps kernel and simulator code free of
boilerplate and makes error messages uniform (they always name the
offending parameter).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShapeError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_in_range",
    "check_multiple_of",
    "check_divides",
    "check_matrix",
    "check_fraction",
]


def check_positive_int(name: str, value: object) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(name: str, value: object) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate ``low <= value <= high`` and return ``value`` as float."""
    value = float(value)
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` is a fraction in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_multiple_of(name: str, value: int, multiple: int) -> int:
    """Validate that ``value`` is a positive multiple of ``multiple``."""
    value = check_positive_int(name, value)
    if value % multiple != 0:
        raise ConfigurationError(f"{name} must be a multiple of {multiple}, got {value}")
    return value


def check_divides(name_a: str, a: int, name_b: str, b: int) -> None:
    """Validate that ``a`` divides ``b`` exactly."""
    if a <= 0:
        raise ConfigurationError(f"{name_a} must be positive, got {a}")
    if b % a != 0:
        raise ConfigurationError(f"{name_a}={a} must divide {name_b}={b}")


def check_matrix(name: str, array: np.ndarray, *, dtype: type | None = None) -> np.ndarray:
    """Validate that ``array`` is a 2-D ndarray (optionally of ``dtype``)."""
    if not isinstance(array, np.ndarray):
        raise ShapeError(f"{name} must be a numpy ndarray, got {type(array).__name__}")
    if array.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {array.shape}")
    if dtype is not None and array.dtype != np.dtype(dtype):
        raise ShapeError(f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}")
    return array
