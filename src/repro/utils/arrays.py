"""Array tiling and padding helpers.

The blocked kernels (paper Listings 1-4) walk matrices tile by tile;
these helpers provide the tile iteration, padding to window multiples
(§II-A: "We assume k is divisible by M and n by L; otherwise, padding
is applied"), and window splitting used by the sparsity format code.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.utils.intmath import ceil_div, round_up
from repro.utils.validation import check_matrix, check_positive_int

__all__ = ["pad_to_multiple", "iter_tiles", "tile_count", "split_into_windows", "as_f32"]


def as_f32(array: np.ndarray) -> np.ndarray:
    """Return ``array`` as a C-contiguous float32 matrix (no copy when
    already in that form)."""
    return np.ascontiguousarray(array, dtype=np.float32)


def pad_to_multiple(
    array: np.ndarray,
    row_multiple: int = 1,
    col_multiple: int = 1,
    fill: float = 0.0,
) -> np.ndarray:
    """Zero-pad a 2-D array so each dimension is a multiple of the given
    value.  Returns the input unchanged when no padding is needed.

    >>> pad_to_multiple(np.ones((3, 5), dtype=np.float32), 4, 4).shape
    (4, 8)
    """
    check_matrix("array", array)
    check_positive_int("row_multiple", row_multiple)
    check_positive_int("col_multiple", col_multiple)
    rows, cols = array.shape
    new_rows = round_up(rows, row_multiple) if rows else row_multiple
    new_cols = round_up(cols, col_multiple) if cols else col_multiple
    if new_rows == rows and new_cols == cols:
        return array
    out = np.full((new_rows, new_cols), fill, dtype=array.dtype)
    out[:rows, :cols] = array
    return out


def tile_count(extent: int, tile: int) -> int:
    """Number of tiles of size ``tile`` covering ``extent`` (last one may
    be partial)."""
    check_positive_int("tile", tile)
    return ceil_div(extent, tile) if extent > 0 else 0


def iter_tiles(extent: int, tile: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` half-open ranges tiling ``[0, extent)``.

    >>> list(iter_tiles(10, 4))
    [(0, 4), (4, 8), (8, 10)]
    """
    check_positive_int("tile", tile)
    start = 0
    while start < extent:
        stop = min(start + tile, extent)
        yield start, stop
        start = stop


def split_into_windows(array: np.ndarray, window: int, axis: int = 0) -> np.ndarray:
    """Reshape a matrix into fixed-size windows along ``axis``.

    For ``axis=0`` and a ``(k, n)`` input with ``k = g*window`` this
    returns a ``(g, window, n)`` view — the pruning-window grouping of
    matrix B in Fig. 1.
    """
    check_matrix("array", array)
    check_positive_int("window", window)
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    extent = array.shape[axis]
    if extent % window != 0:
        raise ValueError(
            f"axis {axis} extent {extent} is not divisible by window {window}; pad first"
        )
    groups = extent // window
    if axis == 0:
        return array.reshape(groups, window, array.shape[1])
    return array.reshape(array.shape[0], groups, window).transpose(1, 0, 2)
