"""Dependency-free order statistics shared across layers.

One :func:`percentile` implementation (linear interpolation, no numpy
so every consumer stays trivially deterministic) serves the serving
metrics, the trace summarizer, and the trace-analytics reports —
keeping e.g. a serving ``p99`` and a per-span ``p99`` byte-identical
for the same sample.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["percentile", "duration_digest"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with linear interpolation.

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    """
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def duration_digest(values: Sequence[float]) -> dict[str, float]:
    """The ``p50``/``p95``/``p99``/``max`` digest of a non-empty
    sample, in the sample's own unit."""
    return {
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "max": max(values),
    }
