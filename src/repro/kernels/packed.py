"""Packed-load NM-SpMM (paper Listing 3, the high-sparsity path).

Identical output to :func:`repro.kernels.blocked.nm_spmm_blocked`, but
each block first loads ``col_info`` and stages only the A columns its
pruning windows actually touch (``LoadTileByColInfo``), shrinking the
staged A footprint from ``ms*ks`` towards ``ms*ws``.  The reordered
local index tile then addresses rows of the packed A tile directly.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FP32_BYTES
from repro.errors import PlanError, ShapeError
from repro.kernels.blocked import KernelTrace
from repro.kernels.tiling import TileParams
from repro.sparsity.colinfo import ColumnInfo, preprocess_offline
from repro.sparsity.compress import NMCompressedMatrix
from repro.sparsity.packing import pack_a_tile
from repro.utils.arrays import as_f32
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_matrix

__all__ = ["nm_spmm_packed"]


def nm_spmm_packed(
    a: np.ndarray,
    compressed: NMCompressedMatrix,
    params: TileParams,
    col_info: ColumnInfo | None = None,
    *,
    trace: KernelTrace | None = None,
    rescale: bool = False,
) -> np.ndarray:
    """Execute NM-SpMM with packed A loads.

    When ``col_info`` is None the offline pre-processing
    (:func:`repro.sparsity.colinfo.preprocess_offline`) runs first,
    exactly as Listing 3's ``PreProcessing`` would before launch.
    """
    a = as_f32(check_matrix("a", a))
    pattern = compressed.pattern
    if params.ks <= 0:
        raise PlanError("TileParams.ks is unset; derive it with with_ks(...)")
    if params.ks % pattern.m != 0:
        raise PlanError(
            f"ks={params.ks} must be a multiple of M={pattern.m}"
        )
    if a.shape[1] < compressed.k:
        raise ShapeError(
            f"A has k={a.shape[1]} columns but the compressed matrix "
            f"expects k={compressed.k}"
        )
    ks = min(params.ks, compressed.k)
    ws = (ks // pattern.m) * pattern.n
    if col_info is None:
        col_info = preprocess_offline(compressed, ws, params.ns)
    if col_info.ws != ws or col_info.ns != params.ns:
        raise PlanError(
            f"col_info was preprocessed for (ws={col_info.ws}, "
            f"ns={col_info.ns}) but the plan needs (ws={ws}, ns={params.ns})"
        )

    m_rows = a.shape[0]
    w, n = compressed.w, compressed.n
    ell = pattern.vector_length
    out = np.empty((m_rows, n), dtype=np.float32)

    num_bi = ceil_div(m_rows, params.ms)
    num_bj = ceil_div(n, params.ns)
    if trace is not None:
        trace.blocks += num_bi * num_bj

    for bi_idx in range(num_bi):
        bi = bi_idx * params.ms
        bi_end = min(bi + params.ms, m_rows)
        for bj_idx in range(num_bj):
            bj = bj_idx * params.ns
            bj_end = min(bj + params.ns, n)
            c_tile = np.zeros((bi_end - bi, bj_end - bj), dtype=np.float32)
            for kb, u0 in enumerate(range(0, w, ws)):
                u1 = min(u0 + ws, w)
                k0 = (u0 // pattern.n) * pattern.m
                k1 = min(k0 + ks, compressed.k)
                cols = col_info.cols[kb][bj_idx]
                local = col_info.local_d[kb][bj_idx]
                # Packed load: gather only the needed A columns
                # (LoadTileByColInfo).
                a_tile = pack_a_tile(a[bi:bi_end, k0:k1], cols)
                b_tile = compressed.values[u0:u1, bj:bj_end]
                if trace is not None:
                    trace.main_loop_iterations += 1
                    trace.ldg_colinfo_bytes += cols.size * cols.dtype.itemsize
                    trace.ldg_a_bytes += a_tile.size * FP32_BYTES
                    trace.ldg_b_bytes += b_tile.size * FP32_BYTES
                    trace.ldg_d_bytes += local.size * 1  # packed uint8-ish
                    trace.sts_bytes += (a_tile.size + b_tile.size) * FP32_BYTES
                    trace.packed_widths.append(int(cols.size))
                # SMBlock over the packed tile: local indices address
                # packed columns directly, no window arithmetic needed.
                for jq in range(local.shape[1]):
                    j0 = jq * ell
                    j1 = min(j0 + ell, b_tile.shape[1])
                    if j0 >= b_tile.shape[1]:
                        break
                    ar = a_tile[:, local[: u1 - u0, jq]]
                    c_tile[:, j0:j1] += ar @ b_tile[:, j0:j1]
                if trace is not None:
                    ws_b = u1 - u0
                    trace.fma_ops += (bi_end - bi) * (bj_end - bj) * ws_b
                    trace.lds_bytes += ws_b * (
                        (bi_end - bi) + (bj_end - bj)
                    ) * FP32_BYTES
            out[bi:bi_end, bj:bj_end] = c_tile
            if trace is not None:
                trace.stg_bytes += c_tile.size * FP32_BYTES
    if rescale:
        out *= np.float32(pattern.m / pattern.n)
    return out
