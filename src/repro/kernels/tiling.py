"""Hierarchical blocking parameters (paper §III-B, Table I, Eq. 4/5).

``TileParams`` carries the full parameter set of Fig. 3:

* shared-memory block sizes ``ms, ns, ks`` (and derived ``ws, qs``);
* warp-level tile ``mr, nr``;
* thread-level tile ``mt, nt``.

``ks`` is not free: Eq. 4 bounds the shared-memory footprint
``4*(ks*ms + ws*ns + ws*qs) <= SM_Size * 0.5`` which, ignoring the
small D tile (Eq. 5), gives ``8*ks*(ms + N*ns/M) <= SM_Size`` and hence
the closed form used in Listing 1 line 4::

    ks = min(k, M * SM_Size / (8 * (N*ms + N*ns)))      -- paper's text
       = min(k, SM_Size * M / (8 * (M*ms + N*ns)))      -- Eq. 5 exact

The paper's Listing 1 denominator ``8*(N*ms + N*ns)`` charges As at
the *packed* width (``N/M`` of the tile), so it admits a larger ``ks``
than Eq. 5, which charges the full unpacked tile; we implement the
Eq. 5 form as the safe default and provide the listing form for the
packed path and for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.constants import (
    SMEM_USABLE_FRACTION,
    THREAD_TILE_REGISTER_BUDGET,
    WARP_SIZE,
)
from repro.errors import ConfigurationError
from repro.sparsity.config import NMPattern
from repro.utils.intmath import ceil_div, round_down
from repro.utils.validation import check_positive_int

__all__ = [
    "TileParams",
    "MatrixSizeClass",
    "TABLE_I",
    "classify_matrix",
    "params_for",
    "max_ks_eq5",
    "max_ks_listing1",
    "cmar",
]


class MatrixSizeClass(str, Enum):
    """The small/medium/large classification of Table I / Table II."""

    SMALL = "small"
    MEDIUM = "medium"
    LARGE = "large"


def classify_matrix(m: int, n: int, k: int) -> MatrixSizeClass:
    """Classify a problem into Table I's size classes.

    The paper keys its recommendation on the output-tile volume: the
    Table II exemplars put 512x512..512x1024 outputs in *small*,
    512x2048..1024x2048 in *medium* and 2048x4096 up in *large*.  We
    use the geometric mean of the output dimensions, which reproduces
    that assignment exactly (see tests against Table II).
    """
    check_positive_int("m", m)
    check_positive_int("n", n)
    check_positive_int("k", k)
    output_scale = (m * n) ** 0.5
    if output_scale <= 768:
        return MatrixSizeClass.SMALL
    if output_scale <= 1536:
        return MatrixSizeClass.MEDIUM
    return MatrixSizeClass.LARGE


def cmar(mt: int, nt: int, lds_width_floats: int = 4) -> float:
    """Computing-to-memory-access ratio of the thread inner kernel,
    Eq. 6: ``CMAR = (1/alpha) * mt*nt / (mt + nt)`` with
    ``alpha = 4 / lds_width_floats`` (alpha=4 for LDS.32, 2 for LDS.64,
    1 for LDS.128)."""
    check_positive_int("mt", mt)
    check_positive_int("nt", nt)
    if lds_width_floats not in (1, 2, 4):
        raise ConfigurationError(
            f"lds_width_floats must be 1, 2 or 4, got {lds_width_floats}"
        )
    alpha = 4 // lds_width_floats
    return (mt * nt) / (alpha * (mt + nt))


@dataclass(frozen=True, slots=True)
class TileParams:
    """Blocking parameters of the hierarchical mechanism (Fig. 3).

    ``ks`` may be 0 to mean "derive from the shared-memory budget via
    Eq. 5 when the pattern and GPU are known" (see :meth:`with_ks`).
    """

    ms: int
    ns: int
    mr: int
    nr: int
    mt: int
    nt: int
    ks: int = 0

    def __post_init__(self) -> None:
        for name in ("ms", "ns", "mr", "nr", "mt", "nt"):
            check_positive_int(name, getattr(self, name))
        if self.ks < 0:
            raise ConfigurationError(f"ks must be non-negative, got {self.ks}")
        # §III-B1: "To avoid bank conflict in shared memory access, ms
        # and ns are set as multiples of 32."
        if self.ms % WARP_SIZE != 0 or self.ns % WARP_SIZE != 0:
            raise ConfigurationError(
                f"ms={self.ms} and ns={self.ns} must be multiples of "
                f"{WARP_SIZE} to avoid bank conflicts"
            )
        if self.ms % self.mr != 0 or self.ns % self.nr != 0:
            raise ConfigurationError(
                f"warp tile ({self.mr}x{self.nr}) must divide the block "
                f"tile ({self.ms}x{self.ns})"
            )
        if self.mr % self.mt != 0 or self.nr % self.nt != 0:
            raise ConfigurationError(
                f"thread tile ({self.mt}x{self.nt}) must divide the warp "
                f"tile ({self.mr}x{self.nr})"
            )
        # §III-B2 register constraint: mt + nt + mt*nt <= 255.
        if self.mt + self.nt + self.mt * self.nt > THREAD_TILE_REGISTER_BUDGET:
            raise ConfigurationError(
                f"thread tile {self.mt}x{self.nt} exceeds the register "
                f"budget (mt + nt + mt*nt <= {THREAD_TILE_REGISTER_BUDGET})"
            )
        threads = self.threads_per_block
        if threads % WARP_SIZE != 0:
            raise ConfigurationError(
                f"block must hold whole warps, got {threads} threads"
            )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def threads_per_warp_grid(self) -> tuple[int, int]:
        """Thread arrangement inside a warp, ``(rows, cols)`` — the
        ``x*y`` grid of §III-B2 (e.g. 4x8)."""
        rows = self.mr // self.mt
        cols = self.nr // self.nt
        return rows, cols

    @property
    def warps_per_block(self) -> int:
        """Warps per thread block, from the warp-tile grid."""
        return (self.ms // self.mr) * (self.ns // self.nr)

    @property
    def threads_per_block(self) -> int:
        rows, cols = self.threads_per_warp_grid
        if rows * cols != WARP_SIZE:
            raise ConfigurationError(
                f"warp grid {rows}x{cols} must contain exactly "
                f"{WARP_SIZE} threads (mr/mt * nr/nt == 32)"
            )
        return self.warps_per_block * WARP_SIZE

    @property
    def accumulator_registers(self) -> int:
        """Registers per thread spent on the Ct accumulator plus the
        At/Bt fragments (the dominant term of §III-B2)."""
        return self.mt * self.nt + self.mt + self.nt

    def cmar(self, lds_width_floats: int = 4) -> float:
        """Inner-kernel CMAR for this thread tile (Eq. 6)."""
        return cmar(self.mt, self.nt, lds_width_floats)

    # ------------------------------------------------------------------
    # ks derivation (Eq. 4 / Eq. 5)
    # ------------------------------------------------------------------
    def with_ks(self, pattern: NMPattern, smem_bytes: int, k: int) -> "TileParams":
        """Return a copy with ``ks`` fixed to the Eq. 5 maximum for the
        given pattern, shared-memory size, and problem ``k``."""
        ks = max_ks_eq5(pattern, self.ms, self.ns, smem_bytes, k)
        return replace(self, ks=ks)

    def ws(self, pattern: NMPattern) -> int:
        """Compressed block depth ``ws = ks*N/M`` (requires ks set)."""
        self._require_ks()
        return (self.ks // pattern.m) * pattern.n

    def qs(self, pattern: NMPattern) -> int:
        """Pruning windows per block row, ``qs = ns/L``."""
        return ceil_div(self.ns, pattern.vector_length)

    def smem_bytes_used(self, pattern: NMPattern, packed: bool = False) -> int:
        """Shared-memory footprint of one buffer set per Eq. 4:
        ``4*(ks*ms + ws*ns + ws*qs)`` (As charged at packed width when
        ``packed``)."""
        self._require_ks()
        ws = self.ws(pattern)
        qs = self.qs(pattern)
        a_cols = ws if packed else self.ks
        return 4 * (a_cols * self.ms + ws * self.ns + ws * qs)

    def _require_ks(self) -> None:
        if self.ks <= 0:
            raise ConfigurationError(
                "ks is unset; call with_ks(pattern, smem_bytes, k) first"
            )

    def label(self) -> str:
        return (
            f"ms{self.ms}ns{self.ns}ks{self.ks or '?'}"
            f"_warp{self.mr}x{self.nr}_thread{self.mt}x{self.nt}"
        )


def max_ks_eq5(
    pattern: NMPattern, ms: int, ns: int, smem_bytes: int, k: int
) -> int:
    """Largest ``ks`` satisfying Eq. 5's budget
    ``8*ks*(ms + ns*N/M) <= SM_Size``, rounded down to a multiple of M
    and clamped to ``k`` (padded to M).

    The factor 8 is ``4 bytes / SMEM_USABLE_FRACTION``: half the shared
    memory is reserved for double buffering and temporaries.
    """
    check_positive_int("smem_bytes", smem_bytes)
    budget = smem_bytes * SMEM_USABLE_FRACTION
    denom = 4.0 * (ms + ns * pattern.density)
    ks = int(budget / denom)
    ks = round_down(max(ks, pattern.m), pattern.m)
    k_padded = pattern.padded_k(k)
    return max(pattern.m, min(ks, k_padded))


def max_ks_listing1(
    pattern: NMPattern, ms: int, ns: int, smem_bytes: int, k: int
) -> int:
    """The Listing 1 line 4 variant
    ``ks = min(k, M*SM_Size / (8*(N*ms + N*ns)))`` — larger than Eq. 5
    because it charges As at the packed (``N/M``) width on both terms,
    which is only safe on the packing path; kept for fidelity
    comparisons."""
    denom = 8.0 * (pattern.n * ms + pattern.n * ns)
    ks = int(pattern.m * smem_bytes / denom)
    ks = round_down(max(ks, pattern.m), pattern.m)
    return max(pattern.m, min(ks, pattern.padded_k(k)))


#: Table I — recommended parameter configurations.
TABLE_I: dict[MatrixSizeClass, TileParams] = {
    MatrixSizeClass.SMALL: TileParams(ms=32, ns=32, mr=16, nr=32, mt=4, nt=4),
    MatrixSizeClass.MEDIUM: TileParams(ms=32, ns=64, mr=32, nr=32, mt=8, nt=4),
    MatrixSizeClass.LARGE: TileParams(ms=64, ns=128, mr=64, nr=32, mt=8, nt=8),
}


def params_for(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern | None = None,
    smem_bytes: int | None = None,
    size_class: MatrixSizeClass | None = None,
) -> TileParams:
    """Pick Table I parameters for a problem, optionally deriving ``ks``
    when ``pattern`` and ``smem_bytes`` are given (Listing 1 lines 3-5).
    """
    cls = size_class or classify_matrix(m, n, k)
    params = TABLE_I[cls]
    if pattern is not None and smem_bytes is not None:
        params = params.with_ks(pattern, smem_bytes, k)
    return params
