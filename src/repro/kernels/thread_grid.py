"""Warp/thread-to-tile mapping (paper Listing 2 ``ThreadIndexing``).

A thread block computes a ``ms x ns`` tile of C.  Warps tile it in a
``(ms/mr) x (ns/nr)`` grid; the 32 lanes of each warp tile the warp's
``mr x nr`` region in an ``(mr/mt) x (nr/nt)`` grid of ``mt x nt``
thread tiles.  Listing 2 shows the 4x8 arrangement; this module
generalises it to any grid whose row*col product is 32 and provides the
address enumeration the bank-conflict simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import WARP_SIZE
from repro.errors import ConfigurationError
from repro.kernels.tiling import TileParams

__all__ = ["ThreadGrid", "thread_offsets"]


@dataclass(frozen=True)
class ThreadGrid:
    """Enumeration of the block's warp and lane geometry."""

    params: TileParams

    @property
    def warp_grid(self) -> tuple[int, int]:
        """Warps per block as ``(rows, cols)``."""
        p = self.params
        return p.ms // p.mr, p.ns // p.nr

    @property
    def lane_grid(self) -> tuple[int, int]:
        """Lanes per warp as ``(rows, cols)`` — e.g. 4x8."""
        p = self.params
        return p.mr // p.mt, p.nr // p.nt

    @property
    def num_warps(self) -> int:
        rows, cols = self.warp_grid
        return rows * cols

    @property
    def num_threads(self) -> int:
        return self.num_warps * WARP_SIZE

    def thread_tile_origin(self, warp_id: int, lane_id: int) -> tuple[int, int]:
        """Return ``(ti, tj)`` — the block-relative origin of the
        ``mt x nt`` tile owned by ``(warp_id, lane_id)``.

        This is Listing 2's ``ThreadIndexing`` generalised: the 4x8
        example there corresponds to ``lane_grid == (4, 8)`` and a 2x2
        warp grid.
        """
        p = self.params
        wrows, wcols = self.warp_grid
        lrows, lcols = self.lane_grid
        if not (0 <= warp_id < self.num_warps):
            raise ConfigurationError(
                f"warp_id {warp_id} out of range [0, {self.num_warps})"
            )
        if not (0 <= lane_id < WARP_SIZE):
            raise ConfigurationError(f"lane_id {lane_id} out of range [0, 32)")
        warp_row, warp_col = divmod(warp_id, wcols)
        lane_row, lane_col = divmod(lane_id, lcols)
        ti = warp_row * p.mr + lane_row * p.mt
        tj = warp_col * p.nr + lane_col * p.nt
        return ti, tj

    def all_origins(self) -> np.ndarray:
        """``(num_threads, 2)`` array of (ti, tj) per linear thread id."""
        out = np.empty((self.num_threads, 2), dtype=np.int64)
        for tid in range(self.num_threads):
            warp_id, lane_id = divmod(tid, WARP_SIZE)
            out[tid] = self.thread_tile_origin(warp_id, lane_id)
        return out

    def ownership_map(self) -> np.ndarray:
        """``(ms, ns)`` map of which thread owns each C element; every
        element must be owned by exactly one thread (validated in
        tests)."""
        p = self.params
        owner = np.full((p.ms, p.ns), -1, dtype=np.int64)
        for tid, (ti, tj) in enumerate(self.all_origins()):
            owner[ti : ti + p.mt, tj : tj + p.nt] = tid
        return owner

    def warp_row_addresses(self, p_step: int) -> list[np.ndarray]:
        """Shared-memory *word* addresses each warp reads from Bs for
        one inner-kernel step ``p_step`` (row ``p`` of Bs, Listing 2
        line 11).  Returned per warp as the 32 lanes' first-word
        addresses; consumed by the bank-conflict simulator."""
        p = self.params
        per_warp: list[np.ndarray] = []
        for warp_id in range(self.num_warps):
            addrs = np.empty(WARP_SIZE, dtype=np.int64)
            for lane_id in range(WARP_SIZE):
                _, tj = self.thread_tile_origin(warp_id, lane_id)
                addrs[lane_id] = p_step * p.ns + tj
            per_warp.append(addrs)
        return per_warp

    def warp_col_addresses(self, p_step: int, ms_leading: int | None = None) -> list[np.ndarray]:
        """Shared-memory word addresses each warp reads from As (stored
        transposed as ``As[ks][ms]``, Listing 2 signature) for inner
        step ``p_step``: lane reads ``As[p][ti..ti+mt)``."""
        p = self.params
        lead = p.ms if ms_leading is None else ms_leading
        per_warp: list[np.ndarray] = []
        for warp_id in range(self.num_warps):
            addrs = np.empty(WARP_SIZE, dtype=np.int64)
            for lane_id in range(WARP_SIZE):
                ti, _ = self.thread_tile_origin(warp_id, lane_id)
                addrs[lane_id] = p_step * lead + ti
            per_warp.append(addrs)
        return per_warp


def thread_offsets(params: TileParams) -> np.ndarray:
    """Convenience wrapper: ``(num_threads, 2)`` (ti, tj) origins."""
    return ThreadGrid(params).all_origins()
