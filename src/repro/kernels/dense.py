"""Dense GEMM — the functional stand-in for cuBLAS.

The paper uses cuBLAS SGEMM as the dense baseline; here the functional
baseline is NumPy's BLAS-backed ``@``.  The performance baseline lives
in :mod:`repro.model.baselines.cublas`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["dense_gemm", "gemm_flops"]


def gemm_flops(m: int, n: int, k: int) -> int:
    """Multiply-accumulate FLOP count of an ``m x k`` by ``k x n``
    product: ``2*m*n*k`` (each MAC is two FLOPs, matching the paper's
    ``2*ms*ns*ws`` block workload)."""
    return 2 * m * n * k


def dense_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``C = A @ B`` in float32 with the same validation the sparse
    kernels apply."""
    a = as_f32(check_matrix("a", a))
    b = as_f32(check_matrix("b", b))
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
    return a @ b
