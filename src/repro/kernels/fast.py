"""Fast gather-GEMM NM-SpMM (the batched online execution path).

Where :func:`repro.kernels.functional.nm_spmm_functional` re-derives
the gather rows from ``D`` and loops over column windows in Python,
this kernel consumes a precomputed
:class:`~repro.sparsity.gather.GatherLayout` and evaluates **all**
windows with one batched ``matmul``: gather ``A`` into ``(q, m, w)``
blocks, multiply against the layout's ``(q, w, L)`` value blocks, and
interleave the ``(q, m, L)`` results back into ``(m, n)``.  This is the
§III-B2 observation applied end to end — after the offline layout
conversion the whole product is dense-GEMM-shaped work that BLAS can
execute at full rate, which is why ``execute(backend="fast")`` is the
library's default numerics path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparsity.compress import NMCompressedMatrix
from repro.sparsity.gather import GatherLayout, build_gather_layout
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["nm_spmm_fast", "GATHER_BUFFER_ELEMENTS"]

#: Bound on the gathered-operand buffer, in float32 elements (64 MiB).
#: Every column window gathers its own (w, m) view of A, so an
#: unchunked gather grows as q * w * m — orders of magnitude beyond the
#: inputs for many-window (small-L, large-n) problems.  Windows are
#: processed in groups that keep the buffer under this bound; one
#: window is the floor, so correctness never depends on the limit.
GATHER_BUFFER_ELEMENTS = 1 << 24


def nm_spmm_fast(
    a: np.ndarray,
    layout: "GatherLayout | NMCompressedMatrix",
    *,
    rescale: bool = False,
) -> np.ndarray:
    """Compute ``C = A (*) (B', D)`` from a precomputed gather layout.

    Parameters
    ----------
    a:
        Dense ``(m, k)`` input with exactly the layout's (padded) k.
    layout:
        A :class:`GatherLayout`, or an :class:`NMCompressedMatrix` to
        convert on the fly (hot paths should build the layout once via
        :func:`~repro.sparsity.gather.build_gather_layout` and reuse
        it — conversion costs more than one call saves).
    rescale:
        Apply Eq. 1's ``M/N`` mean-preserving prefactor.

    Numerically equivalent to :func:`nm_spmm_reference` up to float32
    summation order (each output entry sums the same ``w`` products).
    """
    if isinstance(layout, NMCompressedMatrix):
        layout = build_gather_layout(layout)
    a = as_f32(check_matrix("a", a))
    m_rows, k = a.shape
    if k != layout.k:
        raise ShapeError(
            f"A has k={k} columns but the gather layout expects "
            f"k={layout.k}"
        )
    pattern = layout.pattern
    ell = pattern.vector_length
    q, w = layout.q, layout.w
    # Gather from A^T so every gathered element pulls a contiguous
    # m-row instead of a strided column — one fancy-index per window
    # group builds the windows' Ar^T as a contiguous (cq, w, m) block.
    # matmul broadcasts over the leading window axis (Ar^T is consumed
    # transposed, which BLAS handles without a copy), so the per-window
    # GEMMs of a group run in a single batched call.
    at = np.ascontiguousarray(a.T)
    chunk_q = max(1, min(q, GATHER_BUFFER_ELEMENTS // max(1, w * m_rows)))
    out = np.empty((m_rows, q * ell), dtype=np.float32)
    out3 = out.reshape(m_rows, q, ell)
    for j0 in range(0, q, chunk_q):
        j1 = min(j0 + chunk_q, q)
        ar_t = at[layout.rows[j0:j1].reshape(-1)]
        prod = np.matmul(
            ar_t.reshape(j1 - j0, w, m_rows).transpose(0, 2, 1),
            layout.values[j0:j1],
        )  # (cq, m, L)
        out3[:, j0:j1] = prod.transpose(1, 0, 2)
    if rescale:
        out *= np.float32(pattern.m / pattern.n)
    return out
