"""Analytic :class:`KernelTrace` construction from an execution plan.

The structural executors (:func:`~repro.kernels.blocked.nm_spmm_blocked`,
:func:`~repro.kernels.packed.nm_spmm_packed`) record their memory and
compute events while actually walking the tiles.  Every one of those
counts is a pure function of the launch geometry — the problem shape,
the blocking parameters and (for the packing strategy) the offline
``col_info`` — so it can be produced in closed form without touching a
single matrix element.  That is what decouples tracing from execution:
``execute(..., backend="fast", trace=...)`` runs the batched gather-GEMM
kernel for the numerics and fills the trace analytically, instead of
being forced onto the slow structural path.

The equality ``analytic_trace(plan) == recorded trace`` is asserted in
tests for both strategies across ragged tile edges; the structural
executors remain the ground truth that keeps this module honest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.constants import FP32_BYTES
from repro.errors import PlanError
from repro.kernels.blocked import KernelTrace
from repro.sparsity.index_matrix import index_dtype_for
from repro.utils.intmath import ceil_div

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.plan import ExecutionPlan
    from repro.sparsity.colinfo import ColumnInfo

__all__ = ["analytic_trace"]


def _tile_sizes(extent: int, tile: int) -> list[int]:
    """Sizes of the tiles covering ``[0, extent)`` (last may be partial)."""
    return [min(tile, extent - start) for start in range(0, extent, tile)]


def analytic_trace(
    plan: "ExecutionPlan",
    *,
    col_info: "ColumnInfo | None" = None,
    index_itemsize: "int | None" = None,
) -> KernelTrace:
    """The :class:`KernelTrace` the plan's structural executor would
    record, computed from the launch geometry alone.

    Parameters
    ----------
    plan:
        The resolved :class:`~repro.core.plan.ExecutionPlan`.
    col_info:
        Required when ``plan.uses_packing``: the packed loads' byte
        counts depend on the per-tile packed widths, which only the
        offline pre-processing knows.
    index_itemsize:
        Stored byte width of the index matrix ``D``; defaults to the
        narrowest dtype for the pattern (what :func:`compress` emits).
    """
    pattern = plan.pattern
    m, n, k = plan.shape.m, plan.shape.n, plan.shape.k
    params = plan.params
    ell = pattern.vector_length
    w = pattern.compressed_rows(k)
    ks = min(params.ks, k)
    ws = (ks // pattern.m) * pattern.n
    if index_itemsize is None:
        index_itemsize = np.dtype(index_dtype_for(pattern.m)).itemsize

    m_tiles = _tile_sizes(m, params.ms)
    n_tiles = _tile_sizes(n, params.ns)
    w_tiles = _tile_sizes(w, ws)
    num_bi, num_bj, num_kb = len(m_tiles), len(n_tiles), len(w_tiles)

    trace = KernelTrace()
    trace.blocks = num_bi * num_bj
    trace.main_loop_iterations = trace.blocks * num_kb
    # Every strategy computes the same useful work and writes the same
    # result tile exactly once.
    trace.fma_ops = m * n * w
    trace.stg_bytes = m * n * FP32_BYTES
    # Ls2r aggregate: each (bi, bj, kb) visit streams ws_b*(mi + nj)
    # words; the ws_b sum telescopes to w per (bi, bj) pair.
    trace.lds_bytes = w * (num_bj * m + num_bi * n) * FP32_BYTES

    if plan.uses_packing:
        if col_info is None:
            raise PlanError(
                "analytic_trace for a packing plan needs the col_info the "
                "packed kernel would load"
            )
        if col_info.ws != ws or col_info.ns != params.ns:
            raise PlanError(
                f"col_info was preprocessed for (ws={col_info.ws}, "
                f"ns={col_info.ns}) but the plan needs "
                f"(ws={ws}, ns={params.ns})"
            )
        for mi in m_tiles:
            for jb in range(num_bj):
                for kb, ws_b in enumerate(w_tiles):
                    cols = col_info.cols[kb][jb]
                    local = col_info.local_d[kb][jb]
                    trace.ldg_colinfo_bytes += cols.size * cols.dtype.itemsize
                    trace.ldg_a_bytes += mi * cols.size * FP32_BYTES
                    trace.ldg_b_bytes += ws_b * n_tiles[jb] * FP32_BYTES
                    trace.ldg_d_bytes += local.size  # packed uint8-ish
                    trace.sts_bytes += (
                        mi * cols.size + ws_b * n_tiles[jb]
                    ) * FP32_BYTES
                    trace.packed_widths.append(int(cols.size))
        return trace

    # Non-packing strategy: tile footprints are shape-only.  The k-block
    # A slices partition [0, k), so their widths sum to k; the D tile
    # spans the windows its n-tile overlaps.
    q_spans = [
        ceil_div(j0 + nj, ell) - j0 // ell
        for j0, nj in zip(range(0, n, params.ns), n_tiles, strict=True)
    ]
    trace.ldg_a_bytes = m * num_bj * k * FP32_BYTES
    trace.ldg_b_bytes = num_bi * w * n * FP32_BYTES
    trace.ldg_d_bytes = num_bi * w * sum(q_spans) * index_itemsize
    trace.sts_bytes = (
        trace.ldg_a_bytes + trace.ldg_b_bytes + trace.ldg_d_bytes
    )
    return trace
