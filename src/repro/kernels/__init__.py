"""Functional (numerically exact) kernels.

Five implementations of the same contract, in increasing structural
fidelity to the paper's CUDA kernels:

* :func:`nm_spmm_reference` — direct Eq. 1 evaluation (gold standard);
* :func:`nm_spmm_fast` — batched gather-GEMM over a precomputed
  :class:`~repro.sparsity.gather.GatherLayout` (the default online
  path of ``execute()``/serving);
* :func:`nm_spmm_functional` — vectorized per-window gather + GEMM;
* :func:`nm_spmm_blocked` — hierarchical blocking of Listings 1/2;
* :func:`nm_spmm_packed` — packed loads of Listing 3 (high sparsity).

All five agree to float32 rounding with ``A @ decompress(B)``; the
blocked and packed versions additionally record the memory/instruction
events the performance model reasons about, and
:func:`analytic_trace` reproduces those recorded counts in closed form
from an execution plan so tracing no longer requires running the
structural executors.
"""

from repro.kernels.reference import nm_spmm_reference
from repro.kernels.dense import dense_gemm, gemm_flops
from repro.kernels.functional import nm_spmm_functional
from repro.kernels.fast import nm_spmm_fast
from repro.kernels.blocked import KernelTrace, nm_spmm_blocked
from repro.kernels.packed import nm_spmm_packed
from repro.kernels.analytic import analytic_trace
from repro.kernels.tiling import (
    TABLE_I,
    MatrixSizeClass,
    TileParams,
    classify_matrix,
    cmar,
    max_ks_eq5,
    max_ks_listing1,
    params_for,
)
from repro.kernels.thread_grid import ThreadGrid, thread_offsets
from repro.kernels.autotune import AutotuneResult, autotune

__all__ = [
    "nm_spmm_reference",
    "dense_gemm",
    "gemm_flops",
    "nm_spmm_functional",
    "nm_spmm_fast",
    "nm_spmm_blocked",
    "nm_spmm_packed",
    "KernelTrace",
    "analytic_trace",
    "TileParams",
    "MatrixSizeClass",
    "TABLE_I",
    "classify_matrix",
    "params_for",
    "max_ks_eq5",
    "max_ks_listing1",
    "cmar",
    "ThreadGrid",
    "thread_offsets",
    "autotune",
    "AutotuneResult",
]
