"""Gold-standard reference kernel — a direct transcription of Eq. 1.

    C'[i][j] = scale * sum_u A[i][ (u//N)*M + D[u][j//L] ] * B'[u][j]

The loops are kept explicit (over compressed rows and column windows)
so the implementation is auditable against the equation; every other
kernel in the library is tested for bitwise-comparable agreement with
this one.  ``scale`` is 1 by default; Eq. 1's literal ``M/N`` prefactor
(a mean-preserving rescale some pruning recipes apply) is available via
``rescale=True``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparsity.compress import NMCompressedMatrix
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["nm_spmm_reference"]


def nm_spmm_reference(
    a: np.ndarray,
    compressed: NMCompressedMatrix,
    *,
    rescale: bool = False,
) -> np.ndarray:
    """Evaluate ``C = A (*) (B', D)`` straight from Eq. 1.

    Accumulation is float64 per output column window, then rounded to
    float32 once — the most accurate evaluation order, which the
    faster kernels are compared against with float32 tolerances.
    """
    a = as_f32(check_matrix("a", a))
    pattern = compressed.pattern
    m_rows, k = a.shape
    if k < compressed.k:
        raise ShapeError(
            f"A has k={k} columns but the compressed matrix expects "
            f"k={compressed.k}"
        )
    w, n = compressed.w, compressed.n
    ell = pattern.vector_length
    d = compressed.indices
    bp = compressed.values
    out = np.zeros((m_rows, n), dtype=np.float64)
    for u in range(w):
        window = u // pattern.n
        base_row = window * pattern.m
        for jq in range(compressed.q):
            row = base_row + int(d[u, jq])
            j0 = jq * ell
            j1 = j0 + ell
            # outer-product accumulation of one retained vector
            out[:, j0:j1] += np.multiply.outer(
                a[:, row].astype(np.float64), bp[u, j0:j1].astype(np.float64)
            )
    if rescale:
        out *= pattern.m / pattern.n
    return out.astype(np.float32)
