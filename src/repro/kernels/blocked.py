"""Hierarchically blocked NM-SpMM (paper Listings 1 and 2).

This executor reproduces the *structure* of the CUDA kernel — the
device/block/warp/thread decomposition, the shared-memory staging of
``As``, ``Bs``, ``Ds`` and the ``SMBlock`` main loop — while computing
each block's arithmetic with vectorized NumPy.  It additionally records
a :class:`KernelTrace` of the memory and compute events each structural
level would issue, which grounds the performance model's instruction
counts in an executable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import FP32_BYTES
from repro.errors import PlanError, ShapeError
from repro.kernels.tiling import TileParams
from repro.sparsity.compress import NMCompressedMatrix
from repro.utils.arrays import as_f32
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_matrix

__all__ = ["KernelTrace", "nm_spmm_blocked"]


@dataclass
class KernelTrace:
    """Event counts accumulated by the blocked/packed executors.

    The counts are *per kernel launch* and correspond one-to-one with
    the quantities the performance model computes analytically:

    * ``ldg_*_bytes`` — global-memory loads (the Lg2s stage of Fig. 5);
    * ``sts_bytes`` — shared-memory stores of the staged tiles;
    * ``lds_bytes`` — shared-memory loads by the inner kernel (Ls2r);
    * ``fma_ops``   — multiply-accumulate operations (2 FLOPs each);
    * ``stg_bytes`` — result write-back (Lr2g).

    ``backend`` records which execution backend originated the counts
    (``"structural"`` for recordings, the backend's registered name for
    plan-derived analytic fills, ``"mixed"`` once traces from different
    origins merge).  It is provenance, not an event count, so it is
    excluded from equality: the analytic-equals-recorded assertions
    compare event accounting while the tag still distinguishes e.g.
    ``dense_scatter``'s own-event trace from a structural recording.

    Distributed backends additionally account their collectives via
    :meth:`add_comm`: ``comm_payload_bytes`` is the logical tensor
    moved, ``comm_wire_bytes`` the per-device ring traffic actually
    shipped, and ``comm_collectives`` the collective names in issue
    order.  Single-device traces leave all comm fields at zero, so the
    analytic==recorded equalities are untouched.
    """

    blocks: int = 0
    main_loop_iterations: int = 0
    ldg_a_bytes: int = 0
    ldg_b_bytes: int = 0
    ldg_d_bytes: int = 0
    ldg_colinfo_bytes: int = 0
    sts_bytes: int = 0
    lds_bytes: int = 0
    fma_ops: int = 0
    stg_bytes: int = 0
    comm_payload_bytes: int = 0
    comm_wire_bytes: int = 0
    comm_seconds: float = 0.0
    comm_collectives: list[str] = field(default_factory=list)
    packed_widths: list[int] = field(default_factory=list)
    backend: str = field(default="", compare=False)

    @property
    def ldg_bytes(self) -> int:
        """Total global-memory load traffic (compulsory, no cache)."""
        return (
            self.ldg_a_bytes
            + self.ldg_b_bytes
            + self.ldg_d_bytes
            + self.ldg_colinfo_bytes
        )

    @property
    def flops(self) -> int:
        """Useful floating-point operations (2 per FMA)."""
        return 2 * self.fma_ops

    def arithmetic_intensity(self) -> float:
        """FLOPs per global byte moved (loads + stores)."""
        bytes_total = self.ldg_bytes + self.stg_bytes
        return self.flops / bytes_total if bytes_total else 0.0

    def add_comm(
        self,
        collective: str,
        payload_bytes: int,
        wire_bytes: int,
        seconds: float = 0.0,
    ) -> None:
        """Account one modeled collective (see
        :class:`~repro.distributed.topology.CommEvent`)."""
        self.comm_collectives.append(str(collective))
        self.comm_payload_bytes += int(payload_bytes)
        self.comm_wire_bytes += int(wire_bytes)
        self.comm_seconds += float(seconds)

    def tag_backend(self, name: str) -> None:
        """Stamp the originating backend; traces accumulated from
        different origins degrade to ``"mixed"`` rather than lying."""
        if not self.backend:
            self.backend = name
        elif name and self.backend != name:
            self.backend = "mixed"

    def merge(self, other: "KernelTrace") -> None:
        """Accumulate another trace into this one."""
        if other.backend:
            self.tag_backend(other.backend)
        self.blocks += other.blocks
        self.main_loop_iterations += other.main_loop_iterations
        self.ldg_a_bytes += other.ldg_a_bytes
        self.ldg_b_bytes += other.ldg_b_bytes
        self.ldg_d_bytes += other.ldg_d_bytes
        self.ldg_colinfo_bytes += other.ldg_colinfo_bytes
        self.sts_bytes += other.sts_bytes
        self.lds_bytes += other.lds_bytes
        self.fma_ops += other.fma_ops
        self.stg_bytes += other.stg_bytes
        self.comm_payload_bytes += other.comm_payload_bytes
        self.comm_wire_bytes += other.comm_wire_bytes
        self.comm_seconds += other.comm_seconds
        self.comm_collectives.extend(other.comm_collectives)
        self.packed_widths.extend(other.packed_widths)


def _check_blocked_inputs(
    a: np.ndarray, compressed: NMCompressedMatrix, params: TileParams
) -> None:
    if params.ks <= 0:
        raise PlanError("TileParams.ks is unset; derive it with with_ks(...)")
    if params.ks % compressed.pattern.m != 0:
        raise PlanError(
            f"ks={params.ks} must be a multiple of M={compressed.pattern.m} "
            "so pruning windows do not straddle block boundaries"
        )
    if a.shape[1] < compressed.k:
        raise ShapeError(
            f"A has k={a.shape[1]} columns but the compressed matrix "
            f"expects k={compressed.k}"
        )


def _sm_block(
    a_tile: np.ndarray,
    b_tile: np.ndarray,
    d_tile: np.ndarray,
    pattern,
    base_u: int,
    tile_k_origin: int,
    c_tile: np.ndarray,
    trace: KernelTrace | None,
) -> None:
    """The ``SMBlock`` device function (Listing 2): consume one staged
    (As, Bs, Ds) triple, accumulating into the block accumulator.

    Gathers ``Ar`` per column window from the staged A tile using the
    window-relative indices, then performs the per-window GEMM that the
    thread inner kernels (outer products over ``p``) jointly compute.
    """
    ws_b = b_tile.shape[0]
    ell = pattern.vector_length
    qs_b = d_tile.shape[1]
    u = base_u + np.arange(ws_b, dtype=np.int64)[:, None]
    rel_rows = (u // pattern.n) * pattern.m - tile_k_origin + d_tile.astype(np.int64)
    for jq in range(qs_b):
        ar = a_tile[:, rel_rows[:, jq]]
        j0 = jq * ell
        j1 = min(j0 + ell, b_tile.shape[1])
        c_tile[:, j0:j1] += ar @ b_tile[:, j0:j1]
    if trace is not None:
        ms_b = a_tile.shape[0]
        ns_b = b_tile.shape[1]
        trace.fma_ops += ms_b * ns_b * ws_b
        # Ls2r: every thread re-reads its At fragment and Bt fragment
        # per p-step; in aggregate the block streams ws_b*(ms_b + ns_b)
        # words from shared memory (broadcast de-duplicated).
        trace.lds_bytes += ws_b * (ms_b + ns_b) * FP32_BYTES


def nm_spmm_blocked(
    a: np.ndarray,
    compressed: NMCompressedMatrix,
    params: TileParams,
    *,
    trace: KernelTrace | None = None,
    rescale: bool = False,
) -> np.ndarray:
    """Execute NM-SpMM with the hierarchical blocking of Listing 1.

    Parameters
    ----------
    a:
        Dense ``(m, k)`` input.
    compressed:
        The ``(B', D)`` pair.
    params:
        Blocking parameters with ``ks`` resolved.
    trace:
        Optional :class:`KernelTrace` that receives event counts.
    """
    a = as_f32(check_matrix("a", a))
    _check_blocked_inputs(a, compressed, params)
    pattern = compressed.pattern
    m_rows = a.shape[0]
    w, n = compressed.w, compressed.n
    ell = pattern.vector_length
    ks = min(params.ks, compressed.k)
    ws = (ks // pattern.m) * pattern.n
    out = np.empty((m_rows, n), dtype=np.float32)

    num_bi = ceil_div(m_rows, params.ms)
    num_bj = ceil_div(n, params.ns)
    if trace is not None:
        trace.blocks += num_bi * num_bj

    for bi_idx in range(num_bi):
        bi = bi_idx * params.ms
        bi_end = min(bi + params.ms, m_rows)
        for bj_idx in range(num_bj):
            bj = bj_idx * params.ns
            bj_end = min(bj + params.ns, n)
            jq0 = bj // ell
            jq1 = ceil_div(bj_end, ell)
            # Ct accumulator (Listing 1 line 9), float32 like the
            # CUDA registers.
            c_tile = np.zeros((bi_end - bi, bj_end - bj), dtype=np.float32)
            # Main loop over the compressed depth (Listing 1 line 14).
            for u0 in range(0, w, ws):
                u1 = min(u0 + ws, w)
                k0 = (u0 // pattern.n) * pattern.m
                k1 = min(k0 + ks, compressed.k)
                a_tile = a[bi:bi_end, k0:k1]
                b_tile = compressed.values[u0:u1, bj:bj_end]
                d_tile = compressed.indices[u0:u1, jq0:jq1]
                if trace is not None:
                    trace.main_loop_iterations += 1
                    trace.ldg_a_bytes += a_tile.size * FP32_BYTES
                    trace.ldg_b_bytes += b_tile.size * FP32_BYTES
                    trace.ldg_d_bytes += d_tile.size * d_tile.dtype.itemsize
                    trace.sts_bytes += (
                        a_tile.size + b_tile.size
                    ) * FP32_BYTES + d_tile.size * d_tile.dtype.itemsize
                _sm_block(
                    a_tile, b_tile, d_tile, pattern, u0, k0, c_tile, trace
                )
            out[bi:bi_end, bj:bj_end] = c_tile
            if trace is not None:
                trace.stg_bytes += c_tile.size * FP32_BYTES
    if rescale:
        out *= np.float32(pattern.m / pattern.n)
    return out
