"""Fast vectorized NM-SpMM (the library's default execution path).

Per column window ``jq`` the retained vectors of every compressed row
select one A column each (``absolute_rows[:, jq]``); gathering those
columns turns the window's contribution into a dense
``(m, w) @ (w, L)`` GEMM — exactly the observation of §III-B2 that
"the innermost computation for the thread transforms into a general
matrix multiplication" once ``Ar`` is formed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparsity.compress import NMCompressedMatrix
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["nm_spmm_functional"]


def nm_spmm_functional(
    a: np.ndarray,
    compressed: NMCompressedMatrix,
    *,
    rescale: bool = False,
) -> np.ndarray:
    """Compute ``C = A (*) (B', D)`` with one gathered GEMM per column
    window.  Numerically equivalent to :func:`nm_spmm_reference` up to
    float32 summation order."""
    a = as_f32(check_matrix("a", a))
    pattern = compressed.pattern
    m_rows, k = a.shape
    if k != compressed.k:
        # != rather than <: oversized A would silently gather from the
        # leading columns and drop the rest, which is a caller bug.
        raise ShapeError(
            f"A has k={k} columns but the compressed matrix expects "
            f"k={compressed.k}"
        )
    n = compressed.n
    ell = pattern.vector_length
    abs_rows = compressed.absolute_rows()  # (w, q)
    out = np.empty((m_rows, n), dtype=np.float32)
    for jq in range(compressed.q):
        ar = a[:, abs_rows[:, jq]]  # (m, w) gathered "Ar" of §III-B2
        j0 = jq * ell
        out[:, j0 : j0 + ell] = ar @ compressed.values[:, j0 : j0 + ell]
    if rescale:
        out *= np.float32(pattern.m / pattern.n)
    return out
