"""Constraint-driven blocking-parameter search.

Table I's recommendations are not arbitrary: they are the feasible
configurations that maximise the inner-kernel CMAR (Eq. 6) subject to
the register budget, bank-conflict-free block shapes, the Eq. 5 shared
memory bound, and enough parallelism (occupancy / wave coverage) for
the matrix at hand.  This module enumerates the space and scores each
candidate with the performance model, reproducing Table I when asked
for the Table II exemplar shapes (see ``benchmarks/bench_table1_*``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import THREAD_TILE_REGISTER_BUDGET, WARP_SIZE
from repro.errors import AutotuneError, ConfigurationError
from repro.kernels.tiling import TileParams
from repro.sparsity.config import NMPattern

__all__ = ["autotune", "AutotuneResult", "enumerate_candidates"]


@dataclass(frozen=True)
class AutotuneResult:
    """Outcome of a parameter search."""

    best: TileParams
    predicted_seconds: float
    candidates_evaluated: int
    ranking: tuple[tuple[TileParams, float], ...]

    def top(self, count: int = 5) -> list[tuple[TileParams, float]]:
        """The ``count`` best (params, seconds) pairs."""
        return list(self.ranking[:count])


def enumerate_candidates(
    max_block: int = 128,
    *,
    thread_tiles: tuple[int, ...] = (2, 4, 8, 16),
) -> list[TileParams]:
    """Enumerate all valid :class:`TileParams` with power-of-two
    ``ms, ns`` (32/64/128...) up to ``max_block`` and 32-thread warp
    grids.

    Power-of-two block shapes keep global/shared addressing swizzles
    cheap, which is why every configuration the paper ships (Table I)
    uses them; validity otherwise is exactly the §III-B constraint set
    (encoded in ``TileParams.__post_init__``).
    """
    blocks = []
    b = WARP_SIZE
    while b <= max_block:
        blocks.append(b)
        b *= 2
    out: list[TileParams] = []
    for ms in blocks:
        for ns in blocks:
            for mt in thread_tiles:
                for nt in thread_tiles:
                    if mt + nt + mt * nt > THREAD_TILE_REGISTER_BUDGET:
                        continue
                    # lane grid must multiply to a warp
                    for lane_rows in (1, 2, 4, 8, 16, 32):
                        lane_cols = WARP_SIZE // lane_rows
                        mr = mt * lane_rows
                        nr = nt * lane_cols
                        if mr > ms or nr > ns:
                            continue
                        if ms % mr or ns % nr:
                            continue
                        try:
                            cand = TileParams(
                                ms=ms, ns=ns, mr=mr, nr=nr, mt=mt, nt=nt
                            )
                        except ConfigurationError:
                            continue
                        # CUDA hardware limit.
                        if cand.threads_per_block > 1024:
                            continue
                        out.append(cand)
    # Deduplicate (different lane splits can coincide).
    unique = {p: None for p in out}
    return list(unique)


def autotune(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern,
    gpu: "str | object" = "A100",
    *,
    max_block: int = 128,
    version: str = "V3",
    top_k: int = 10,
) -> AutotuneResult:
    """Search for the fastest blocking parameters on a modelled GPU.

    Every candidate gets its ``ks`` from Eq. 5 and is scored by the
    full performance model (traffic + pipeline + occupancy); ties break
    towards higher CMAR then fewer threads.
    """
    # Imported lazily: the model package depends on kernels.tiling.
    from repro.gpu import resolve_gpu
    from repro.model.engine import simulate_nm_spmm

    spec = resolve_gpu(gpu)
    scored: list[tuple[TileParams, float]] = []
    candidates = enumerate_candidates(max_block=max_block)
    for cand in candidates:
        try:
            params = cand.with_ks(pattern, spec.smem_bytes_per_sm, k)
            report = simulate_nm_spmm(
                m, n, k, pattern, spec, params=params, version=version
            )
        except Exception:
            continue
        scored.append((params, report.seconds))
    if not scored:
        raise AutotuneError(
            f"no feasible blocking parameters for ({m}, {n}, {k}) "
            f"with pattern {pattern.label()}"
        )
    # Ties (within model resolution) break toward lower register
    # pressure — the occupancy-friendly choice §III-B2 argues for —
    # then higher CMAR, then fewer threads.
    scored.sort(
        key=lambda item: (
            item[1],
            item[0].accumulator_registers,
            -item[0].cmar(),
            item[0].threads_per_block,
        )
    )
    best, seconds = scored[0]
    return AutotuneResult(
        best=best,
        predicted_seconds=seconds,
        candidates_evaluated=len(scored),
        ranking=tuple(scored[: max(top_k, 1)]),
    )
