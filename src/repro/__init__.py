"""NM-SpMM reproduction: N:M sparsity matrix multiplication with a
GPGPU performance model.

Reproduces "NM-SpMM: Accelerating Matrix Multiplication Using N:M
Sparsity with GPGPU" (IPDPS 2025).  The package has three layers:

* **functional** — numerically exact NumPy implementations of the
  vector-wise N:M format and the blocked/packed kernels of the paper's
  Listings 1-4 (:mod:`repro.sparsity`, :mod:`repro.kernels`);
* **performance** — an analytic GPU model (Table III hardware catalog,
  traffic/occupancy/pipeline simulation) that regenerates every figure
  and table of the evaluation (:mod:`repro.gpu`, :mod:`repro.model`,
  :mod:`repro.bench`);
* **serving** — a single-process serving runtime (request queue,
  dynamic batching, plan-cached execution, seeded load generation)
  that models the heavy-traffic scenario the offline/online split
  exists for (:mod:`repro.serve`).

Quickstart::

    import numpy as np
    from repro import NMPattern, NMSpMM

    rng = np.random.default_rng(0)
    a = rng.standard_normal((512, 1024), dtype=np.float32)
    b = rng.standard_normal((1024, 512), dtype=np.float32)

    op = NMSpMM(NMPattern(8, 32, vector_length=32))
    handle = op.prepare(b)            # prune + compress + preprocess
    c = op.execute(a, handle)         # sparse product
    report = op.predict(a.shape[0], gpu="A100")   # modelled performance
"""

from repro._version import __version__
from repro.sparsity import NMCompressedMatrix, NMPattern, compress, decompress
from repro.backends import (
    AutoSelector,
    Backend,
    ExecutionRequest,
    ExecutionResult,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)
from repro.core.api import NMSpMM, SparseHandle, nm_spmm
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.analysis import PerformanceAnalysis, analyze
from repro.gpu import GPUSpec, get_gpu, list_gpus
from repro.kernels import dense_gemm, nm_spmm_fast, nm_spmm_functional, nm_spmm_reference
from repro.model import KernelReport, simulate_nm_spmm
from repro.serve import BatchingPolicy, InferenceServer

__all__ = [
    "__version__",
    "NMPattern",
    "NMCompressedMatrix",
    "compress",
    "decompress",
    "NMSpMM",
    "SparseHandle",
    "nm_spmm",
    "Backend",
    "ExecutionRequest",
    "ExecutionResult",
    "AutoSelector",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_names",
    "ExecutionPlan",
    "build_plan",
    "PerformanceAnalysis",
    "analyze",
    "GPUSpec",
    "get_gpu",
    "list_gpus",
    "nm_spmm_fast",
    "nm_spmm_functional",
    "nm_spmm_reference",
    "dense_gemm",
    "KernelReport",
    "simulate_nm_spmm",
    "BatchingPolicy",
    "InferenceServer",
]
