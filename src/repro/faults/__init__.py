"""Seeded fault injection for the simulated serving stack.

* :mod:`repro.faults.plan` — declarative fault models
  (:class:`FaultPlan` and its four fault kinds) plus the
  ``serve-sim --faults`` spec parser;
* :mod:`repro.faults.injector` — the per-run seeded
  :class:`FaultInjector` the serving engine queries at every launch.

The resilience machinery that survives these faults (retries,
timeouts, circuit breaking, health-aware re-sharding, load shedding)
lives in :mod:`repro.serve.resilience` and the serving engine itself.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DeviceFailStop,
    DeviceSlowdown,
    FaultPlan,
    LaunchFaultWindow,
    LinkDegradation,
    parse_fault_spec,
)

__all__ = [
    "FaultPlan",
    "LaunchFaultWindow",
    "DeviceFailStop",
    "DeviceSlowdown",
    "LinkDegradation",
    "parse_fault_spec",
    "FaultInjector",
]
