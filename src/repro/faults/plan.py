"""Seeded fault models: what goes wrong, where, and when.

A :class:`FaultPlan` is a declarative, fully deterministic description
of the chaos one simulated serving run is subjected to, composed from
four fault kinds (all on the simulated clock):

* :class:`LaunchFaultWindow` — transient kernel-launch failures: every
  launch attempt inside ``[start_s, end_s)`` fails with probability
  ``p`` (drawn from the plan's seeded stream).  Optionally pinned to
  one model and/or one device — a storm concentrated on a device is
  what drives the serving layer's circuit breaker.
* :class:`DeviceFailStop` — a device dies at ``at_s`` and never comes
  back.  Every launch touching it fails until the server re-shards the
  affected models onto the survivors.
* :class:`DeviceSlowdown` — a straggler: the device's modeled compute
  time is multiplied by ``factor`` while the window is active (the
  clock multiplier is applied through the perf model's per-launch
  seconds, so tensor-parallel launches see the slowest device gate the
  collective exactly as the topology model prescribes).
* :class:`LinkDegradation` — the group interconnect loses bandwidth
  and gains latency inside the window; with ``period_s`` set the
  degradation *flaps*, active during the first ``duty`` fraction of
  every period (the ethernet-flakiness regime of the GPGPU-cluster
  SpMV literature that motivated the :data:`~repro.distributed.
  topology.LINKS` catalog).

Determinism contract: a plan is data, not behaviour.  The runtime
:class:`~repro.faults.injector.FaultInjector` built from ``(plan,
seed)`` draws every probabilistic decision from one seeded stream, and
the serving engine's query sequence is itself a pure function of the
request trace — so the same seed and the same plan produce the
identical fault schedule, byte for byte, run after run.

``parse_fault_spec`` turns the ``serve-sim --faults`` mini-language
into a plan::

    launch:p=0.3,start=0.1,end=0.5[,model=NAME][,device=D]
    devfail:device=1,at=0.5
    slow:device=0,factor=2.0[,start=S][,end=E]
    link:factor=0.1[,extra-lat=2e-4][,start=S][,end=E]
        [,period=0.25][,duty=0.5]
    seed=N

Clauses are ``;``-separated and compose into one plan; the ``seed``
clause overrides the plan's fault-stream seed (default 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.errors import FaultError

__all__ = [
    "LaunchFaultWindow",
    "DeviceFailStop",
    "DeviceSlowdown",
    "LinkDegradation",
    "FaultPlan",
    "parse_fault_spec",
]


def _check_window(start_s: float, end_s: float, what: str) -> None:
    if not (start_s >= 0 and math.isfinite(start_s)):
        raise FaultError(f"{what}: start_s must be finite >= 0, got {start_s}")
    if end_s <= start_s:
        raise FaultError(
            f"{what}: end_s={end_s} must be > start_s={start_s}"
        )


@dataclass(frozen=True)
class LaunchFaultWindow:
    """Transient launch failures at probability ``p`` inside a window."""

    p: float
    start_s: float = 0.0
    end_s: float = math.inf
    model: "str | None" = None
    device: "int | None" = None

    def __post_init__(self) -> None:
        if not 0 < self.p <= 1:
            raise FaultError(
                f"launch fault probability must be in (0, 1], got {self.p}"
            )
        _check_window(self.start_s, self.end_s, "launch fault")
        if self.device is not None and self.device < 0:
            raise FaultError(f"device must be >= 0, got {self.device}")

    def active(self, model: str, t_s: float) -> bool:
        if self.model is not None and self.model != model:
            return False
        return self.start_s <= t_s < self.end_s


@dataclass(frozen=True)
class DeviceFailStop:
    """Device ``device`` fail-stops at ``at_s`` (permanently)."""

    device: int
    at_s: float

    def __post_init__(self) -> None:
        if self.device < 0:
            raise FaultError(f"device must be >= 0, got {self.device}")
        if not (self.at_s >= 0 and math.isfinite(self.at_s)):
            raise FaultError(
                f"fail-stop at_s must be finite >= 0, got {self.at_s}"
            )


@dataclass(frozen=True)
class DeviceSlowdown:
    """Device ``device`` runs ``factor``x slower inside the window."""

    device: int
    factor: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if self.device < 0:
            raise FaultError(f"device must be >= 0, got {self.device}")
        if not self.factor >= 1:
            raise FaultError(
                f"slowdown factor must be >= 1, got {self.factor}"
            )
        _check_window(self.start_s, self.end_s, "slowdown")

    def active(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s


@dataclass(frozen=True)
class LinkDegradation:
    """The group link degrades inside the window (optionally flapping).

    While active, link bandwidth is multiplied by
    ``bandwidth_factor`` and ``extra_latency_s`` is added to the
    per-message latency.  With ``period_s`` set the degradation is
    active only during the first ``duty`` fraction of every
    ``period_s`` cycle inside the window (a flapping link).
    """

    bandwidth_factor: float
    extra_latency_s: float = 0.0
    start_s: float = 0.0
    end_s: float = math.inf
    period_s: "float | None" = None
    duty: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_factor <= 1:
            raise FaultError(
                "link bandwidth_factor must be in (0, 1], got "
                f"{self.bandwidth_factor}"
            )
        if self.extra_latency_s < 0:
            raise FaultError(
                f"extra_latency_s must be >= 0, got {self.extra_latency_s}"
            )
        _check_window(self.start_s, self.end_s, "link degradation")
        if self.period_s is not None and not self.period_s > 0:
            raise FaultError(f"period_s must be > 0, got {self.period_s}")
        if not 0 < self.duty <= 1:
            raise FaultError(f"duty must be in (0, 1], got {self.duty}")

    def active(self, t_s: float) -> bool:
        if not self.start_s <= t_s < self.end_s:
            return False
        if self.period_s is None:
            return True
        phase = (t_s - self.start_s) % self.period_s
        return phase < self.duty * self.period_s


@dataclass(frozen=True)
class FaultPlan:
    """A composed, seeded chaos schedule for one simulated run."""

    seed: int = 0
    launch_faults: tuple[LaunchFaultWindow, ...] = ()
    device_failures: tuple[DeviceFailStop, ...] = ()
    slowdowns: tuple[DeviceSlowdown, ...] = ()
    link_faults: tuple[LinkDegradation, ...] = ()
    #: The spec string the plan was parsed from (reporting only).
    spec: "str | None" = field(default=None, compare=False)

    @property
    def empty(self) -> bool:
        return not (
            self.launch_faults
            or self.device_failures
            or self.slowdowns
            or self.link_faults
        )

    def failed_devices(self, t_s: float) -> frozenset[int]:
        """Devices fail-stopped at or before ``t_s``."""
        return frozenset(
            f.device for f in self.device_failures if f.at_s <= t_s
        )

    def describe(self) -> str:
        if self.spec is not None:
            return self.spec
        if self.empty:
            return "none"
        parts = []
        for w in self.launch_faults:
            parts.append(f"launch(p={w.p:g}@[{w.start_s:g},{w.end_s:g}))")
        for f in self.device_failures:
            parts.append(f"devfail(device={f.device}@{f.at_s:g})")
        for s in self.slowdowns:
            parts.append(
                f"slow(device={s.device},x{s.factor:g}"
                f"@[{s.start_s:g},{s.end_s:g}))"
            )
        for link in self.link_faults:
            text = f"link(bw x{link.bandwidth_factor:g}"
            if link.period_s is not None:
                text += f",flap {link.period_s:g}s/{link.duty:g}"
            parts.append(text + ")")
        return "; ".join(parts)


# ---------------------------------------------------------------------------
# Spec parsing (serve-sim --faults)
# ---------------------------------------------------------------------------
_SPEC_FIELDS = {
    "launch": {
        "p": ("p", float),
        "start": ("start_s", float),
        "end": ("end_s", float),
        "model": ("model", str),
        "device": ("device", int),
    },
    "devfail": {
        "device": ("device", int),
        "at": ("at_s", float),
    },
    "slow": {
        "device": ("device", int),
        "factor": ("factor", float),
        "start": ("start_s", float),
        "end": ("end_s", float),
    },
    "link": {
        "factor": ("bandwidth_factor", float),
        "extra-lat": ("extra_latency_s", float),
        "start": ("start_s", float),
        "end": ("end_s", float),
        "period": ("period_s", float),
        "duty": ("duty", float),
    },
}
_SPEC_CLASSES = {
    "launch": LaunchFaultWindow,
    "devfail": DeviceFailStop,
    "slow": DeviceSlowdown,
    "link": LinkDegradation,
}
_SPEC_REQUIRED = {
    kind: tuple(
        f.name
        for f in fields(cls)
        if f.default is f.default_factory  # both MISSING sentinels
    )
    for kind, cls in _SPEC_CLASSES.items()
}


def _parse_clause(clause: str):
    kind, _, rest = clause.partition(":")
    kind = kind.strip().lower()
    if kind not in _SPEC_FIELDS:
        raise FaultError(
            f"unknown fault kind {kind!r} in clause {clause!r}; "
            f"known: {sorted(_SPEC_FIELDS)}"
        )
    mapping = _SPEC_FIELDS[kind]
    kwargs: dict = {}
    for pair in rest.split(","):
        pair = pair.strip()
        if not pair:
            continue
        key, eq, value = pair.partition("=")
        key = key.strip().lower()
        if not eq or key not in mapping:
            raise FaultError(
                f"bad {kind} parameter {pair!r}; known keys: "
                f"{sorted(mapping)}"
            )
        name, cast = mapping[key]
        try:
            kwargs[name] = cast(value.strip())
        except ValueError:
            raise FaultError(
                f"bad {kind} value {pair!r}: expected {cast.__name__}"
            ) from None
    missing = [
        key
        for key, (name, _) in mapping.items()
        if name in _SPEC_REQUIRED[kind] and name not in kwargs
    ]
    if missing:
        raise FaultError(
            f"{kind} clause {clause!r} is missing required "
            f"key(s): {missing}"
        )
    return kind, _SPEC_CLASSES[kind](**kwargs)


def parse_fault_spec(spec: str, *, seed: int = 0) -> FaultPlan:
    """Parse a ``--faults`` spec string into a :class:`FaultPlan`.

    >>> plan = parse_fault_spec("launch:p=0.5,start=0.1,end=0.2;"
    ...                         "devfail:device=1,at=0.5")
    >>> len(plan.launch_faults), len(plan.device_failures)
    (1, 1)
    """
    if not spec or not spec.strip():
        raise FaultError("empty fault spec")
    buckets: dict[str, list] = {k: [] for k in _SPEC_FIELDS}
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.lower().startswith("seed="):
            try:
                seed = int(clause[len("seed="):].strip())
            except ValueError:
                raise FaultError(
                    f"bad seed clause {clause!r}: expected an integer"
                ) from None
            continue
        kind, fault = _parse_clause(clause)
        buckets[kind].append(fault)
    plan = FaultPlan(
        seed=seed,
        launch_faults=tuple(buckets["launch"]),
        device_failures=tuple(buckets["devfail"]),
        slowdowns=tuple(buckets["slow"]),
        link_faults=tuple(buckets["link"]),
        spec=spec.strip(),
    )
    if plan.empty:
        raise FaultError(f"fault spec {spec!r} contains no clauses")
    return plan
