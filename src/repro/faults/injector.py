"""Runtime fault injection for one simulated serving run.

A :class:`FaultInjector` is the *stateful* face of a declarative
:class:`~repro.faults.plan.FaultPlan`: the serving engine creates one
per ``simulate()`` call and queries it at every launch.  All
probabilistic decisions (does this launch fail? which device does a
storm failure land on?) come from one ``numpy`` generator seeded from
the plan, so a deterministic query sequence — which the simulated-clock
engine guarantees — yields the identical fault schedule every run.

The injector also owns the ``fault.inject`` observability surface:
every injected launch failure, every link-state transition, and every
slowdown-window activation is emitted as a tracer event plus a
``serve_faults_total{kind}`` counter, so chaos runs stay assertable.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.topology import DeviceGroup, Link
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seeded runtime oracle over one :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The chaos schedule.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; when set, every
        injection emits a ``fault.inject`` event and bumps the
        ``serve_faults_total`` counter.
    """

    def __init__(self, plan: FaultPlan, *, tracer=None):
        self.plan = plan
        self.tracer = tracer
        # Independent child streams so adding a fault kind never
        # perturbs another kind's draws.
        self._rng = np.random.default_rng([plan.seed, 0xFA])
        self.launch_faults_injected = 0
        self._link_degraded = False
        self._slowdowns_seen: set[int] = set()

    # ------------------------------------------------------------------
    def _emit(self, kind: str, t_s: float, **attrs) -> None:
        if self.tracer is None:
            return
        self.tracer.event(
            "fault.inject", t_s=t_s, track="faults", kind=kind, **attrs
        )
        self.tracer.metrics.counter(
            "serve_faults_total", "injected faults by kind"
        ).inc(kind=kind)

    # ------------------------------------------------------------------
    # Launch failures
    # ------------------------------------------------------------------
    def launch_fails(
        self, model: str, t_s: float, devices: int
    ) -> "int | None":
        """Whether a launch of ``model`` at ``t_s`` on a
        ``devices``-wide group suffers a transient failure.  Returns
        the device index the failure is attributed to (for the
        serving layer's per-device circuit breaker), or ``None`` for
        a healthy launch."""
        for window in self.plan.launch_faults:
            if not window.active(model, t_s):
                continue
            if float(self._rng.random()) < window.p:
                if window.device is not None:
                    device = window.device % max(devices, 1)
                else:
                    device = int(self._rng.integers(max(devices, 1)))
                self.launch_faults_injected += 1
                self._emit(
                    "launch", t_s, model=model, device=device, p=window.p
                )
                return device
        return None

    # ------------------------------------------------------------------
    # Device health
    # ------------------------------------------------------------------
    def failed_devices(self, t_s: float) -> frozenset[int]:
        """Devices the plan has fail-stopped by ``t_s`` (the serving
        layer merges these with its own circuit-breaker openings)."""
        return self.plan.failed_devices(t_s)

    def note_failstop(self, device: int, t_s: float) -> None:
        """Record a plan-scheduled device fail-stop as a
        ``fault.inject`` event (called by the serving layer exactly
        once per failure, when the event loop reaches ``at_s``)."""
        self._emit("devfail", t_s, device=device)

    def device_factor(self, device: int, t_s: float) -> float:
        """The straggler clock multiplier of ``device`` at ``t_s``
        (active slowdown factors compose multiplicatively)."""
        factor = 1.0
        for index, slow in enumerate(self.plan.slowdowns):
            if slow.device == device and slow.active(t_s):
                factor *= slow.factor
                if index not in self._slowdowns_seen:
                    self._slowdowns_seen.add(index)
                    self._emit(
                        "device-slow", t_s,
                        device=device, factor=slow.factor,
                    )
        return factor

    # ------------------------------------------------------------------
    # Link state
    # ------------------------------------------------------------------
    def degraded_group(
        self, group: DeviceGroup, t_s: float
    ) -> DeviceGroup:
        """The device group as the fault plan sees it at ``t_s``: the
        original group when the link is healthy, or a group on a
        bandwidth-cut / latency-spiked link while a degradation window
        (or flap phase) is active.  Link-state *transitions* emit
        ``fault.inject`` events (observed at launch times — the link
        has no state between launches on the simulated clock)."""
        factor = 1.0
        extra_latency = 0.0
        for fault in self.plan.link_faults:
            if fault.active(t_s):
                factor *= fault.bandwidth_factor
                extra_latency += fault.extra_latency_s
        degraded = factor < 1.0 or extra_latency > 0.0
        if degraded != self._link_degraded:
            self._link_degraded = degraded
            self._emit(
                "link-degrade" if degraded else "link-recover", t_s,
                bandwidth_factor=factor, extra_latency_s=extra_latency,
            )
        if not degraded:
            return group
        link = Link(
            name=f"{group.link.name}:degraded",
            bandwidth_gb_s=group.link.bandwidth_gb_s * factor,
            latency_s=group.link.latency_s + extra_latency,
        )
        return DeviceGroup(gpu=group.gpu, devices=group.devices, link=link)
