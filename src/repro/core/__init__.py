"""The paper's primary contribution, assembled.

* :mod:`repro.core.analysis` — the top-down performance-analysis model
  (Eq. 3 arithmetic intensity, roofline classification);
* :mod:`repro.core.strategy` — sparsity-aware strategy selection
  (packing vs non-packing, the 70% threshold);
* :mod:`repro.core.versions` — the V1/V2/V3 step-wise optimizations;
* :mod:`repro.core.pipeline_design` — the Figs. 5/6 pipeline graphs;
* :mod:`repro.core.plan` — the execution plan builder;
* :mod:`repro.core.api` — the user-facing :class:`NMSpMM` facade.
"""

from repro.core.analysis import PerformanceAnalysis, analyze, block_arithmetic_intensity
from repro.core.strategy import LoadStrategy, select_strategy
from repro.core.versions import OptimizationVersion
from repro.core.pipeline_design import PipelineDesign, design_pipeline
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.api import NMSpMM, SparseHandle, nm_spmm

__all__ = [
    "PerformanceAnalysis",
    "analyze",
    "block_arithmetic_intensity",
    "LoadStrategy",
    "select_strategy",
    "OptimizationVersion",
    "PipelineDesign",
    "design_pipeline",
    "ExecutionPlan",
    "build_plan",
    "NMSpMM",
    "SparseHandle",
    "nm_spmm",
]
