"""Top-down performance analysis for N:M sparsity (paper §III-A).

The centrepiece is Eq. 3, the block-level arithmetic intensity::

    AI = 2 * ms * ns * ws / (ms * ks + ws * ns + 2 * ms * ns)

measured in FLOPs per *element* moved (multiply by 1/4 for FLOP/byte
with FP32).  As sparsity rises, ``ws = ks * N/M`` shrinks: the
numerator falls linearly while only one denominator term follows,
so AI falls and the computation transitions from compute-bound to
memory-bound — the insight the sparsity-aware optimizations build on.

``packed=True`` evaluates the packed footprint: ``ms*ks`` becomes the
expected packed width, raising AI at high sparsity (the Fig. 10
separation between NM-SpMM and nmSPARSE).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import FP32_BYTES
from repro.errors import PlanError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.roofline import BoundKind, Roofline
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import TileParams, params_for
from repro.sparsity.colinfo import expected_packed_fraction
from repro.sparsity.config import NMPattern

__all__ = ["block_arithmetic_intensity", "PerformanceAnalysis", "analyze"]


def block_arithmetic_intensity(
    pattern: NMPattern,
    params: TileParams,
    *,
    packed: bool = False,
) -> float:
    """Eq. 3 block-level AI in FLOPs per element.

    With ``packed=True`` the ``ms*ks`` term is scaled by the expected
    packed-column fraction (§III-C1).
    """
    if params.ks <= 0:
        raise PlanError("TileParams.ks must be resolved to evaluate Eq. 3")
    ws = params.ws(pattern)
    qs = params.qs(pattern)
    a_elems = params.ms * params.ks
    if packed:
        a_elems *= expected_packed_fraction(pattern, qs)
    flops = 2.0 * params.ms * params.ns * ws
    elements = a_elems + ws * params.ns + 2.0 * params.ms * params.ns
    return flops / elements


@dataclass(frozen=True)
class PerformanceAnalysis:
    """Outcome of the top-down analysis for one configuration."""

    pattern: NMPattern
    params: TileParams
    gpu: GPUSpec
    ai_elements: float
    ai_flop_per_byte: float
    bound: BoundKind
    attainable_flops: float
    ridge_flop_per_byte: float
    recommend_packing: bool

    @property
    def attainable_tflops(self) -> float:
        return self.attainable_flops / 1e12

    def summary(self) -> str:
        return (
            f"{self.pattern.label()} with {self.params.label()} on "
            f"{self.gpu.name}: AI {self.ai_elements:.1f} FLOP/elem "
            f"({self.ai_flop_per_byte:.2f} FLOP/B) -> {self.bound.value}, "
            f"attainable {self.attainable_tflops:.1f} TFLOPS; "
            f"{'packing' if self.recommend_packing else 'non-packing'} "
            "strategy recommended"
        )


def analyze(
    pattern: NMPattern,
    m: int,
    n: int,
    k: int,
    gpu: "str | GPUSpec" = "A100",
    *,
    params: TileParams | None = None,
) -> PerformanceAnalysis:
    """Run the §III-A analysis: place the blocked kernel on the
    roofline and derive the optimization direction."""
    spec = resolve_gpu(gpu)
    if params is None:
        params = params_for(m, n, k, pattern, spec.smem_bytes_per_sm)
    elif params.ks <= 0:
        params = params.with_ks(pattern, spec.smem_bytes_per_sm, k)
    packing = pattern.is_high_sparsity
    ai_elements = block_arithmetic_intensity(pattern, params, packed=packing)
    ai_bytes = ai_elements / FP32_BYTES
    roof = Roofline.for_gpu(spec)
    return PerformanceAnalysis(
        pattern=pattern,
        params=params,
        gpu=spec,
        ai_elements=ai_elements,
        ai_flop_per_byte=ai_bytes,
        bound=roof.bound_kind(ai_bytes),
        attainable_flops=roof.attainable(ai_bytes),
        ridge_flop_per_byte=roof.ridge_point,
        recommend_packing=packing,
    )
