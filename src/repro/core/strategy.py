"""Sparsity-aware load-strategy selection (paper §III-C1).

Moderate sparsity (<= 70%) keeps most of each A tile useful, so the
*non-packing* strategy loads the full working set "in an ostrich-style
approach" and skips the col_info overhead.  High sparsity (> 70%)
makes the A footprint the bottleneck, so the *packing* strategy stages
only the needed columns.
"""

from __future__ import annotations

from enum import Enum

from repro.constants import HIGH_SPARSITY_THRESHOLD
from repro.sparsity.colinfo import expected_packed_fraction
from repro.sparsity.config import NMPattern
from repro.utils.validation import check_fraction

__all__ = ["LoadStrategy", "select_strategy", "packing_benefit"]


class LoadStrategy(str, Enum):
    """The two A-tile load paths of Listing 3."""

    NON_PACKING = "non-packing"
    PACKING = "packing"


def select_strategy(
    pattern: NMPattern,
    threshold: float = HIGH_SPARSITY_THRESHOLD,
) -> LoadStrategy:
    """Pick the load strategy for a pattern.

    >>> select_strategy(NMPattern(16, 32))
    <LoadStrategy.NON_PACKING: 'non-packing'>
    >>> select_strategy(NMPattern(4, 32))
    <LoadStrategy.PACKING: 'packing'>
    """
    check_fraction("threshold", threshold)
    if pattern.sparsity > threshold:
        return LoadStrategy.PACKING
    return LoadStrategy.NON_PACKING


def packing_benefit(pattern: NMPattern, qs: int) -> float:
    """Expected A-footprint reduction factor from packing (1.0 = no
    benefit): the staged fraction under packing.

    The paper's bound: with ``qs`` windows per block row the access
    shrinks to at most ``qs*N/M`` of the tile and at least ``N/M``
    (identical window patterns); the expectation under random patterns
    is ``1 - (1 - N/M)^qs``.
    """
    return expected_packed_fraction(pattern, qs)
