"""Pipeline stage graphs for the two sparsity regimes (Figs. 5 and 6).

The paper draws two pipelines:

* **moderate sparsity** (Fig. 5): computation instructions cover the
  Lg2s loads — the compute stage is the long pole, so the double
  buffer hides loads under FMAs;
* **high sparsity** (Fig. 6): the packed loads (col_info + As) are the
  long pole, so loads cover computation.

:func:`design_pipeline` builds the explicit stage sequence for one
main-loop iteration — the artefact the ablation bench schedules with
:class:`repro.model.pipeline.SoftwarePipeline` — and reports which
stage covers which, which is emergent from the stage costs rather than
hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategy import LoadStrategy
from repro.errors import PlanError

__all__ = ["PipelineStageSpec", "PipelineDesign", "design_pipeline"]


@dataclass(frozen=True)
class PipelineStageSpec:
    """One stage of the per-iteration pipeline."""

    name: str
    kind: str  # "load" or "compute"
    cycles: float


@dataclass(frozen=True)
class PipelineDesign:
    """The per-iteration stage graph plus its covering relation."""

    strategy: LoadStrategy
    stages: tuple[PipelineStageSpec, ...]
    double_buffered: bool

    @property
    def load_cycles(self) -> float:
        return sum(s.cycles for s in self.stages if s.kind == "load")

    @property
    def compute_cycles(self) -> float:
        return sum(s.cycles for s in self.stages if s.kind == "compute")

    @property
    def covering_stage(self) -> str:
        """Which side masks the other — "compute covers load" in the
        Fig. 5 regime, "load covers compute" in the Fig. 6 regime."""
        if self.compute_cycles >= self.load_cycles:
            return "compute covers load"
        return "load covers compute"

    def iteration_cycles(self) -> float:
        """Steady-state cycles per iteration."""
        if self.double_buffered:
            return max(self.load_cycles, self.compute_cycles)
        return self.load_cycles + self.compute_cycles


def design_pipeline(
    strategy: LoadStrategy,
    *,
    lg2s_cycles: float,
    compute_cycles: float,
    colinfo_cycles: float = 0.0,
    ls2r_cycles: float = 0.0,
    double_buffered: bool = True,
) -> PipelineDesign:
    """Assemble the iteration pipeline for a strategy.

    The packing strategy prepends the col_info load (Listing 3 line
    15, the extra latency §III-C1 notes the refined pipeline must
    mask); ``ls2r_cycles`` is the shared-memory-to-register stage that
    overlaps with compute inside the inner kernel (Fig. 5's blue/yellow
    rectangles) and is charged to the compute side.
    """
    if lg2s_cycles < 0 or compute_cycles < 0 or colinfo_cycles < 0:
        raise PlanError("stage cycle counts must be non-negative")
    stages: list[PipelineStageSpec] = []
    if strategy is LoadStrategy.PACKING:
        stages.append(PipelineStageSpec("load col_info", "load", colinfo_cycles))
    elif colinfo_cycles:
        raise PlanError("non-packing pipeline has no col_info stage")
    stages.append(PipelineStageSpec("load As/Bs/Ds (Lg2s)", "load", lg2s_cycles))
    stages.append(
        PipelineStageSpec("inner kernel (Ls2r + Comp)", "compute", compute_cycles + ls2r_cycles)
    )
    return PipelineDesign(
        strategy=strategy,
        stages=tuple(stages),
        double_buffered=double_buffered,
    )
