"""The step-wise optimization levels V1 / V2 / V3 (paper §IV-B).

* **V1** — hierarchical blocking mechanism (Listings 1 and 2);
* **V2** — V1 + sparsity-aware memory-footprint optimization
  (Listing 3: packing at high sparsity);
* **V3** — V2 + sparsity-aware instruction-latency hiding
  (Listing 4: double buffering, async loads, index prefetch).

Each version *includes* its predecessors' optimizations, exactly as
the paper's evaluation protocol states.
"""

from __future__ import annotations

from enum import Enum

from repro.core.strategy import LoadStrategy, select_strategy
from repro.sparsity.config import NMPattern

__all__ = ["OptimizationVersion"]


class OptimizationVersion(str, Enum):
    """NM-SpMM optimization level."""

    V1 = "V1"
    V2 = "V2"
    V3 = "V3"

    @property
    def uses_packing(self) -> bool:
        """V2 and V3 enable the packing path (when sparsity is high)."""
        return self is not OptimizationVersion.V1

    @property
    def uses_double_buffering(self) -> bool:
        """Only V3 runs the Listing-4 pipeline."""
        return self is OptimizationVersion.V3

    @property
    def prefetches_indices(self) -> bool:
        """Only V3 prefetches Ds indices into registers."""
        return self is OptimizationVersion.V3

    def strategy_for(self, pattern: NMPattern) -> LoadStrategy:
        """Effective load strategy for a pattern at this version."""
        if not self.uses_packing:
            return LoadStrategy.NON_PACKING
        return select_strategy(pattern)

    @property
    def description(self) -> str:
        return {
            OptimizationVersion.V1: "hierarchical blocking (Listings 1-2)",
            OptimizationVersion.V2: "V1 + memory-footprint packing (Listing 3)",
            OptimizationVersion.V3: "V2 + pipelined latency hiding (Listing 4)",
        }[self]

    @classmethod
    def parse(cls, value: "str | OptimizationVersion") -> "OptimizationVersion":
        if isinstance(value, cls):
            return value
        return cls(str(value).upper())
