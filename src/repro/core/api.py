"""User-facing facade: prune, compress, execute, predict.

:class:`NMSpMM` bundles the full workflow of Fig. 2: offline
preparation of the weight matrix (pruning, compression, col_info
pre-processing) and online execution via the strategy- and
version-appropriate kernel, plus performance prediction on any
catalogued GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.plan import ExecutionPlan, build_plan
from repro.core.strategy import LoadStrategy
from repro.core.versions import OptimizationVersion
from repro.errors import PlanError, ShapeError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.kernels.blocked import KernelTrace, nm_spmm_blocked
from repro.kernels.packed import nm_spmm_packed
from repro.kernels.tiling import TileParams
from repro.sparsity.colinfo import ColumnInfo, preprocess_offline
from repro.sparsity.compress import NMCompressedMatrix, compress
from repro.sparsity.config import NMPattern
from repro.sparsity.pruning import prune_dense
from repro.utils.arrays import as_f32
from repro.utils.validation import check_matrix

__all__ = ["SparseHandle", "NMSpMM", "nm_spmm"]


@dataclass
class SparseHandle:
    """Prepared weights: the compressed matrix plus cached offline
    pre-processing results (one :class:`ColumnInfo` per block shape)."""

    compressed: NMCompressedMatrix
    _colinfo_cache: dict[tuple[int, int], ColumnInfo] = field(default_factory=dict)

    @property
    def pattern(self) -> NMPattern:
        return self.compressed.pattern

    @property
    def k(self) -> int:
        return self.compressed.k

    @property
    def n(self) -> int:
        return self.compressed.n

    def col_info(self, ws: int, ns: int) -> ColumnInfo:
        """The offline pre-processing output for a block shape, cached
        (Listing 3's PreProcessing runs once per deployment)."""
        key = (ws, ns)
        if key not in self._colinfo_cache:
            self._colinfo_cache[key] = preprocess_offline(self.compressed, ws, ns)
        return self._colinfo_cache[key]

    def dense(self) -> np.ndarray:
        """The pruned dense weights (for verification)."""
        return self.compressed.to_dense()


class NMSpMM:
    """The NM-SpMM operator.

    Parameters
    ----------
    pattern:
        The N:M sparsity pattern (N retained of every M vectors of
        length L).
    gpu:
        Default GPU for planning and prediction.
    version:
        Optimization level, ``"V3"`` by default (all optimizations).

    Examples
    --------
    >>> import numpy as np
    >>> op = NMSpMM(NMPattern(2, 4, vector_length=4))
    >>> rng = np.random.default_rng(0)
    >>> b = rng.standard_normal((64, 32)).astype(np.float32)
    >>> a = rng.standard_normal((16, 64)).astype(np.float32)
    >>> handle = op.prepare(b)
    >>> c = op.execute(a, handle)
    >>> c.shape
    (16, 32)
    """

    def __init__(
        self,
        pattern: NMPattern,
        gpu: "str | GPUSpec" = "A100",
        version: "str | OptimizationVersion" = "V3",
    ):
        self.pattern = pattern
        self.gpu = resolve_gpu(gpu)
        self.version = OptimizationVersion.parse(version)

    # ------------------------------------------------------------------
    # Offline
    # ------------------------------------------------------------------
    def prepare(
        self, b: np.ndarray, *, already_pruned: bool = False
    ) -> SparseHandle:
        """Prune (unless ``already_pruned``) and compress the weights.

        Returns a :class:`SparseHandle` reusable across many
        :meth:`execute` calls — the paper's offline phase.
        """
        b = as_f32(check_matrix("b", b))
        if already_pruned:
            compressed = compress(self.pattern, b)
        else:
            pruned, mask = prune_dense(self.pattern, b)
            compressed = compress(self.pattern, pruned, mask)
        return SparseHandle(compressed=compressed)

    # ------------------------------------------------------------------
    # Online
    # ------------------------------------------------------------------
    def plan_for(
        self, m: int, handle: SparseHandle, params: TileParams | None = None
    ) -> ExecutionPlan:
        """The launch plan for batch size ``m`` against these weights."""
        return build_plan(
            m,
            handle.n,
            handle.k,
            self.pattern,
            self.gpu,
            version=self.version,
            params=params,
        )

    def execute(
        self,
        a: np.ndarray,
        handle: SparseHandle,
        *,
        params: TileParams | None = None,
        trace: KernelTrace | None = None,
    ) -> np.ndarray:
        """Compute ``C = A (*) (B', D)`` with the strategy the plan
        selects (packed kernel at high sparsity, blocked otherwise)."""
        a = as_f32(check_matrix("a", a))
        if a.shape[1] < handle.k:
            raise ShapeError(
                f"A has k={a.shape[1]} but the prepared weights expect "
                f"k={handle.k}"
            )
        plan = self.plan_for(a.shape[0], handle, params)
        if plan.uses_packing:
            ws = min(plan.ws, handle.compressed.w)
            col_info = handle.col_info(ws, plan.params.ns)
            return nm_spmm_packed(
                a, handle.compressed, plan.params, col_info, trace=trace
            )
        return nm_spmm_blocked(a, handle.compressed, plan.params, trace=trace)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        m: int,
        n: int | None = None,
        k: int | None = None,
        *,
        handle: SparseHandle | None = None,
        gpu: "str | GPUSpec | None" = None,
        version: "str | OptimizationVersion | None" = None,
        params: TileParams | None = None,
    ):
        """Model the launch on a (possibly different) GPU; returns a
        :class:`~repro.model.timing.KernelReport`."""
        if handle is not None:
            n, k = handle.n, handle.k
        if n is None or k is None:
            raise PlanError("predict() needs either a handle or explicit n and k")
        plan = build_plan(
            m,
            n,
            k,
            self.pattern,
            gpu if gpu is not None else self.gpu,
            version=version if version is not None else self.version,
            params=params,
        )
        return plan.simulate()


def nm_spmm(
    a: np.ndarray,
    b: np.ndarray,
    pattern: NMPattern,
    *,
    already_pruned: bool = False,
) -> np.ndarray:
    """One-shot convenience: prune ``b`` under ``pattern`` and return
    ``A (*) (B', D)``."""
    op = NMSpMM(pattern)
    handle = op.prepare(b, already_pruned=already_pruned)
    return op.execute(a, handle)
