"""User-facing facade: prune, compress, execute, predict.

:class:`NMSpMM` bundles the full workflow of Fig. 2: offline
preparation of the weight matrix (pruning, compression, col_info
pre-processing) and online execution via the strategy- and
version-appropriate kernel, plus performance prediction on any
catalogued GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backends import (
    AUTO_BACKEND,
    AutoSelector,
    ExecutionRequest,
    ExecutionResult,
    get_backend,
)
from repro.backends.registry import deprecated_execute_backends
from repro.core.plan import ExecutionPlan, build_plan
from repro.core.versions import OptimizationVersion
from repro.errors import ConfigurationError, PlanError, ShapeError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.kernels.blocked import KernelTrace
from repro.kernels.tiling import TileParams
from repro.sparsity.colinfo import ColumnInfo, preprocess_offline
from repro.sparsity.compress import NMCompressedMatrix, compress
from repro.sparsity.config import NMPattern
from repro.sparsity.gather import GatherLayout, build_gather_layout
from repro.sparsity.pruning import prune_dense
from repro.utils.arrays import as_f32
from repro.utils.cache import LRUCache
from repro.utils.validation import check_matrix

__all__ = ["SparseHandle", "NMSpMM", "nm_spmm"]


def __getattr__(name: str):
    # Deprecated shim: the frozen tuple became the backend registry.
    if name == "EXECUTE_BACKENDS":
        return deprecated_execute_backends("repro.core.api.EXECUTE_BACKENDS")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Key under which a plan is cached on a handle:
#: ``(m, gpu_name, version, explicit_params)``.
PlanKey = tuple[int, str, str, "TileParams | None"]

#: Bound on per-handle cached plans; beyond this the least recently
#: used entry is dropped so a long-lived handle served with
#: ever-varying batch sizes cannot grow without limit (serving-scale
#: reuse should go through :class:`repro.serve.cache.PlanCache` plus
#: row bucketing).
PLAN_CACHE_CAPACITY = 128


@dataclass
class SparseHandle:
    """Prepared weights: the compressed matrix plus cached offline
    pre-processing results (one :class:`ColumnInfo` per block shape and
    one :class:`ExecutionPlan` per launch geometry).

    ``logical_k``/``logical_n`` are the dense weights' dimensions
    *before* compression padded them to pattern multiples; they default
    to the padded values when unknown (e.g. a handle built directly
    from a compressed matrix).
    """

    compressed: NMCompressedMatrix
    logical_k: "int | None" = None
    logical_n: "int | None" = None
    _colinfo_cache: dict[tuple[int, int], ColumnInfo] = field(default_factory=dict)
    _plan_cache: LRUCache = field(
        default_factory=lambda: LRUCache(PLAN_CACHE_CAPACITY)
    )
    _gather_layout: "GatherLayout | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.logical_k is not None and not (
            1 <= self.logical_k <= self.compressed.k
        ):
            raise ShapeError(
                f"logical_k={self.logical_k} must be in [1, "
                f"{self.compressed.k}] (the compressed k)"
            )
        if self.logical_n is not None and not (
            1 <= self.logical_n <= self.compressed.n
        ):
            raise ShapeError(
                f"logical_n={self.logical_n} must be in [1, "
                f"{self.compressed.n}] (the compressed n)"
            )

    @property
    def pattern(self) -> NMPattern:
        return self.compressed.pattern

    @property
    def k(self) -> int:
        """Padded reduction dimension (what the kernels consume)."""
        return self.compressed.k

    @property
    def n(self) -> int:
        """Padded output dimension (what the kernels produce)."""
        return self.compressed.n

    @property
    def k_logical(self) -> int:
        """The original weights' k (activations naturally have this)."""
        return self.logical_k if self.logical_k is not None else self.k

    @property
    def n_logical(self) -> int:
        """The original weights' n (outputs are trimmed to this)."""
        return self.logical_n if self.logical_n is not None else self.n

    def col_info(self, ws: int, ns: int) -> ColumnInfo:
        """The offline pre-processing output for a block shape, cached
        (Listing 3's PreProcessing runs once per deployment)."""
        key = (ws, ns)
        if key not in self._colinfo_cache:
            self._colinfo_cache[key] = preprocess_offline(self.compressed, ws, ns)
        return self._colinfo_cache[key]

    def gather_layout(self) -> GatherLayout:
        """The fast backend's batched-GEMM layout for these weights,
        built on first use and cached for the handle's lifetime
        (:meth:`NMSpMM.prepare` builds it eagerly so serving never pays
        the conversion online)."""
        if self._gather_layout is None:
            self._gather_layout = build_gather_layout(self.compressed)
        return self._gather_layout

    def cached_plan(self, key: PlanKey) -> "ExecutionPlan | None":
        """A previously stored plan for this launch geometry, if any."""
        return self._plan_cache.get(key)  # type: ignore[return-value]

    def store_plan(self, key: PlanKey, plan: ExecutionPlan) -> None:
        """Remember a plan so repeat launches skip plan construction
        (bounded LRU: the least recently used entry falls out past
        :data:`PLAN_CACHE_CAPACITY`)."""
        self._plan_cache.put(key, plan)

    @property
    def plan_cache_size(self) -> int:
        return len(self._plan_cache)

    def clear_plan_cache(self) -> None:
        self._plan_cache.clear()

    def dense(self) -> np.ndarray:
        """The pruned dense weights (for verification)."""
        return self.compressed.to_dense()


class NMSpMM:
    """The NM-SpMM operator.

    Parameters
    ----------
    pattern:
        The N:M sparsity pattern (N retained of every M vectors of
        length L).
    gpu:
        Default GPU for planning and prediction.
    version:
        Optimization level, ``"V3"`` by default (all optimizations).
    selector:
        The ``backend="auto"`` policy; defaults to the cost-aware
        :class:`~repro.backends.auto.AutoSelector`.  Inspect a choice
        without executing via ``op.selector.explain(op.build_request(
        a, handle))``.

    Examples
    --------
    >>> import numpy as np
    >>> op = NMSpMM(NMPattern(2, 4, vector_length=4))
    >>> rng = np.random.default_rng(0)
    >>> b = rng.standard_normal((64, 32)).astype(np.float32)
    >>> a = rng.standard_normal((16, 64)).astype(np.float32)
    >>> handle = op.prepare(b)
    >>> c = op.execute(a, handle)
    >>> c.shape
    (16, 32)
    """

    def __init__(
        self,
        pattern: NMPattern,
        gpu: "str | GPUSpec" = "A100",
        version: "str | OptimizationVersion" = "V3",
        selector: "AutoSelector | None" = None,
    ):
        self.pattern = pattern
        self.gpu = resolve_gpu(gpu)
        self.version = OptimizationVersion.parse(version)
        self.selector = selector if selector is not None else AutoSelector()

    # ------------------------------------------------------------------
    # Offline
    # ------------------------------------------------------------------
    def prepare(
        self, b: np.ndarray, *, already_pruned: bool = False
    ) -> SparseHandle:
        """Prune (unless ``already_pruned``) and compress the weights.

        Returns a :class:`SparseHandle` reusable across many
        :meth:`execute` calls — the paper's offline phase.
        """
        b = as_f32(check_matrix("b", b))
        logical_k, logical_n = b.shape
        if already_pruned:
            compressed = compress(self.pattern, b)
        else:
            pruned, mask = prune_dense(self.pattern, b)
            compressed = compress(self.pattern, pruned, mask)
        handle = SparseHandle(
            compressed=compressed, logical_k=logical_k, logical_n=logical_n
        )
        # Offline phase pays the format conversion: the fast backend's
        # gather layout is part of the prepared representation.
        handle.gather_layout()
        return handle

    # ------------------------------------------------------------------
    # Online
    # ------------------------------------------------------------------
    def plan_for(
        self,
        m: int,
        handle: SparseHandle,
        params: TileParams | None = None,
        *,
        use_cache: bool = False,
    ) -> ExecutionPlan:
        """The launch plan for batch size ``m`` against these weights.

        With ``use_cache`` the plan is memoized on the handle keyed by
        ``(m, gpu, version, params)`` — the serving runtime's fast path,
        where the same launch geometry recurs for every batch.
        """
        key: PlanKey = (m, self.gpu.name, self.version.value, params)
        if use_cache:
            cached = handle.cached_plan(key)
            if cached is not None:
                return cached
        plan = build_plan(
            m,
            handle.n,
            handle.k,
            self.pattern,
            self.gpu,
            version=self.version,
            params=params,
        )
        if use_cache:
            handle.store_plan(key, plan)
        return plan

    def build_request(
        self,
        a: np.ndarray,
        handle: SparseHandle,
        *,
        params: TileParams | None = None,
        trace: KernelTrace | None = None,
        plan: ExecutionPlan | None = None,
        use_plan_cache: bool = False,
        backend: str = AUTO_BACKEND,
        tracer=None,
    ) -> ExecutionRequest:
        """Validate operands and bundle one execution's inputs into an
        :class:`~repro.backends.base.ExecutionRequest`.

        ``A`` may have either the handle's logical ``k`` (the original
        weights' row count — zero-padded here, matching the padding
        compression applied to the weights) or the padded ``k``.  An
        explicit ``plan`` must match the operand shapes and the
        handle's pattern; when none is given the request carries a
        planner so backends that need one (the structural executors,
        analytic traces) can build it lazily — trace-less fast paths
        never pay plan construction.  A ``tracer``
        (:class:`~repro.obs.tracer.Tracer`) rides along on the request
        so dispatch and selection report spans/events.
        """
        a = as_f32(check_matrix("a", a))
        if a.shape[1] == handle.k_logical and handle.k_logical != handle.k:
            pad = np.zeros(
                (a.shape[0], handle.k - a.shape[1]), dtype=np.float32
            )
            a = np.hstack([a, pad])
        elif a.shape[1] != handle.k:
            expected = (
                f"k={handle.k}"
                if handle.k == handle.k_logical
                else f"k={handle.k_logical} (or padded k={handle.k})"
            )
            raise ShapeError(
                f"A has k={a.shape[1]} but the prepared weights expect "
                f"{expected}"
            )
        if plan is not None:
            expected = (a.shape[0], handle.n, handle.k)
            got = (plan.shape.m, plan.shape.n, plan.shape.k)
            if got != expected:
                raise PlanError(
                    f"plan was built for (m, n, k)={got} but the operands "
                    f"have (m, n, k)={expected}"
                )
            if plan.pattern != handle.pattern:
                raise PlanError(
                    f"plan pattern {plan.pattern.label()} does not match "
                    f"the handle's pattern {handle.pattern.label()}"
                )
        request = ExecutionRequest(
            a=a,
            handle=handle,
            params=params,
            plan=plan,
            trace=trace,
            use_plan_cache=use_plan_cache,
            backend=backend,
            planner=lambda req: self.plan_for(
                req.m, req.handle, req.params, use_cache=req.use_plan_cache
            ),
            tracer=tracer,
        )
        if use_plan_cache and plan is None:
            # The caller explicitly wants the handle's plan cache warmed
            # even on backends that never consult the plan.
            request.resolve_plan()
        return request

    def run(self, request: ExecutionRequest) -> ExecutionResult:
        """Dispatch a request to its backend and return the full
        :class:`~repro.backends.base.ExecutionResult` (output plus
        backend provenance, plan, timing, and — under ``"auto"`` — the
        selector's decision).

        With a tracer on the request, the backend's ``run()`` is
        recorded as a ``backend.<name>.run`` span on the ``host``
        track.  Host execution time is wall-clock (the NumPy kernels
        really run), so these spans are *measured*, unlike the
        modeled-clock engine/device spans — deterministic trace tests
        run with numerics off, where no backend ever executes.  A
        tracer constructed with ``modeled_host_spans=True`` opts out:
        the span is stamped with the plan's *modeled* seconds
        (``measured=False``), so even a numerics-on chaos run exports
        a byte-identical trace per seed.
        """
        name = request.backend
        decision = None
        if name == AUTO_BACKEND:
            decision = self.selector.explain(request)
            name = decision.backend
        backend = get_backend(name)
        verdict = backend.supports(request)
        if verdict is not True:
            reason = verdict if isinstance(verdict, str) else "unsupported request"
            raise ConfigurationError(
                f"backend {name!r} cannot run this request: {reason}"
            )
        result = backend.run(request)
        tracer = request.tracer
        if tracer is not None:
            if getattr(tracer, "modeled_host_spans", False):
                span_s = request.resolve_plan().simulate().seconds
                measured = False
            else:
                span_s = result.seconds
                measured = True
            tracer.add_span(
                f"backend.{name}.run",
                tracer.now,
                tracer.now + span_s,
                track="host",
                parent=None,
                backend=name,
                m=request.m,
                k=request.k,
                n=request.handle.n,
                measured=measured,
            )
            tracer.metrics.counter(
                "backend_runs_total", "backend dispatches by name"
            ).inc(backend=name)
        result.decision = decision
        return result

    def execute(
        self,
        a: np.ndarray,
        handle: SparseHandle,
        *,
        params: TileParams | None = None,
        trace: KernelTrace | None = None,
        plan: ExecutionPlan | None = None,
        use_plan_cache: bool = False,
        backend: str = AUTO_BACKEND,
        tracer=None,
    ) -> np.ndarray:
        """Compute ``C = A (*) (B', D)``.

        A thin facade over the backend registry: the keywords are
        bundled into an :class:`~repro.backends.base.ExecutionRequest`
        (:meth:`build_request`), dispatched (:meth:`run`) to the named
        backend — or to the one the cost-aware
        :class:`~repro.backends.auto.AutoSelector` picks under
        ``backend="auto"``, the default — and the padded output is
        trimmed to the handle's logical ``n``.

        Builtin backends (see ``python -m repro backends`` or
        :func:`repro.backends.available_backends`):

        * ``"fast"`` — the batched gather-GEMM kernel over the handle's
          precomputed :class:`~repro.sparsity.gather.GatherLayout`; a
          requested ``trace`` is filled *analytically* from the plan.
        * ``"dense_scatter"`` — scatter the compressed values back to a
          dense B and run one SGEMM; wins below the gather-GEMM's
          vector-length efficiency crossover (e.g. 2:4 with L=4).
        * ``"structural"`` — the per-block executors that mirror the
          CUDA kernel's structure (packed at high sparsity, blocked
          otherwise) and record the trace event by event.

        Any backend registered via
        :func:`repro.backends.register_backend` is accepted by name.
        A precomputed ``plan`` (e.g. from :meth:`plan_for` or a serving
        plan cache) skips plan construction entirely.
        """
        request = self.build_request(
            a,
            handle,
            params=params,
            trace=trace,
            plan=plan,
            use_plan_cache=use_plan_cache,
            backend=backend,
            tracer=tracer,
        )
        out = self.run(request).output
        # Trim the columns compression padded onto B (they are zero, so
        # dropping them loses nothing).
        if handle.n_logical != out.shape[1]:
            out = out[:, : handle.n_logical]
        return out

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict(
        self,
        m: int,
        n: int | None = None,
        k: int | None = None,
        *,
        handle: SparseHandle | None = None,
        gpu: "str | GPUSpec | None" = None,
        version: "str | OptimizationVersion | None" = None,
        params: TileParams | None = None,
    ):
        """Model the launch on a (possibly different) GPU; returns a
        :class:`~repro.model.timing.KernelReport`."""
        if handle is not None:
            n, k = handle.n, handle.k
        if n is None or k is None:
            raise PlanError("predict() needs either a handle or explicit n and k")
        plan = build_plan(
            m,
            n,
            k,
            self.pattern,
            gpu if gpu is not None else self.gpu,
            version=version if version is not None else self.version,
            params=params,
        )
        return plan.simulate()


def nm_spmm(
    a: np.ndarray,
    b: np.ndarray,
    pattern: NMPattern,
    *,
    already_pruned: bool = False,
    gpu: "str | GPUSpec" = "A100",
    version: "str | OptimizationVersion" = "V3",
    backend: str = "auto",
) -> np.ndarray:
    """One-shot convenience: prune ``b`` under ``pattern`` and return
    ``A (*) (B', D)``.

    This rebuilds the operator (GPU resolution, pruning, compression and
    plan construction) on **every** call — it is the slow path, meant
    for experiments and doctests.  For repeated products against the
    same weights, construct :class:`NMSpMM` once, call
    :meth:`NMSpMM.prepare` once, and reuse the handle with
    :meth:`NMSpMM.execute` (the paper's offline/online split); for
    serving workloads use :mod:`repro.serve`.

    ``gpu`` and ``version`` pass through to the :class:`NMSpMM`
    constructor so one-shot calls can still target a specific catalogued
    GPU and optimization level; ``backend`` passes through to
    :meth:`NMSpMM.execute`.
    """
    op = NMSpMM(pattern, gpu=gpu, version=version)
    handle = op.prepare(b, already_pruned=already_pruned)
    return op.execute(a, handle, backend=backend)
