"""Execution-plan construction.

An :class:`ExecutionPlan` freezes every decision the paper's kernel
makes before launch: the N:M pattern, the blocking parameters
(Table I + Eq. 5), the load strategy (packing vs non-packing) and the
optimization version.  The same plan drives both the functional
executor (numerics) and the performance simulator (timing), so what is
tested is what is timed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.strategy import LoadStrategy
from repro.core.versions import OptimizationVersion
from repro.errors import PlanError
from repro.gpu.catalog import resolve_gpu
from repro.gpu.spec import GPUSpec
from repro.kernels.tiling import MatrixSizeClass, TileParams, params_for
from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern

__all__ = ["ExecutionPlan", "build_plan"]


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully resolved kernel launch plan."""

    problem: SparseProblem
    params: TileParams
    version: OptimizationVersion
    strategy: LoadStrategy
    gpu: GPUSpec

    def __post_init__(self) -> None:
        if self.params.ks <= 0:
            raise PlanError("plan requires resolved ks")
        if self.params.ks % self.pattern.m != 0:
            raise PlanError(
                f"ks={self.params.ks} is not a multiple of M={self.pattern.m}"
            )
        if (
            self.strategy is LoadStrategy.PACKING
            and not self.version.uses_packing
        ):
            raise PlanError(f"{self.version.value} cannot use the packing strategy")

    # ------------------------------------------------------------------
    @property
    def pattern(self) -> NMPattern:
        return self.problem.pattern

    @property
    def shape(self) -> ProblemShape:
        return self.problem.shape

    @property
    def ws(self) -> int:
        return self.params.ws(self.pattern)

    @property
    def qs(self) -> int:
        return self.params.qs(self.pattern)

    @property
    def uses_packing(self) -> bool:
        return self.strategy is LoadStrategy.PACKING

    # ------------------------------------------------------------------
    def simulate(self):
        """Model this plan's launch (returns a
        :class:`~repro.model.timing.KernelReport`)."""
        from repro.model.calibration import calibration_for
        from repro.model.engine import KernelSimulator
        from repro.model.profiles import profile_for_version

        sim = KernelSimulator(spec=self.gpu, calib=calibration_for(self.gpu))
        profile = profile_for_version(
            self.version.value,
            sim.calib,
            high_sparsity=self.strategy is LoadStrategy.PACKING,
        )
        return sim.run(self.problem, self.params, profile)

    def analytic_trace(self, col_info=None, *, index_itemsize=None):
        """The :class:`~repro.kernels.blocked.KernelTrace` this plan's
        structural executor would record, in closed form (no data is
        touched; packing plans need ``col_info``)."""
        from repro.kernels.analytic import analytic_trace

        return analytic_trace(
            self, col_info=col_info, index_itemsize=index_itemsize
        )

    def analyze(self):
        """Run the §III-A analysis for this plan."""
        from repro.core.analysis import analyze

        return analyze(
            self.pattern,
            self.shape.m,
            self.shape.n,
            self.shape.k,
            self.gpu,
            params=self.params,
        )

    def describe(self) -> str:
        return (
            f"ExecutionPlan[{self.problem.label()} | {self.params.label()} | "
            f"{self.version.value} | {self.strategy.value} | {self.gpu.name}]"
        )


def build_plan(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern,
    gpu: "str | GPUSpec" = "A100",
    *,
    version: "str | OptimizationVersion" = "V3",
    params: TileParams | None = None,
    size_class: MatrixSizeClass | None = None,
) -> ExecutionPlan:
    """Build the launch plan the paper's heuristics would choose:
    Table I blocking for the matrix class, Eq. 5 ``ks``, the 70%-rule
    strategy, V3 pipeline."""
    spec = resolve_gpu(gpu)
    ver = OptimizationVersion.parse(version)
    if params is None:
        params = params_for(
            m, n, k, pattern, spec.smem_bytes_per_sm, size_class=size_class
        )
    elif params.ks <= 0:
        params = params.with_ks(pattern, spec.smem_bytes_per_sm, k)
    strategy = ver.strategy_for(pattern)
    problem = SparseProblem(ProblemShape(m, n, k), pattern)
    return ExecutionPlan(
        problem=problem,
        params=params,
        version=ver,
        strategy=strategy,
        gpu=spec,
    )
