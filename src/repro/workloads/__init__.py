"""Evaluation workloads: the paper's datasets and generators."""

from repro.workloads.llama import (
    LlamaModel,
    LLAMA_MODELS,
    get_llama_model,
    llama_layer_shapes,
    build_paper_dataset,
    DataPoint,
)
from repro.workloads.cases import (
    TABLE_II_CASES,
    PAPER_SPARSITY_PATTERNS,
    paper_patterns,
    table_ii_case,
)
from repro.workloads.synthetic import (
    random_dense,
    random_sparse_problem,
    make_problem_suite,
)

__all__ = [
    "LlamaModel",
    "LLAMA_MODELS",
    "get_llama_model",
    "llama_layer_shapes",
    "build_paper_dataset",
    "DataPoint",
    "TABLE_II_CASES",
    "PAPER_SPARSITY_PATTERNS",
    "paper_patterns",
    "table_ii_case",
    "random_dense",
    "random_sparse_problem",
    "make_problem_suite",
]
