"""Evaluation workloads: the paper's datasets and generators."""

from repro.workloads.llama import (
    LLAMA_MODELS,
    DataPoint,
    LlamaModel,
    build_paper_dataset,
    get_llama_model,
    llama_layer_shapes,
)
from repro.workloads.cases import (
    PAPER_SPARSITY_PATTERNS,
    TABLE_II_CASES,
    paper_patterns,
    table_ii_case,
)
from repro.workloads.synthetic import make_problem_suite, random_dense, random_sparse_problem

__all__ = [
    "LlamaModel",
    "LLAMA_MODELS",
    "get_llama_model",
    "llama_layer_shapes",
    "build_paper_dataset",
    "DataPoint",
    "TABLE_II_CASES",
    "PAPER_SPARSITY_PATTERNS",
    "paper_patterns",
    "table_ii_case",
    "random_dense",
    "random_sparse_problem",
    "make_problem_suite",
]
