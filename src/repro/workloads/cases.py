"""Fixed evaluation cases: Table II shapes and the paper's sparsity
levels."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.model.workload import ProblemShape
from repro.sparsity.config import NMPattern

__all__ = [
    "TABLE_II_CASES",
    "PAPER_SPARSITY_PATTERNS",
    "paper_patterns",
    "table_ii_case",
    "STEPWISE_SHAPE",
]

#: Table II: the six labelled matrices for the blocking-parameter
#: experiment (Fig. 8).  A/B are small, C/D medium, E/F large.
TABLE_II_CASES: dict[str, ProblemShape] = {
    "A": ProblemShape(m=512, n=512, k=512),
    "B": ProblemShape(m=512, n=1024, k=1024),
    "C": ProblemShape(m=512, n=2048, k=2048),
    "D": ProblemShape(m=1024, n=2048, k=2048),
    "E": ProblemShape(m=2048, n=4096, k=4096),
    "F": ProblemShape(m=4096, n=4096, k=4096),
}

#: The shape used by the step-wise (Fig. 7) and roofline (Fig. 10)
#: experiments.
STEPWISE_SHAPE = ProblemShape(m=4096, n=4096, k=4096)

#: The four benchmark sparsities expressed as N:M over an M=32 window
#: (plus the 0% dense configuration the paper runs with M = N = 32).
PAPER_SPARSITY_PATTERNS: dict[float, tuple[int, int]] = {
    0.0: (32, 32),
    0.50: (16, 32),
    0.625: (12, 32),
    0.75: (8, 32),
    0.875: (4, 32),
}


def paper_patterns(
    vector_length: int = 32, *, include_dense: bool = False
) -> list[NMPattern]:
    """The benchmark patterns in sparsity order."""
    out = []
    for sparsity, (n, m) in sorted(PAPER_SPARSITY_PATTERNS.items()):
        if sparsity == 0.0 and not include_dense:
            continue
        out.append(NMPattern(n, m, vector_length))
    return out


def table_ii_case(label: str) -> ProblemShape:
    """Look up a Table II case by letter.

    >>> table_ii_case("A").m
    512
    """
    key = label.strip().upper()
    if key not in TABLE_II_CASES:
        raise ConfigurationError(
            f"unknown Table II case {label!r}; expected one of "
            f"{sorted(TABLE_II_CASES)}"
        )
    return TABLE_II_CASES[key]
