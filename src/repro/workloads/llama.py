"""The 100-point Llama dataset of §IV-A.

The paper: "Our dataset consists of 100 data points... extracted from
linear layers in Llama models.  In detail, the input sequence m ranges
from 2^8 to 2^12, yielding five distinct values.  Each value is
associated with 20 data points, where the tuples (n, k) are extracted
from the Llama model."

The first-generation Llama family has four public sizes whose linear
layers give exactly 20 distinct (n, k) tuples — five layer kinds per
model:

======== ======== ======= =========
model    hidden    ffn     vocab
======== ======== ======= =========
Llama-7B   4096    11008   32000
Llama-13B  5120    13824   32000
Llama-30B  6656    17920   32000
Llama-65B  8192    22016   32000
======== ======== ======= =========

Layer kinds (weight is ``k x n`` with activations ``m x k``):
attention q/k/v/o (h -> h), MLP gate and up (h -> ffn), MLP down
(ffn -> h), and the LM head (h -> vocab).  Gate and up share a shape,
so the five distinct tuples per model are: attention, gate/up, down,
head, and the attention-concatenated qkv projection (h -> 3h) used by
fused implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.model.workload import ProblemShape
from repro.utils.validation import check_positive_int

__all__ = [
    "LlamaModel",
    "LLAMA_MODELS",
    "get_llama_model",
    "llama_layer_shapes",
    "llama_layer_shape",
    "LLAMA_LAYER_KINDS",
    "DataPoint",
    "build_paper_dataset",
    "PAPER_M_VALUES",
]

#: The five input-sequence lengths: m = 2^8 .. 2^12.
PAPER_M_VALUES: tuple[int, ...] = (256, 512, 1024, 2048, 4096)


@dataclass(frozen=True)
class LlamaModel:
    """Public geometry of one Llama checkpoint."""

    name: str
    hidden: int
    ffn: int
    vocab: int = 32000

    def __post_init__(self) -> None:
        check_positive_int("hidden", self.hidden)
        check_positive_int("ffn", self.ffn)
        check_positive_int("vocab", self.vocab)

    def scaled(self, factor: int) -> "LlamaModel":
        """A geometry-preserving shrink of this model: every dimension
        divided by ``factor`` (which must divide them all).  The serving
        simulator uses this so Llama-*shaped* traffic stays cheap enough
        for the NumPy kernels while keeping the layer aspect ratios.
        """
        check_positive_int("factor", factor)
        if (
            self.hidden % factor
            or self.ffn % factor
            or self.vocab % factor
        ):
            raise ConfigurationError(
                f"factor {factor} does not divide {self.name}'s dimensions "
                f"(hidden={self.hidden}, ffn={self.ffn}, vocab={self.vocab})"
            )
        return LlamaModel(
            name=f"{self.name}/{factor}x-scaled",
            hidden=self.hidden // factor,
            ffn=self.ffn // factor,
            vocab=self.vocab // factor,
        )


LLAMA_MODELS: tuple[LlamaModel, ...] = (
    LlamaModel("Llama-7B", hidden=4096, ffn=11008),
    LlamaModel("Llama-13B", hidden=5120, ffn=13824),
    LlamaModel("Llama-30B", hidden=6656, ffn=17920),
    LlamaModel("Llama-65B", hidden=8192, ffn=22016),
)


def get_llama_model(name: str) -> LlamaModel:
    """Look up a Llama checkpoint by name, case-insensitively
    (``"llama-7b"`` and ``"Llama-7B"`` both resolve).

    >>> get_llama_model("llama-7b").hidden
    4096
    """
    wanted = name.strip().lower()
    for model in LLAMA_MODELS:
        if model.name.lower() == wanted:
            return model
    known = ", ".join(m.name for m in LLAMA_MODELS)
    raise ConfigurationError(f"unknown Llama model {name!r}; known: {known}")


def llama_layer_shapes(model: LlamaModel) -> list[tuple[str, int, int]]:
    """The five distinct ``(layer, n, k)`` weight tuples of one model,
    where the linear layer computes ``[m, k] @ [k, n]``."""
    h, f, v = model.hidden, model.ffn, model.vocab
    return [
        ("attn-qkvo", h, h),
        ("attn-qkv-fused", 3 * h, h),
        ("mlp-gate-up", f, h),
        ("mlp-down", h, f),
        ("lm-head", v, h),
    ]


def llama_layer_shape(model: "str | LlamaModel", layer: str) -> tuple[int, int]:
    """The ``(n, k)`` weight shape of one named layer of one model
    (a keyed view of :func:`llama_layer_shapes`, for consumers that
    address a single layer — e.g. the distributed benchmark).

    >>> llama_layer_shape("llama-7b", "attn-qkvo")
    (4096, 4096)
    """
    if isinstance(model, str):
        model = get_llama_model(model)
    for name, n, k in llama_layer_shapes(model):
        if name == layer:
            return n, k
    raise ConfigurationError(
        f"unknown layer {layer!r}; known: {sorted(LLAMA_LAYER_KINDS)}"
    )


#: The five layer kinds every Llama checkpoint exposes — derived from
#: :func:`llama_layer_shapes` so there is a single source of truth for
#: consumers that need the names without a model (e.g. CLI choices).
LLAMA_LAYER_KINDS: tuple[str, ...] = tuple(
    name for name, _, _ in llama_layer_shapes(LLAMA_MODELS[0])
)


@dataclass(frozen=True)
class DataPoint:
    """One of the 100 benchmark points."""

    index: int
    model: str
    layer: str
    shape: ProblemShape

    def label(self) -> str:
        return f"#{self.index:03d} {self.model}/{self.layer} {self.shape.label()}"


def build_paper_dataset() -> list[DataPoint]:
    """The full 100-point dataset: 5 values of m x 20 (n, k) tuples,
    ordered by m then model then layer (the paper's data-point index
    axis of Fig. 9)."""
    points: list[DataPoint] = []
    index = 0
    for m in PAPER_M_VALUES:
        for model in LLAMA_MODELS:
            for layer, n, k in llama_layer_shapes(model):
                points.append(
                    DataPoint(
                        index=index,
                        model=model.name,
                        layer=layer,
                        shape=ProblemShape(m=m, n=n, k=k),
                    )
                )
                index += 1
    if len(points) != 100:
        raise AssertionError(f"dataset must have 100 points, got {len(points)}")
    return points
