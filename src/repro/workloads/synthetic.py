"""Seeded synthetic matrix and problem generation for tests, examples
and functional benchmarks."""

from __future__ import annotations

import numpy as np

from repro.model.workload import ProblemShape, SparseProblem
from repro.sparsity.config import NMPattern
from repro.utils.validation import check_positive_int

__all__ = ["random_dense", "random_sparse_problem", "make_problem_suite"]


def random_dense(
    rows: int,
    cols: int,
    seed: int | np.random.Generator = 0,
    *,
    scale: float = 1.0,
) -> np.ndarray:
    """A reproducible float32 Gaussian matrix."""
    check_positive_int("rows", rows)
    check_positive_int("cols", cols)
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    return (rng.standard_normal((rows, cols)) * scale).astype(np.float32)


def random_sparse_problem(
    m: int,
    n: int,
    k: int,
    pattern: NMPattern,
    seed: int = 0,
) -> tuple[SparseProblem, np.ndarray, np.ndarray]:
    """A seeded ``(problem, A, B_dense)`` triple sized for the pattern
    (k padded to M, n to L)."""
    problem = SparseProblem(ProblemShape(m, n, k), pattern)
    rng = np.random.default_rng(seed)
    a = random_dense(m, pattern.padded_k(k), rng)
    b = random_dense(pattern.padded_k(k), pattern.padded_n(n), rng)
    return problem, a, b


def make_problem_suite(
    pattern: NMPattern, *, seed: int = 0
) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """A small suite of (label, A, B) pairs spanning the shape corner
    cases the kernels must handle: square, tall, wide, single-window
    and padding-required shapes."""
    ell = pattern.vector_length
    m_dim = pattern.m
    shapes = [
        ("square", 4 * m_dim, 4 * ell, 4 * m_dim),
        ("tall", 8 * m_dim, 2 * ell, 2 * m_dim),
        ("wide", 2 * m_dim, 8 * ell, 2 * m_dim),
        ("single-window", m_dim, ell, m_dim),
        ("deep", 2 * m_dim, 2 * ell, 8 * m_dim),
    ]
    rng = np.random.default_rng(seed)
    out = []
    for label, m, n, k in shapes:
        a = random_dense(m, k, rng)
        b = random_dense(k, n, rng)
        out.append((label, a, b))
    return out
