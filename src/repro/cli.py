"""Command-line entry points: ``python -m repro <experiment>``.

Regenerates each paper artefact from the performance model and prints
the same rows/series the paper reports::

    python -m repro fig7            # step-wise optimization bars
    python -m repro fig8            # blocking-parameter kernels
    python -m repro fig9 --gpu 3090 # comparison on the 100-point set
    python -m repro fig10           # roofline analysis
    python -m repro table1          # autotuner vs Table I
    python -m repro serve-sim       # dynamic-batching serving simulation
    python -m repro backends        # registered execution backends
    python -m repro trace summarize # top-k table from a serve-sim trace
    python -m repro trace critical-path  # per-request latency buckets
    python -m repro trace attribute # roofline placement of gpu.launches
    python -m repro trace diff      # regression-gate two traces
    python -m repro bench diff      # regression-gate two BENCH_*.json
    python -m repro all             # everything
"""

from __future__ import annotations

import argparse
import sys

from repro._version import __version__
from repro.backends import backend_names
from repro.distributed import LINKS, SHARD_MODES
from repro.workloads.llama import LLAMA_LAYER_KINDS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nm-spmm",
        description="NM-SpMM reproduction: regenerate the paper's tables and figures.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="experiment", required=True)

    p7 = sub.add_parser("fig7", help="step-wise optimization evaluation (Fig. 7)")
    p7.add_argument("--gpus", nargs="+", default=["A100", "3090", "4090"])

    p8 = sub.add_parser("fig8", help="blocking-parameter kernels (Fig. 8)")
    p8.add_argument("--gpu", default="A100")

    p9 = sub.add_parser("fig9", help="comparison with related work (Fig. 9)")
    p9.add_argument("--gpu", default="A100")
    p9.add_argument("--limit", type=int, default=None, help="truncate the 100-point set")
    p9.add_argument("--per-point", action="store_true", help="print all points")

    p10 = sub.add_parser("fig10", help="roofline analysis (Fig. 10)")
    p10.add_argument("--gpu", default="A100")

    pt1 = sub.add_parser("table1", help="autotuner vs Table I parameters")
    pt1.add_argument("--gpu", default="A100")
    pt1.add_argument("--max-block", type=int, default=128)

    psw = sub.add_parser("sweep", help="custom shape/sparsity sweep")
    psw.add_argument("--shapes", nargs="+", default=["4096x4096x4096"],
                     help="MxNxK triples, e.g. 512x512x512")
    psw.add_argument("--sparsities", nargs="+", type=float,
                     default=[0.5, 0.625, 0.75, 0.875])
    psw.add_argument("--gpus", nargs="+", default=["A100"])
    psw.add_argument("--versions", nargs="+", default=["V3"])
    psw.add_argument("--vector-length", type=int, default=32)

    pv = sub.add_parser(
        "validate", help="cross-check the analytic model vs the kernels"
    )
    pv.add_argument("--n-ratio", type=int, default=2, help="pattern N")
    pv.add_argument("--m-ratio", type=int, default=8, help="pattern M")
    pv.add_argument("--vector-length", type=int, default=4)

    pss = sub.add_parser(
        "serve-sim",
        help="dynamic-batching serving simulation over Llama-shaped load",
    )
    pss.add_argument("--models", nargs="+", default=["llama-7b"],
                     help="Llama checkpoints to serve (e.g. llama-7b llama-13b)")
    pss.add_argument("--layer", default="attn-qkvo",
                     choices=LLAMA_LAYER_KINDS)
    pss.add_argument("--scale", type=int, default=16,
                     help="shrink every dimension by this factor (1 = true shapes)")
    pss.add_argument("--pattern", default="2:8", help="N:M sparsity, e.g. 2:8")
    pss.add_argument("--vector-length", type=int, default=8)
    pss.add_argument("--gpu", default="A100")
    pss.add_argument("--opt-version", default="V3", help="optimization level")
    pss.add_argument("--qps", type=float, default=200.0)
    pss.add_argument("--duration", type=float, default=5.0,
                     help="simulated seconds of arrivals")
    pss.add_argument("--arrival", choices=["poisson", "bursty"],
                     default="poisson")
    pss.add_argument("--seed", type=int, default=0)
    pss.add_argument("--sched", choices=["fifo", "priority", "slo-edf"],
                     default="fifo",
                     help="scheduling policy: arrival order, strict "
                          "priority tiers, or priority + earliest "
                          "deadline first")
    pss.add_argument("--decode-fraction", type=float, default=None,
                     metavar="FRAC",
                     help="emit this fraction of traffic as decode-shaped "
                          "multi-step sequences and serve them with "
                          "continuous batching (rolling in-flight batch)")
    pss.add_argument("--max-batch-requests", type=int, default=16)
    pss.add_argument("--max-batch-rows", type=int, default=256)
    pss.add_argument("--max-wait-ms", type=float, default=2.0)
    pss.add_argument("--cache-size", type=int, default=64,
                     help="plan-cache capacity (entries)")
    pss.add_argument("--backend", default="auto",
                     choices=list(backend_names()),
                     help="execution backend batches run with (from the "
                          "backend registry; auto = cost-aware selection)")
    pss.add_argument("--devices", type=int, default=1,
                     help="simulated device count; > 1 shards every model "
                          "tensor-parallel across the group")
    pss.add_argument("--shard", choices=list(SHARD_MODES), default="column",
                     help="tensor-parallel mode for --devices > 1: shard n "
                          "and all-gather outputs (column) or shard k and "
                          "all-reduce partials (row)")
    pss.add_argument("--link", choices=sorted(LINKS), default="nvlink",
                     help="interconnect of the simulated device group")
    pss.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject seeded chaos: ';'-separated clauses "
                          "like 'launch:p=0.2,start=1,end=3', "
                          "'devfail:device=1,at=2.5', "
                          "'slow:device=0,factor=3', or "
                          "'link:factor=0.1,extra-lat=2e-4,"
                          "period=0.25,duty=0.5'")
    pss.add_argument("--resilience", action="store_true",
                     help="enable the resilience machinery (retries "
                          "with backoff, request timeouts, circuit "
                          "breakers + re-sharding onto survivors, "
                          "admission load shedding)")
    pss.add_argument("--no-numerics", action="store_true",
                     help="modeled timing only; skip the NumPy kernels")
    pss.add_argument("--model-mode", action="store_true",
                     help="serve a whole Llama model through a "
                          "ModelExecutor: requests carry prompt/decode "
                          "lengths, prefill + per-token decode walk every "
                          "layer, and KV-cache bytes are accounted against "
                          "a simulated HBM budget (modeled timing only; "
                          "serves the first --models entry)")
    pss.add_argument("--blocks", type=int, default=2,
                     help="transformer blocks the model-mode executor "
                          "instantiates")
    pss.add_argument("--hbm-tokens", type=int, default=None,
                     metavar="TOKENS",
                     help="model-mode HBM budget as KV-token headroom "
                          "above the compressed weights (default: the "
                          "GPU catalog's dram_gb)")
    pss.add_argument("--hbm-bytes", type=int, default=None, metavar="BYTES",
                     help="model-mode HBM budget as an explicit byte "
                          "count (mutually exclusive with --hbm-tokens)")
    pss.add_argument("--kv-admission", choices=["kv-aware", "none"],
                     default="kv-aware",
                     help="model-mode admission: respect the HBM budget "
                          "(evict under pressure) or run the no-memory-"
                          "model baseline that thrashes on overflow")
    pss.add_argument("--prompt-lens", type=int, nargs="+",
                     default=[64, 128, 256], metavar="TOKENS",
                     help="model-mode per-request prompt lengths "
                          "(uniform draw)")
    pss.add_argument("--max-new-tokens", type=int, nargs="+",
                     default=[8, 16], metavar="TOKENS",
                     help="model-mode per-request decode lengths "
                          "(uniform draw)")
    pss.add_argument("--slo-ms", type=float, default=None,
                     help="model-mode per-request latency SLO")
    pss.add_argument("--json", default=None, metavar="PATH",
                     help="also write the summary as JSON")
    pss.add_argument("--trace", default=None, metavar="PATH",
                     help="record the run's span tree and write it here")
    pss.add_argument("--trace-format",
                     choices=["perfetto", "jsonl", "jsonl-stream"],
                     default="perfetto",
                     help="trace file format: Chrome trace-event JSON "
                          "(loadable in Perfetto/chrome://tracing), a "
                          "line-per-record JSONL event log, or the same "
                          "JSONL written incrementally while the run "
                          "executes (bounded tracer memory)")
    pss.add_argument("--metrics", default=None, metavar="PATH",
                     help="write the run's metrics in Prometheus text "
                          "exposition format")

    sub.add_parser(
        "backends",
        help="list registered execution backends and their capabilities",
    )

    plint = sub.add_parser(
        "lint",
        help="AST-based invariant linter: determinism, units, ledger "
             "and API discipline (the repro-lint CI gate)",
    )
    plint.add_argument("paths", nargs="*", default=["src"],
                       help="files or directories to lint (default: src)")
    plint.add_argument("--format", choices=["text", "json"], default="text",
                       dest="output_format",
                       help="report format: clickable text rows or the "
                            "repro-lint-report/v1 JSON document")
    plint.add_argument("--baseline", default=None, metavar="PATH",
                       help="JSON baseline of grandfathered findings; "
                            "only findings not in it fail the gate")
    plint.add_argument("--update-baseline", action="store_true",
                       help="rewrite --baseline from the current "
                            "findings (prunes stale entries) and exit 0")
    plint.add_argument("--select", nargs="+", default=None, metavar="CODE",
                       help="run only these rule codes (default: all)")
    plint.add_argument("--exclude", action="append", default=[],
                       metavar="PREFIX",
                       help="skip files whose path (relative to the "
                            "working directory) starts with this posix "
                            "prefix; repeatable")
    plint.add_argument("--list-rules", action="store_true",
                       help="print the registered rule pack and exit")

    ptr = sub.add_parser(
        "trace", help="inspect trace files written by serve-sim --trace"
    )
    trace_sub = ptr.add_subparsers(dest="trace_command", required=True)
    ptrs = trace_sub.add_parser(
        "summarize",
        help="aggregate a trace's spans into a top-k self/total table",
    )
    ptrs.add_argument("file", help="trace file (either format)")
    ptrs.add_argument("--top", type=int, default=10,
                      help="rows to print (sorted by total time)")
    ptrv = trace_sub.add_parser(
        "validate",
        help="schema-check a Chrome trace-event JSON file",
    )
    ptrv.add_argument("file", help="Chrome trace-event JSON file")
    ptrc = trace_sub.add_parser(
        "critical-path",
        help="decompose per-request latency into queue/retry/compute/"
             "comm/paging/host buckets",
    )
    ptrc.add_argument("file", help="trace file (either format)")
    ptrc.add_argument("--json", action="store_true",
                      help="emit the full report as JSON instead of a table")
    ptra = trace_sub.add_parser(
        "attribute",
        help="place every traced gpu.launch on its GPU's roofline",
    )
    ptra.add_argument("file", help="trace file (either format)")
    ptra.add_argument("--top", type=int, default=12,
                      help="launch groups to print (sorted by GPU time)")
    ptra.add_argument("--json", action="store_true",
                      help="emit the full report as JSON instead of a table")
    ptrd = trace_sub.add_parser(
        "diff",
        help="compare two traces; exit 1 if a duration regressed",
    )
    ptrd.add_argument("old", help="baseline trace file")
    ptrd.add_argument("new", help="candidate trace file")
    ptrd.add_argument("--threshold", type=float, default=None,
                      help="relative noise threshold (default 0.01)")
    ptrd.add_argument("--all", action="store_true",
                      help="also print unchanged metrics")

    pbench = sub.add_parser(
        "bench", help="operate on BENCH_*.json benchmark results"
    )
    bench_sub = pbench.add_subparsers(dest="bench_command", required=True)
    pbd = bench_sub.add_parser(
        "diff",
        help="compare two benchmark results of the same schema; "
             "exit 1 on regression, 2 on schema/config mismatch",
    )
    pbd.add_argument("old", help="baseline BENCH_*.json")
    pbd.add_argument("new", help="candidate BENCH_*.json")
    pbd.add_argument("--threshold", type=float, default=None,
                     help="relative noise threshold (default per schema: "
                          "0.01 modeled, 0.25 wall-clock kernels)")
    pbd.add_argument("--smoke", action="store_true",
                     help="compare only metrics present in both results "
                          "(CI smoke subset vs committed full run)")
    pbd.add_argument("--all", action="store_true",
                     help="also print unchanged metrics")

    pall = sub.add_parser("all", help="run every experiment")
    pall.add_argument("--gpu", default="A100")
    pall.add_argument("--limit", type=int, default=20)
    return parser


def render_backends() -> str:
    """The ``backends`` subcommand's listing: every registered backend
    with its capabilities, plus the auto-selector's policy."""
    from repro.backends import AutoSelector, available_backends
    from repro.utils.tables import TextTable

    table = TextTable(
        ["name", "traces", "needs plan", "description"],
        title="execution backends (repro.backends registry)",
    )
    table.add_row(["auto", "-", "-", AutoSelector().describe()])
    for backend in available_backends():
        # capabilities() is optional in the Backend protocol, and a
        # third-party backend may expose it as a plain dict attribute.
        caps = getattr(backend, "capabilities", None)
        caps = (caps() if callable(caps) else caps) or {}
        table.add_row(
            [
                backend.name,
                str(caps.get("traces", "?")),
                "yes" if caps.get("needs_plan") else "no",
                str(caps.get("description", backend.__class__.__name__)),
            ]
        )
    return table.render()


def run_lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: run the invariant linter and gate on
    new findings (exit 1) — the same call CI makes."""
    from repro.analysis import (
        Baseline,
        format_json,
        format_rule_list,
        format_text,
        lint_paths,
        load_baseline,
        save_baseline,
    )
    from repro.errors import LintError

    if args.list_rules:
        print(format_rule_list())
        return 0
    try:
        rules = None
        if args.select is not None:
            from repro.analysis import get_rule

            rules = [get_rule(code) for code in args.select]
        report = lint_paths(
            tuple(args.paths), rules=rules, exclude=tuple(args.exclude)
        )
        if args.update_baseline:
            if args.baseline is None:
                raise LintError("--update-baseline requires --baseline PATH")
            save_baseline(Baseline.from_findings(report.findings), args.baseline)
            print(
                f"wrote {args.baseline} "
                f"({len(report.findings)} grandfathered findings)"
            )
            return 0
        if args.baseline is not None:
            report.apply_baseline(load_baseline(args.baseline))
    except LintError as exc:
        raise SystemExit(f"lint: {exc}") from exc
    if args.output_format == "json":
        print(format_json(report))
    else:
        print(format_text(report))
    return 0 if report.clean else 1


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    # Imports are deferred so `--help` stays fast.
    from repro.bench import (
        render_fig10,
        render_fig7,
        render_fig8,
        render_fig9,
        render_table1,
        run_fig10,
        run_fig7,
        run_fig8,
        run_fig9,
        run_table1,
    )

    if args.experiment == "fig7":
        print(render_fig7(run_fig7(tuple(args.gpus))))
    elif args.experiment == "fig8":
        print(render_fig8(run_fig8(args.gpu)))
    elif args.experiment == "fig9":
        print(render_fig9(run_fig9(args.gpu, limit=args.limit), per_point=args.per_point))
    elif args.experiment == "fig10":
        print(render_fig10(run_fig10(args.gpu)))
    elif args.experiment == "table1":
        print(render_table1(run_table1(args.gpu, max_block=args.max_block)))
    elif args.experiment == "sweep":
        from repro.bench.runner import run_sweep
        from repro.sparsity.config import NMPattern

        shapes = []
        for spec_str in args.shapes:
            parts = spec_str.lower().split("x")
            if len(parts) != 3:
                raise SystemExit(f"bad shape {spec_str!r}; expected MxNxK")
            shapes.append(tuple(int(p) for p in parts))
        patterns = [
            NMPattern.from_sparsity(s, m=32, vector_length=args.vector_length)
            for s in args.sparsities
        ]
        sweep = run_sweep(shapes, patterns, args.gpus, args.versions)
        print(sweep.render())
        print(f"\ngeomean speedup vs cuBLAS: {sweep.geomean_speedup():.2f}x")
    elif args.experiment == "validate":
        from repro.model.validation import validate_model
        from repro.sparsity.config import NMPattern

        pattern = NMPattern(
            args.n_ratio, args.m_ratio, vector_length=args.vector_length
        )
        report = validate_model(pattern)
        print(report.render())
        worst = report.max_rel_error()
        print(f"\nmax relative error (exact quantities): {worst * 100:.3f}%")
        if worst > 1e-6:
            return 1
    elif args.experiment == "serve-sim":
        import json as json_module

        from repro.errors import ReproError
        from repro.serve.batcher import BatchingPolicy
        from repro.serve.scenarios import LlamaServingScenario, parse_pattern

        tracer = None
        stream_writer = None
        if args.trace or args.metrics:
            from repro.obs import Tracer

            if args.trace and args.trace_format == "jsonl-stream":
                from repro.obs import StreamingJsonlWriter

                stream_writer = StreamingJsonlWriter(args.trace)
                tracer = Tracer(sink=stream_writer)
            else:
                tracer = Tracer()
        policy = BatchingPolicy(
            max_batch_requests=args.max_batch_requests,
            max_batch_rows=args.max_batch_rows,
            max_wait_s=args.max_wait_ms * 1e-3,
        )
        try:
            if args.model_mode:
                from repro.serve.model_exec import ModelServingScenario

                if args.decode_fraction is not None:
                    raise SystemExit(
                        "serve-sim: --decode-fraction does not apply in "
                        "--model-mode (decode lengths come from "
                        "--max-new-tokens)"
                    )
                scenario = ModelServingScenario(
                    model=args.models[0],
                    scale=args.scale,
                    blocks=args.blocks,
                    pattern=parse_pattern(args.pattern, args.vector_length),
                    gpu=args.gpu,
                    version=args.opt_version,
                    backend=args.backend,
                    qps=args.qps,
                    duration_s=args.duration,
                    arrival=args.arrival,
                    seed=args.seed,
                    scheduling=args.sched,
                    policy=policy,
                    plan_cache_capacity=args.cache_size,
                    prompt_len_choices=tuple(args.prompt_lens),
                    max_new_tokens_choices=tuple(args.max_new_tokens),
                    slo_ms=args.slo_ms,
                    hbm_tokens=args.hbm_tokens,
                    hbm_bytes=args.hbm_bytes,
                    kv_admission=args.kv_admission,
                    devices=args.devices,
                    shard=args.shard,
                    link=args.link,
                    tracer=tracer,
                    faults=args.faults,
                    resilience=args.resilience or None,
                )
            else:
                scenario = LlamaServingScenario(
                    models=tuple(args.models),
                    layer=args.layer,
                    scale=args.scale,
                    pattern=parse_pattern(args.pattern, args.vector_length),
                    gpu=args.gpu,
                    version=args.opt_version,
                    qps=args.qps,
                    duration_s=args.duration,
                    arrival=args.arrival,
                    seed=args.seed,
                    policy=policy,
                    plan_cache_capacity=args.cache_size,
                    execute_numerics=not args.no_numerics,
                    backend=args.backend,
                    scheduling=args.sched,
                    continuous=args.decode_fraction is not None,
                    decode_fraction=args.decode_fraction,
                    devices=args.devices,
                    shard=args.shard,
                    link=args.link,
                    tracer=tracer,
                    faults=args.faults,
                    resilience=args.resilience or None,
                )
            report = scenario.run()
        except ReproError as exc:
            if stream_writer is not None:
                stream_writer.close()
            raise SystemExit(f"serve-sim: {exc}") from exc
        print(report.render(title=f"serve-sim: {scenario.describe()}"))
        if args.json:
            with open(args.json, "w") as fh:
                json_module.dump(report.summary(), fh, indent=2, sort_keys=True)
            print(f"\nwrote {args.json}")
        if args.trace:
            from repro.obs import write_chrome_trace, write_jsonl

            if stream_writer is not None:
                stream_writer.close()
            elif args.trace_format == "jsonl":
                write_jsonl(tracer, args.trace)
            else:
                write_chrome_trace(tracer, args.trace)
            print(f"wrote {args.trace} ({args.trace_format})")
        if args.metrics:
            from repro.obs import prometheus_text

            with open(args.metrics, "w") as fh:
                fh.write(prometheus_text(tracer.metrics))
            print(f"wrote {args.metrics} (prometheus)")
    elif args.experiment == "trace":
        from repro.errors import ObsError
        from repro.obs import summarize_file, validate_chrome_trace

        if args.trace_command == "summarize":
            try:
                print(summarize_file(args.file, top=args.top))
            except (OSError, ObsError) as exc:
                raise SystemExit(f"trace summarize: {exc}") from exc
        elif args.trace_command == "critical-path":
            import json as json_module

            from repro.obs import load_trace
            from repro.obs.analyze import extract_critical_paths

            try:
                report = extract_critical_paths(load_trace(args.file))
            except (OSError, ValueError, ObsError) as exc:
                raise SystemExit(f"trace critical-path: {exc}") from exc
            if args.json:
                print(json_module.dumps(report.to_dict(), indent=2,
                                        sort_keys=True))
            else:
                print(report.render(title=f"critical path: {args.file}"))
        elif args.trace_command == "attribute":
            import json as json_module

            from repro.obs import load_trace
            from repro.obs.analyze import attribute_roofline

            try:
                report = attribute_roofline(load_trace(args.file))
            except (OSError, ValueError, ObsError) as exc:
                raise SystemExit(f"trace attribute: {exc}") from exc
            if args.json:
                print(json_module.dumps(report.to_dict(), indent=2,
                                        sort_keys=True))
            else:
                print(report.render(
                    top=args.top, title=f"roofline attribution: {args.file}"
                ))
        elif args.trace_command == "diff":
            from repro.obs import load_trace
            from repro.obs.analyze import diff_traces
            from repro.obs.analyze.diff import DEFAULT_THRESHOLD

            try:
                report = diff_traces(
                    load_trace(args.old),
                    load_trace(args.new),
                    threshold=(DEFAULT_THRESHOLD if args.threshold is None
                               else args.threshold),
                )
            except (OSError, ValueError, ObsError) as exc:
                raise SystemExit(f"trace diff: {exc}") from exc
            print(report.render(all_rows=args.all))
            return report.exit_code
        else:
            import json as json_module

            try:
                with open(args.file) as fh:
                    data = json_module.load(fh)
            except (OSError, ValueError) as exc:
                raise SystemExit(f"trace validate: {exc}") from exc
            problems = validate_chrome_trace(data)
            if problems:
                for problem in problems:
                    print(f"invalid: {problem}")
                return 1
            print(
                f"{args.file}: valid Chrome trace "
                f"({len(data['traceEvents'])} events)"
            )
    elif args.experiment == "bench":
        from repro.errors import ObsError
        from repro.obs.analyze import diff_bench_files

        try:
            report = diff_bench_files(
                args.old, args.new,
                threshold=args.threshold, smoke=args.smoke,
            )
        except (OSError, ValueError) as exc:
            print(f"bench diff: {exc}")
            return 2
        except ObsError as exc:
            print(f"bench diff: refused: {exc}")
            return 2
        print(report.render(all_rows=args.all))
        return report.exit_code
    elif args.experiment == "backends":
        print(render_backends())
    elif args.experiment == "lint":
        return run_lint(args)
    elif args.experiment == "all":
        print(render_fig7(run_fig7()))
        print()
        print(render_fig8(run_fig8(args.gpu)))
        print()
        print(render_fig9(run_fig9(args.gpu, limit=args.limit)))
        print()
        print(render_fig10(run_fig10(args.gpu)))
        print()
        print(render_table1(run_table1(args.gpu)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
